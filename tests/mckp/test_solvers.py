"""Cross-validation tests of the four MCKP solvers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mckp.branch_bound import solve_branch_and_bound
from repro.mckp.dp import solve_bruteforce, solve_integer_dp, solve_pareto
from repro.mckp.greedy import solve_greedy
from repro.mckp.problem import MCKPError, MCKPInstance


def _textbook_instance() -> MCKPInstance:
    return MCKPInstance.from_lists(
        weights=[[2, 3, 5], [1, 4, 6], [3, 3, 7]],
        profits=[[3, 5, 9], [1, 6, 9], [4, 5, 10]],
        capacity=10.0,
    )


class TestExactSolversAgree:
    def test_textbook_instance(self):
        inst = _textbook_instance()
        pareto = solve_pareto(inst)
        integer = solve_integer_dp(inst)
        bb = solve_branch_and_bound(inst)
        brute = solve_bruteforce(inst)
        assert pareto.total_profit == pytest.approx(brute.total_profit)
        assert integer.total_profit == pytest.approx(brute.total_profit)
        assert bb.total_profit == pytest.approx(brute.total_profit)

    def test_infeasible_returns_none(self):
        inst = MCKPInstance.from_lists([[5], [5]], [[1], [1]], capacity=4.0)
        assert solve_pareto(inst) is None
        assert solve_integer_dp(inst) is None
        assert solve_branch_and_bound(inst) is None
        assert solve_bruteforce(inst) is None
        assert solve_greedy(inst) is None

    def test_solution_selection_is_consistent(self):
        inst = _textbook_instance()
        sol = solve_pareto(inst)
        weight, profit = inst.evaluate(sol.selection)
        assert weight == pytest.approx(sol.total_weight)
        assert profit == pytest.approx(sol.total_profit)
        assert sol.is_feasible_for(inst)

    def test_integer_dp_rejects_fractional_weights(self):
        inst = MCKPInstance.from_lists([[1.5]], [[1.0]], capacity=3.0)
        with pytest.raises(MCKPError, match="integral"):
            solve_integer_dp(inst)

    def test_integer_dp_rejects_fractional_capacity(self):
        inst = MCKPInstance.from_lists([[1.0]], [[1.0]], capacity=2.5)
        with pytest.raises(MCKPError, match="integral"):
            solve_integer_dp(inst)

    def test_zero_capacity_with_zero_weights(self):
        inst = MCKPInstance.from_lists([[0.0, 1.0]], [[2.0, 9.0]], capacity=0.0)
        sol = solve_pareto(inst)
        assert sol.total_profit == pytest.approx(2.0)
        assert sol.selection == (0,)


class TestGreedy:
    def test_greedy_feasible_and_marked_heuristic(self):
        inst = _textbook_instance()
        sol = solve_greedy(inst)
        assert sol.is_feasible_for(inst)
        assert not sol.optimal

    def test_greedy_never_beats_optimal(self):
        inst = _textbook_instance()
        assert (
            solve_greedy(inst).total_profit
            <= solve_pareto(inst).total_profit + 1e-9
        )


@st.composite
def mckp_instances(draw):
    m = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=1, max_value=4))
    weights = [
        [draw(st.integers(min_value=0, max_value=12)) for _ in range(n)]
        for _ in range(m)
    ]
    profits = [
        [draw(st.integers(min_value=-5, max_value=20)) for _ in range(n)]
        for _ in range(m)
    ]
    capacity = draw(st.integers(min_value=0, max_value=30))
    return MCKPInstance.from_lists(
        [[float(w) for w in row] for row in weights],
        [[float(p) for p in row] for row in profits],
        float(capacity),
    )


@settings(max_examples=80, deadline=None)
@given(inst=mckp_instances())
def test_all_exact_solvers_agree_on_random_instances(inst):
    """Property: Pareto DP == integer DP == B&B == brute force."""
    brute = solve_bruteforce(inst)
    pareto = solve_pareto(inst)
    bb = solve_branch_and_bound(inst)
    integer = solve_integer_dp(inst)
    if brute is None:
        assert pareto is None and bb is None and integer is None
        return
    assert pareto.total_profit == pytest.approx(brute.total_profit)
    assert bb.total_profit == pytest.approx(brute.total_profit)
    assert integer.total_profit == pytest.approx(brute.total_profit)
    greedy = solve_greedy(inst)
    assert greedy is not None
    assert greedy.total_profit <= brute.total_profit + 1e-9


class TestGuards:
    def test_bruteforce_leaf_guard(self):
        from repro.exceptions import ExperimentError

        big = MCKPInstance.from_lists(
            [[1.0] * 10] * 10, [[1.0] * 10] * 10, capacity=100.0
        )
        with pytest.raises(ExperimentError, match="bruteforce"):
            solve_bruteforce(big, max_leaves=100)

    def test_integer_dp_capacity_guard(self):
        from repro.exceptions import ExperimentError

        inst = MCKPInstance.from_lists([[1.0]], [[1.0]], capacity=10.0)
        with pytest.raises(ExperimentError, match="max_capacity"):
            solve_integer_dp(inst, max_capacity=5)

    def test_pareto_state_guard(self):
        from repro.exceptions import ExperimentError

        # Many classes of incommensurate weights blow up the frontier.
        import numpy as np

        rng = np.random.default_rng(0)
        weights = rng.random((10, 4)).tolist()
        profits = rng.random((10, 4)).tolist()
        inst = MCKPInstance.from_lists(weights, profits, capacity=100.0)
        with pytest.raises(ExperimentError, match="max_states"):
            solve_pareto(inst, max_states=8)
