"""Unit tests for the MCKP instance model."""

import math

import pytest

from repro.mckp.problem import MCKPError, MCKPInstance, MCKPItem, MCKPSolution


def _instance() -> MCKPInstance:
    return MCKPInstance.from_lists(
        weights=[[1, 2, 3], [2, 4, 6]],
        profits=[[1, 3, 4], [2, 5, 7]],
        capacity=6.0,
    )


class TestMCKPItem:
    def test_valid(self):
        item = MCKPItem(weight=2.0, profit=-1.0)  # negative profit allowed
        assert item.weight == 2.0

    def test_negative_weight_rejected(self):
        with pytest.raises(MCKPError):
            MCKPItem(weight=-1.0, profit=1.0)

    def test_nan_rejected(self):
        with pytest.raises(MCKPError):
            MCKPItem(weight=math.nan, profit=1.0)
        with pytest.raises(MCKPError):
            MCKPItem(weight=1.0, profit=math.inf)


class TestMCKPInstance:
    def test_from_lists(self):
        inst = _instance()
        assert inst.num_classes == 2
        assert inst.max_class_size == 3
        assert inst.capacity == 6.0

    def test_misaligned_lists_rejected(self):
        with pytest.raises(MCKPError):
            MCKPInstance.from_lists([[1]], [[1], [2]], 5)
        with pytest.raises(MCKPError):
            MCKPInstance.from_lists([[1, 2]], [[1]], 5)

    def test_empty_class_rejected(self):
        with pytest.raises(MCKPError):
            MCKPInstance(classes=((),), capacity=5.0)

    def test_no_classes_rejected(self):
        with pytest.raises(MCKPError):
            MCKPInstance(classes=(), capacity=5.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(MCKPError):
            MCKPInstance.from_lists([[1]], [[1]], -1.0)

    def test_min_total_weight_and_feasibility(self):
        inst = _instance()
        assert inst.min_total_weight() == pytest.approx(3.0)
        assert inst.is_feasible()
        tight = MCKPInstance.from_lists([[5]], [[1]], 4.0)
        assert not tight.is_feasible()

    def test_evaluate(self):
        inst = _instance()
        weight, profit = inst.evaluate([1, 0])
        assert weight == pytest.approx(4.0)
        assert profit == pytest.approx(5.0)

    def test_evaluate_validates_selection(self):
        inst = _instance()
        with pytest.raises(MCKPError):
            inst.evaluate([0])
        with pytest.raises(MCKPError):
            inst.evaluate([0, 9])

    def test_padded_equalizes_class_sizes(self):
        inst = MCKPInstance.from_lists(
            weights=[[1], [2, 4, 6]],
            profits=[[1], [2, 5, 7]],
            capacity=6.0,
        )
        padded = inst.padded()
        assert padded.max_class_size == 3
        assert all(len(c) == 3 for c in padded.classes)
        # Dummies: zero profit, weight strictly above class originals.
        for dummy in padded.classes[0][1:]:
            assert dummy.profit == 0.0
            assert dummy.weight > 1.0

    def test_padded_noop_when_equal(self):
        inst = _instance()
        assert inst.padded().classes == inst.classes


class TestMCKPSolution:
    def test_feasibility_check(self):
        inst = _instance()
        good = MCKPSolution(selection=(0, 0), total_weight=3.0, total_profit=3.0)
        bad = MCKPSolution(selection=(2, 2), total_weight=9.0, total_profit=11.0)
        assert good.is_feasible_for(inst)
        assert not bad.is_feasible_for(inst)
