"""Tests of the Section IV reductions (Theorems 1 and 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.pipeline_dp import PipelineDPScheduler
from repro.core.problem import MedCCProblem
from repro.core.vm import VMType, VMTypeCatalog
from repro.exceptions import ScheduleError
from repro.mckp.dp import solve_pareto
from repro.mckp.problem import MCKPInstance
from repro.mckp.reduction import (
    NonApproxGadget,
    mckp_to_pipeline_matrices,
    pipeline_to_mckp,
    schedule_to_selection,
    selection_to_schedule,
)
from repro.workloads.synthetic import pipeline_workflow


def _pipeline_problem(n_modules: int = 4) -> MedCCProblem:
    catalog = VMTypeCatalog(
        [
            VMType(name="S", power=1.0, rate=1.0),
            VMType(name="M", power=2.0, rate=3.0),
            VMType(name="L", power=5.0, rate=4.0),
        ]
    )
    return MedCCProblem(workflow=pipeline_workflow(n_modules), catalog=catalog)


class TestTheorem1:
    def test_reduction_structure(self):
        problem = _pipeline_problem(4)
        instance, big_k = pipeline_to_mckp(problem, budget=30.0)
        assert instance.num_classes == 4
        assert instance.max_class_size == 3
        assert instance.capacity == 30.0
        # profit = K - time, weight = cost, item by item.
        te, ce = problem.matrices.te, problem.matrices.ce
        for i, cls in enumerate(instance.classes):
            for j, item in enumerate(cls):
                assert item.weight == pytest.approx(ce[i, j])
                assert item.profit == pytest.approx(big_k - te[i, j])

    def test_optimum_maps_to_optimum(self):
        problem = _pipeline_problem(4)
        for budget in problem.budget_levels(6):
            instance, big_k = pipeline_to_mckp(problem, budget)
            mckp_opt = solve_pareto(instance)
            schedule = selection_to_schedule(problem, mckp_opt)
            assert problem.cost_of(schedule) <= budget + 1e-9
            direct = PipelineDPScheduler().solve(problem, budget)
            # Total module time implied by profit equals the DP's optimum.
            m = problem.num_modules
            te = problem.matrices.te
            mckp_time = m * big_k - mckp_opt.total_profit
            direct_time = sum(
                te[i, direct.schedule[name]]
                for i, name in enumerate(problem.matrices.module_names)
            )
            assert mckp_time == pytest.approx(direct_time)

    def test_round_trip_selection(self):
        problem = _pipeline_problem(3)
        schedule = problem.least_cost_schedule()
        selection = schedule_to_selection(problem, schedule)
        instance, _ = pipeline_to_mckp(problem, budget=1e9)
        weight, _ = instance.evaluate(selection)
        assert weight == pytest.approx(problem.cost_of(schedule))

    def test_rejects_non_pipeline(self, diamond_problem):
        with pytest.raises(ScheduleError, match="pipeline"):
            pipeline_to_mckp(diamond_problem, budget=100.0)

    def test_rejects_too_small_k(self):
        problem = _pipeline_problem(3)
        with pytest.raises(ScheduleError, match="smaller"):
            pipeline_to_mckp(problem, budget=100.0, big_k=0.0)

    def test_selection_length_validated(self):
        problem = _pipeline_problem(3)
        from repro.mckp.problem import MCKPSolution

        wrong = MCKPSolution(selection=(0,), total_weight=0.0, total_profit=0.0)
        with pytest.raises(ScheduleError):
            selection_to_schedule(problem, wrong)


class TestMatrixDirection:
    def test_mckp_to_matrices(self):
        instance = MCKPInstance.from_lists(
            weights=[[1, 2], [3, 4]],
            profits=[[5, 6], [7, 8]],
            capacity=6.0,
        )
        te, ce, big_k = mckp_to_pipeline_matrices(instance)
        assert te.shape == (2, 2)
        assert big_k == pytest.approx(8.0)
        assert te[0, 0] == pytest.approx(3.0)  # K - 5
        assert ce[1, 1] == pytest.approx(4.0)

    def test_requires_equal_class_sizes(self):
        ragged = MCKPInstance.from_lists(
            weights=[[1], [3, 4]],
            profits=[[5], [7, 8]],
            capacity=6.0,
        )
        with pytest.raises(ScheduleError, match="equal sizes"):
            mckp_to_pipeline_matrices(ragged)
        # Padding fixes it.
        te, ce, _ = mckp_to_pipeline_matrices(ragged.padded())
        assert te.shape == (2, 2)


class TestTheorem2Gadget:
    def _random_instance(self, seed: int) -> MCKPInstance:
        rng = np.random.default_rng(seed)
        m, n = 3, 3
        weights = rng.integers(1, 20, size=(m, n)).astype(float)
        profits = rng.integers(1, 30, size=(m, n)).astype(float)
        capacity = float(weights.min(axis=1).sum() + 15)
        return MCKPInstance.from_lists(
            weights.tolist(), profits.tolist(), capacity
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_gadget_claims_hold(self, seed):
        gadget = NonApproxGadget.build(self._random_instance(seed))
        claims = gadget.check_claims()
        assert claims == {
            "feasible": True,
            "time_matches": True,
            "is_optimal": True,
        }

    def test_gadget_is_pipeline(self):
        from repro.algorithms.pipeline_dp import is_pipeline

        gadget = NonApproxGadget.build(self._random_instance(7))
        assert is_pipeline(gadget.problem)

    def test_gadget_budget_equals_capacity(self):
        instance = self._random_instance(11)
        gadget = NonApproxGadget.build(instance)
        assert gadget.budget == pytest.approx(instance.capacity)

    def test_gadget_rejects_zero_weights(self):
        degenerate = MCKPInstance.from_lists(
            [[0.0], [0.0]], [[1.0], [1.0]], capacity=1.0
        )
        with pytest.raises(ScheduleError, match="positive maximum weight"):
            NonApproxGadget.build(degenerate)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    m=st.integers(min_value=1, max_value=4),
)
def test_gadget_property_random(seed, m):
    """Property: the Theorem 2 construction's claims hold for random MCKPs."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 4))
    weights = rng.integers(1, 15, size=(m, n)).astype(float)
    profits = rng.integers(1, 25, size=(m, n)).astype(float)
    capacity = float(weights.min(axis=1).sum() + rng.integers(1, 20))
    instance = MCKPInstance.from_lists(weights.tolist(), profits.tolist(), capacity)
    gadget = NonApproxGadget.build(instance)
    assert all(gadget.check_claims().values())
