"""Tests for VM-reuse packing (paper §V-B / §VI-C3)."""

import pytest
from hypothesis import given, settings

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.core.billing import HourlyBilling
from repro.exceptions import ScheduleError
from repro.sim.broker import WorkflowBroker
from repro.sim.packing import pack_schedule

from tests.conftest import problems_with_budgets


class TestPackingModes:
    def test_adjacent_packing_on_example(self, example_problem):
        # Table II schedule 1 discussion: the paper observes VM reuse
        # opportunities among same-type module groups.
        result = CriticalGreedyScheduler().solve(example_problem, 57.0)
        plan = pack_schedule(example_problem, result.schedule, mode="adjacent")
        assert plan.num_vms < len(example_problem.matrices.module_names)
        # Each chain is a same-type dependency chain.
        closure_ok = all(
            len({result.schedule[m] for m in alloc.modules}) == 1
            for alloc in plan.allocations
        )
        assert closure_ok

    def test_interval_packs_at_least_as_tight_as_adjacent(self, example_problem):
        result = CriticalGreedyScheduler().solve(example_problem, 57.0)
        adjacent = pack_schedule(example_problem, result.schedule, mode="adjacent")
        interval = pack_schedule(example_problem, result.schedule, mode="interval")
        assert interval.num_vms <= adjacent.num_vms

    def test_unknown_mode_rejected(self, example_problem):
        schedule = example_problem.least_cost_schedule()
        with pytest.raises(ScheduleError, match="unknown packing mode"):
            pack_schedule(example_problem, schedule, mode="magic")

    def test_vm_of_lookup(self, example_problem):
        schedule = example_problem.least_cost_schedule()
        plan = pack_schedule(example_problem, schedule)
        alloc = plan.vm_of("w4")
        assert "w4" in alloc.modules
        with pytest.raises(ScheduleError):
            plan.vm_of("ghost")

    def test_billed_cost_never_exceeds_per_module_billing(self, example_problem):
        # Sharing an hourly lease can only merge round-ups, never add cost,
        # when the chained modules run back-to-back.
        result = CriticalGreedyScheduler().solve(example_problem, 57.0)
        plan = pack_schedule(example_problem, result.schedule, mode="adjacent")
        packed_cost = plan.billed_cost(example_problem, HourlyBilling())
        assert packed_cost <= result.total_cost + 1e-9

    def test_packing_preserves_makespan_in_simulation(self, example_problem):
        for budget in (48.0, 57.0, 64.0):
            result = CriticalGreedyScheduler().solve(example_problem, budget)
            plan = pack_schedule(example_problem, result.schedule, mode="adjacent")
            packed = WorkflowBroker(
                problem=example_problem, schedule=result.schedule, vm_plan=plan
            ).run()
            assert packed.makespan == pytest.approx(result.med)

    def test_lease_windows_cover_modules(self, example_problem):
        schedule = example_problem.least_cost_schedule()
        evaluation = example_problem.evaluate(schedule)
        plan = pack_schedule(example_problem, schedule, mode="interval")
        for alloc in plan.allocations:
            for module in alloc.modules:
                assert alloc.lease_start <= evaluation.analysis.est[module] + 1e-9
                assert alloc.lease_end >= evaluation.analysis.eft[module] - 1e-9


@settings(max_examples=40, deadline=None)
@given(pb=problems_with_budgets(max_modules=6, max_types=3))
def test_packing_invariants(pb):
    """Properties: partition of modules, same-type chains, no overlap."""
    problem, budget = pb
    result = CriticalGreedyScheduler().solve(problem, budget)
    evaluation = problem.evaluate(result.schedule)
    for mode in ("adjacent", "interval"):
        plan = pack_schedule(problem, result.schedule, mode=mode)
        seen: list[str] = []
        for alloc in plan.allocations:
            seen.extend(alloc.modules)
            # same type per VM
            assert {result.schedule[m] for m in alloc.modules} == {
                alloc.vm_type_index
            }
            # chained modules never overlap in time
            for first, second in zip(alloc.modules, alloc.modules[1:]):
                assert (
                    evaluation.analysis.eft[first]
                    <= evaluation.analysis.est[second] + 1e-9
                )
        assert sorted(seen) == sorted(problem.matrices.module_names)
