"""Integration tests: the broker against the analytical model."""

import pytest
from hypothesis import given, settings

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.core.problem import MedCCProblem, TransferModel
from repro.core.vm import VMType, VMTypeCatalog
from repro.exceptions import SimulationError
from repro.sim.broker import WorkflowBroker
from repro.sim.datacenter import Datacenter, Host
from repro.sim.packing import pack_schedule

from tests.conftest import problems_with_budgets


class TestModelEquivalence:
    """With zero startup, free transfers and one VM per module, the
    simulator must reproduce the analytical MED and cost exactly."""

    def test_example_equivalence(self, example_problem):
        for budget in (48.0, 52.0, 57.0, 64.0):
            result = CriticalGreedyScheduler().solve(example_problem, budget)
            sim = WorkflowBroker(
                problem=example_problem, schedule=result.schedule
            ).run()
            assert sim.makespan == pytest.approx(result.med)
            assert sim.total_cost == pytest.approx(result.total_cost)
            assert sim.makespan_drift == pytest.approx(0.0)
            assert sim.cost_drift == pytest.approx(0.0)

    def test_wrf_equivalence(self, wrf_problem):
        result = CriticalGreedyScheduler().solve(wrf_problem, 174.9)
        sim = WorkflowBroker(problem=wrf_problem, schedule=result.schedule).run()
        assert sim.makespan == pytest.approx(result.med)
        assert sim.total_cost == pytest.approx(result.total_cost)

    def test_trace_is_complete_and_consistent(self, example_problem):
        schedule = example_problem.least_cost_schedule()
        sim = WorkflowBroker(problem=example_problem, schedule=schedule).run()
        trace = sim.trace
        # One task record per module (incl. fixed entry/exit).
        assert len(trace.tasks) == example_problem.workflow.num_modules
        # Precedence: every task starts after all predecessors finish.
        finish = {t.module: t.finish for t in trace.tasks}
        start = {t.module: t.start for t in trace.tasks}
        for edge in example_problem.workflow.edges():
            assert start[edge.dst] >= finish[edge.src] - 1e-9
        # One VM per schedulable module, each executing exactly one module.
        assert trace.num_vms == len(example_problem.matrices.module_names)
        for vm in trace.vms:
            assert len(vm.modules) == 1

    def test_render_smoke(self, example_problem):
        schedule = example_problem.least_cost_schedule()
        sim = WorkflowBroker(problem=example_problem, schedule=schedule).run()
        text = sim.trace.render()
        assert "makespan" in text
        assert "w4" in text


class TestStartupLatency:
    def _problem_with_startup(self, startup: float) -> MedCCProblem:
        from repro.core.module import DataDependency, Module
        from repro.core.workflow import Workflow

        workflow = Workflow(
            [Module("a", workload=4.0), Module("b", workload=4.0)],
            [DataDependency("a", "b")],
        )
        catalog = VMTypeCatalog(
            [VMType(name="T", power=2.0, rate=1.0, startup_time=startup)]
        )
        return MedCCProblem(workflow=workflow, catalog=catalog)

    def test_lazy_startup_delays_path(self):
        problem = self._problem_with_startup(3.0)
        schedule = problem.least_cost_schedule()
        sim = WorkflowBroker(problem=problem, schedule=schedule).run()
        # Each module waits for its own VM boot: 3 + 2 + 3 + 2.
        assert sim.makespan == pytest.approx(10.0)
        assert sim.makespan_drift == pytest.approx(6.0)

    def test_prelaunch_hides_boot_latency(self):
        problem = self._problem_with_startup(3.0)
        schedule = problem.least_cost_schedule()
        sim = WorkflowBroker(
            problem=problem, schedule=schedule, prelaunch=True
        ).run()
        # Boots overlap with time 0; only b's boot is already done when
        # a finishes at 5 (3 boot + 2 run), so b runs 5..7.
        assert sim.makespan == pytest.approx(7.0)

    def test_prelaunch_bills_idle_time(self):
        problem = self._problem_with_startup(3.0)
        schedule = problem.least_cost_schedule()
        lazy = WorkflowBroker(problem=problem, schedule=schedule).run()
        pre = WorkflowBroker(
            problem=problem, schedule=schedule, prelaunch=True
        ).run()
        # Prelaunched VMs lease from t=0 to their last use.
        assert pre.total_cost >= lazy.total_cost - 1e-9


class TestTransfers:
    def test_transfer_times_on_critical_path(self, example_problem):
        slow = MedCCProblem(
            workflow=example_problem.workflow,
            catalog=example_problem.catalog,
            transfers=TransferModel(bandwidth=1.0, latency=0.5),
        )
        schedule = slow.least_cost_schedule()
        sim = WorkflowBroker(problem=slow, schedule=schedule).run()
        assert sim.makespan == pytest.approx(slow.makespan_of(schedule))
        assert sim.trace.transfers  # transfers were recorded

    def test_transfer_costs_charged(self):
        from repro.core.module import DataDependency, Module
        from repro.core.workflow import Workflow

        workflow = Workflow(
            [Module("a", workload=2.0), Module("b", workload=2.0)],
            [DataDependency("a", "b", data_size=10.0)],
        )
        problem = MedCCProblem(
            workflow=workflow,
            catalog=VMTypeCatalog([VMType(name="T", power=2.0, rate=1.0)]),
            transfers=TransferModel(unit_cost=0.5),
        )
        sim = WorkflowBroker(
            problem=problem, schedule=problem.least_cost_schedule()
        ).run()
        assert sim.total_cost == pytest.approx(problem.cmin)
        assert sim.total_cost == pytest.approx(2.0 + 5.0)

    def test_packed_vm_sharing_drops_colocated_transfer(self):
        from repro.core.module import DataDependency, Module
        from repro.core.workflow import Workflow

        workflow = Workflow(
            [Module("a", workload=2.0), Module("b", workload=2.0)],
            [DataDependency("a", "b", data_size=10.0)],
        )
        problem = MedCCProblem(
            workflow=workflow,
            catalog=VMTypeCatalog([VMType(name="T", power=2.0, rate=1.0)]),
            transfers=TransferModel(bandwidth=1.0, unit_cost=0.5),
        )
        schedule = problem.least_cost_schedule()
        # cost_aware packing judges the merge on the *unpacked* timeline,
        # where the 10-second transfer looks like billable idle time —
        # force the merge to exercise the co-location payoff.
        plan = pack_schedule(
            problem, schedule, mode="adjacent", cost_aware=False
        )
        assert plan.num_vms == 1
        sim = WorkflowBroker(problem=problem, schedule=schedule, vm_plan=plan).run()
        # Same VM: the 10-unit transfer neither takes time nor costs money.
        assert sim.makespan == pytest.approx(2.0)
        assert sim.total_cost == pytest.approx(2.0)


class TestFiniteCapacity:
    def test_insufficient_capacity_raises(self, example_problem):
        tiny = Datacenter(hosts=[Host(name="h1", capacity=1.0)])
        schedule = example_problem.least_cost_schedule()
        with pytest.raises(SimulationError, match="cannot place"):
            WorkflowBroker(
                problem=example_problem, schedule=schedule, datacenter=tiny
            ).run()

    def test_testbed_capacity_sufficient_with_packing(self, wrf_problem):
        result = CriticalGreedyScheduler().solve(wrf_problem, 186.2)
        plan = pack_schedule(wrf_problem, result.schedule, mode="adjacent")
        dc = Datacenter.testbed(vmm_nodes=4, capacity_per_node=8.0)
        sim = WorkflowBroker(
            problem=wrf_problem,
            schedule=result.schedule,
            vm_plan=plan,
            datacenter=dc,
        ).run()
        assert sim.makespan == pytest.approx(result.med)


@settings(max_examples=30, deadline=None)
@given(pb=problems_with_budgets(max_modules=6, max_types=3))
def test_simulator_matches_model_property(pb):
    """Property: sim == analytical under the model's assumptions."""
    problem, budget = pb
    result = CriticalGreedyScheduler().solve(problem, budget)
    sim = WorkflowBroker(problem=problem, schedule=result.schedule).run()
    assert sim.makespan == pytest.approx(result.med)
    assert sim.total_cost == pytest.approx(result.total_cost)
