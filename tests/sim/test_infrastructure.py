"""Unit tests for hosts, datacenters, VMs and the network fabric."""

import math

import pytest

from repro.core.billing import HourlyBilling
from repro.core.problem import TransferModel
from repro.core.vm import VMType
from repro.exceptions import SimulationError
from repro.sim.datacenter import Datacenter, Host
from repro.sim.network import NetworkFabric
from repro.sim.vmachine import VirtualMachine, VMState


class TestHost:
    def test_place_and_release(self):
        host = Host(name="h1", capacity=8.0)
        host.place("vm1", 3.0)
        assert host.free == 5.0
        host.release("vm1")
        assert host.free == 8.0

    def test_overcommit_rejected(self):
        host = Host(name="h1", capacity=4.0)
        host.place("vm1", 3.0)
        with pytest.raises(SimulationError, match="cannot fit"):
            host.place("vm2", 2.0)

    def test_double_place_rejected(self):
        host = Host(name="h1", capacity=8.0)
        host.place("vm1", 1.0)
        with pytest.raises(SimulationError, match="already placed"):
            host.place("vm1", 1.0)

    def test_release_unknown_rejected(self):
        with pytest.raises(SimulationError):
            Host(name="h1", capacity=8.0).release("ghost")

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Host(name="h1", capacity=0.0)


class TestDatacenter:
    def test_elastic_always_places(self):
        dc = Datacenter.elastic()
        vt = VMType(name="big", power=1e9, rate=1.0)
        assert dc.try_place("vm1", vt)
        dc.release("vm1")
        assert dc.total_capacity == math.inf

    def test_testbed_shape(self):
        dc = Datacenter.testbed(vmm_nodes=4, capacity_per_node=8.0)
        assert dc.total_capacity == 32.0

    def test_finite_placement_and_exhaustion(self):
        dc = Datacenter(hosts=[Host(name="h1", capacity=4.0)])
        vt = VMType(name="T", power=3.0, rate=1.0)
        assert dc.try_place("vm1", vt)
        assert not dc.try_place("vm2", vt)
        dc.release("vm1")
        assert dc.try_place("vm2", vt)

    def test_best_fit_prefers_fullest_host(self):
        h1 = Host(name="h1", capacity=8.0)
        h2 = Host(name="h2", capacity=8.0)
        dc = Datacenter(hosts=[h1, h2])
        dc.try_place("a", VMType(name="T", power=5.0, rate=1.0))
        # h1 now has 3 free; a 2-power VM fits best there.
        dc.try_place("b", VMType(name="S", power=2.0, rate=1.0))
        assert dc.host_of("b") == "h1"

    def test_release_unplaced_raises(self):
        dc = Datacenter(hosts=[Host(name="h1", capacity=4.0)])
        with pytest.raises(SimulationError, match="never placed"):
            dc.release("ghost")

    def test_finite_datacenter_requires_hosts(self):
        with pytest.raises(SimulationError):
            Datacenter(hosts=[])


class TestVirtualMachine:
    def _vm(self) -> VirtualMachine:
        return VirtualMachine(
            vm_id="vm1",
            vm_type=VMType(name="T", power=2.0, rate=3.0, startup_cost=1.0),
            provisioned_at=10.0,
        )

    def test_lifecycle(self):
        vm = self._vm()
        vm.boot_complete(10.0)
        vm.start_module("w1")
        assert vm.state is VMState.BUSY
        vm.finish_module()
        vm.release(15.5)
        record = vm.bill(HourlyBilling())
        assert record.billed_units == 6.0  # ceil(5.5)
        assert record.cost == pytest.approx(6 * 3.0 + 1.0)
        assert record.modules == ("w1",)

    def test_cannot_start_before_boot(self):
        vm = self._vm()
        with pytest.raises(SimulationError):
            vm.start_module("w1")

    def test_cannot_release_while_busy(self):
        vm = self._vm()
        vm.boot_complete(10.0)
        vm.start_module("w1")
        with pytest.raises(SimulationError):
            vm.release(11.0)

    def test_double_boot_rejected(self):
        vm = self._vm()
        vm.boot_complete(10.0)
        with pytest.raises(SimulationError):
            vm.boot_complete(11.0)

    def test_lease_duration_requires_release(self):
        vm = self._vm()
        with pytest.raises(SimulationError):
            _ = vm.lease_duration


class TestNetworkFabric:
    def test_colocated_transfer_free(self):
        fabric = NetworkFabric(TransferModel(bandwidth=1.0, latency=5.0))
        assert fabric.transfer_finish_time(3.0, "vm1", "vm1", 100.0) == 3.0
        assert fabric.transfer_cost("vm1", "vm1", 100.0) == 0.0

    def test_eq5_transfer_time(self):
        fabric = NetworkFabric(TransferModel(bandwidth=10.0, latency=0.5))
        assert fabric.transfer_finish_time(1.0, "a", "b", 20.0) == pytest.approx(3.5)

    def test_zero_size_transfer_instant(self):
        fabric = NetworkFabric(TransferModel(bandwidth=10.0, latency=0.5))
        assert fabric.transfer_finish_time(1.0, "a", "b", 0.0) == 1.0

    def test_serialized_link_queues_transfers(self):
        fabric = NetworkFabric(
            TransferModel(bandwidth=1.0), serialize_links=True
        )
        first = fabric.transfer_finish_time(0.0, "a", "b", 5.0)
        second = fabric.transfer_finish_time(0.0, "a", "b", 5.0)
        assert first == 5.0
        assert second == 10.0

    def test_unserialized_links_share_freely(self):
        fabric = NetworkFabric(TransferModel(bandwidth=1.0))
        assert fabric.transfer_finish_time(0.0, "a", "b", 5.0) == 5.0
        assert fabric.transfer_finish_time(0.0, "a", "b", 5.0) == 5.0

    def test_transfer_cost_cr(self):
        fabric = NetworkFabric(TransferModel(unit_cost=0.5))
        assert fabric.transfer_cost("a", "b", 10.0) == pytest.approx(5.0)

    def test_link_self_loop_rejected(self):
        fabric = NetworkFabric(TransferModel())
        with pytest.raises(SimulationError):
            fabric.link("a", "a")
