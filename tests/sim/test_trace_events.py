"""Broker event traces (live-replay wire format) and drift-percent guards."""

import json

import pytest

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.sim.broker import SimulationResult, WorkflowBroker
from repro.sim.faults import ScriptedFaults
from repro.sim.trace import SimulationTrace


class TestEventTrace:
    def _run(self, problem, budget=57.0, **kwargs):
        plan = CriticalGreedyScheduler().solve(problem, budget)
        return WorkflowBroker(
            problem=problem, schedule=plan.schedule, **kwargs
        ).run()

    def test_events_are_contiguously_sequenced(self, example_problem):
        trace = self._run(example_problem).trace
        assert [e.seq for e in trace.events] == list(
            range(1, len(trace.events) + 1)
        )
        assert all(
            e.kind in ("started", "completed", "failed") for e in trace.events
        )

    def test_one_start_and_completion_per_module(self, example_problem):
        trace = self._run(example_problem).trace
        names = set(example_problem.workflow.module_names)
        started = [e.module for e in trace.events if e.kind == "started"]
        completed = [e.module for e in trace.events if e.kind == "completed"]
        assert sorted(started) == sorted(names)
        assert sorted(completed) == sorted(names)

    def test_event_times_respect_order(self, example_problem):
        trace = self._run(example_problem).trace
        times = [e.time for e in trace.events]
        assert times == sorted(times)
        # Starts precede completions per module.
        for name in example_problem.workflow.module_names:
            module_events = [e for e in trace.events if e.module == name]
            assert module_events[0].kind == "started"
            assert module_events[-1].kind == "completed"

    def test_completed_durations_carry_broker_values_exactly(
        self, example_problem
    ):
        """Durations come from the broker's duration table, not derived
        from timestamps — the bit-exactness the live replay depends on."""
        actual = {"w2": 7.125}
        result = self._run(example_problem, actual_durations=actual)
        completion = [
            e
            for e in result.trace.events
            if e.kind == "completed" and e.module == "w2"
        ]
        assert completion[0].duration == 7.125

    def test_crash_emits_failed_then_retry(self, example_problem):
        matrices = example_problem.matrices
        plan = CriticalGreedyScheduler().solve(example_problem, 57.0)
        duration = matrices.time("w2", plan.schedule["w2"])
        result = WorkflowBroker(
            problem=example_problem,
            schedule=plan.schedule,
            faults=ScriptedFaults({("w2", 0): 0.5 * duration}),
        ).run()
        kinds = [e.kind for e in result.trace.events if e.module == "w2"]
        assert kinds == ["started", "failed", "started", "completed"]
        failed = [e for e in result.trace.events if e.kind == "failed"][0]
        assert failed.elapsed == pytest.approx(0.5 * duration)

    def test_payloads_and_jsonl_round_trip(self, example_problem):
        trace = self._run(example_problem).trace
        payloads = trace.event_payloads()
        assert [json.loads(line) for line in trace.events_jsonl().splitlines()] == payloads
        for payload in payloads:
            assert payload["seq"] >= 1 and payload["vm_id"]
            if payload["type"] == "started":
                assert "vm_type" in payload
            elif payload["type"] == "completed":
                assert payload["duration"] >= 0.0
            else:
                assert payload["elapsed"] >= 0.0


class TestDriftPercentGuards:
    def _result(self, analytical_makespan, analytical_cost):
        return SimulationResult(
            makespan=0.0,
            total_cost=0.0,
            trace=SimulationTrace(),
            analytical_makespan=analytical_makespan,
            analytical_cost=analytical_cost,
        )

    def test_zero_analytical_values_report_zero_percent(self):
        result = self._result(0.0, 0.0)
        assert result.makespan_drift_percent == 0.0
        assert result.cost_drift_percent == 0.0

    def test_nonzero_analytical_values_divide(self):
        result = self._result(10.0, 20.0)
        assert result.makespan_drift_percent == pytest.approx(-100.0)
        assert result.cost_drift_percent == pytest.approx(-100.0)
