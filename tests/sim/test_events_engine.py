"""Unit tests for the DES event queue and engine."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventPriority, EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        log = []
        q.push(2.0, lambda: log.append("b"))
        q.push(1.0, lambda: log.append("a"))
        q.push(3.0, lambda: log.append("c"))
        while q:
            q.pop().action()
        assert log == ["a", "b", "c"]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        log = []
        q.push(1.0, lambda: log.append("start"), priority=EventPriority.START)
        q.push(
            1.0, lambda: log.append("completion"), priority=EventPriority.COMPLETION
        )
        while q:
            q.pop().action()
        assert log == ["completion", "start"]

    def test_sequence_breaks_full_ties(self):
        q = EventQueue()
        log = []
        q.push(1.0, lambda: log.append(1))
        q.push(1.0, lambda: log.append(2))
        while q:
            q.pop().action()
        assert log == [1, 2]

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        log = []
        ev = q.push(1.0, lambda: log.append("cancelled"))
        q.push(2.0, lambda: log.append("kept"))
        ev.cancel()
        assert q.pop().label == ""
        assert q.peek_time() is None or True  # drained below
        assert log == []

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, lambda: None)
        assert q.peek_time() == 5.0


class TestSimulationEngine:
    def test_clock_advances_with_events(self):
        engine = SimulationEngine()
        seen = []
        engine.at(1.5, lambda: seen.append(engine.now))
        engine.at(3.0, lambda: seen.append(engine.now))
        final = engine.run()
        assert seen == [1.5, 3.0]
        assert final == 3.0

    def test_after_schedules_relative(self):
        engine = SimulationEngine()
        seen = []
        engine.after(2.0, lambda: engine.after(1.0, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [3.0]

    def test_cannot_schedule_into_past(self):
        engine = SimulationEngine()
        engine.at(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError, match="past"):
            engine.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().after(-1.0, lambda: None)

    def test_run_until_stops_early(self):
        engine = SimulationEngine()
        seen = []
        engine.at(1.0, lambda: seen.append(1))
        engine.at(10.0, lambda: seen.append(10))
        engine.run(until=5.0)
        assert seen == [1]
        assert engine.now == 5.0
        engine.run()
        assert seen == [1, 10]

    def test_max_events_guard(self):
        engine = SimulationEngine(max_events=10)

        def reschedule():
            engine.after(1.0, reschedule)

        engine.at(0.0, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            engine.run()

    def test_events_processed_counter(self):
        engine = SimulationEngine()
        for t in range(5):
            engine.at(float(t), lambda: None)
        engine.run()
        assert engine.events_processed == 5
