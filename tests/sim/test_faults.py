"""Tests for VM-crash injection and the broker's retry recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.module import DataDependency, Module
from repro.core.problem import MedCCProblem
from repro.core.vm import VMType, VMTypeCatalog
from repro.core.workflow import Workflow
from repro.exceptions import SimulationError
from repro.sim.broker import WorkflowBroker
from repro.sim.faults import NoFaults, RandomFaults, ScriptedFaults


def _two_module_problem() -> MedCCProblem:
    workflow = Workflow(
        [Module("a", workload=4.0), Module("b", workload=4.0)],
        [DataDependency("a", "b")],
    )
    catalog = VMTypeCatalog([VMType(name="T", power=2.0, rate=1.0)])
    return MedCCProblem(workflow=workflow, catalog=catalog)


class TestFaultModels:
    def test_no_faults_never_fails(self):
        assert NoFaults().fail_after("a", 0, 100.0) is None

    def test_scripted_fault_hits_exact_attempt(self):
        faults = ScriptedFaults({("a", 0): 1.0})
        assert faults.fail_after("a", 0, 2.0) == 1.0
        assert faults.fail_after("a", 1, 2.0) is None
        assert faults.fail_after("b", 0, 2.0) is None

    def test_scripted_fault_after_completion_is_success(self):
        faults = ScriptedFaults({("a", 0): 5.0})
        assert faults.fail_after("a", 0, 2.0) is None

    def test_scripted_validation(self):
        with pytest.raises(SimulationError):
            ScriptedFaults({("a", -1): 1.0})
        with pytest.raises(SimulationError):
            ScriptedFaults({("a", 0): -1.0})

    def test_random_faults_deterministic(self):
        a = RandomFaults(rate=0.5, seed=42)
        b = RandomFaults(rate=0.5, seed=42)
        draws_a = [a.fail_after("m", k, 10.0) for k in range(20)]
        draws_b = [b.fail_after("m", k, 10.0) for k in range(20)]
        assert draws_a == draws_b

    def test_random_faults_zero_rate_never_fails(self):
        faults = RandomFaults(rate=0.0)
        assert all(faults.fail_after("m", k, 1e9) is None for k in range(10))

    def test_random_faults_cap(self):
        faults = RandomFaults(rate=100.0, seed=1, max_failures=2)
        failures = sum(
            faults.fail_after("m", k, 100.0) is not None for k in range(50)
        )
        assert failures == 2

    def test_random_fault_validation(self):
        with pytest.raises(SimulationError):
            RandomFaults(rate=-1.0)
        with pytest.raises(SimulationError):
            RandomFaults(rate=1.0, max_failures=-1)


class TestBrokerRecovery:
    def test_single_crash_retries_and_stretches_makespan(self):
        problem = _two_module_problem()
        schedule = problem.least_cost_schedule()
        sim = WorkflowBroker(
            problem=problem,
            schedule=schedule,
            faults=ScriptedFaults({("a", 0): 1.0}),
        ).run()
        # a runs 0..1 (crash), retries 1..3; b runs 3..5.
        assert sim.makespan == pytest.approx(5.0)
        assert len(sim.trace.failures) == 1
        assert sim.trace.failures[0].module == "a"
        # Both the dead lease (1 time unit -> 1 billed) and the retry bill.
        assert sim.total_cost == pytest.approx(1.0 + 2.0 + 2.0)

    def test_double_crash_same_module(self):
        problem = _two_module_problem()
        schedule = problem.least_cost_schedule()
        sim = WorkflowBroker(
            problem=problem,
            schedule=schedule,
            faults=ScriptedFaults({("a", 0): 1.0, ("a", 1): 0.5}),
        ).run()
        assert len(sim.trace.failures) == 2
        assert sim.makespan == pytest.approx(1.0 + 0.5 + 2.0 + 2.0)

    def test_crash_on_shared_vm_remaps_queued_modules(self):
        from repro.sim.packing import pack_schedule

        problem = _two_module_problem()
        schedule = problem.least_cost_schedule()
        plan = pack_schedule(problem, schedule, mode="adjacent")
        assert plan.num_vms == 1
        sim = WorkflowBroker(
            problem=problem,
            schedule=schedule,
            vm_plan=plan,
            faults=ScriptedFaults({("a", 0): 1.0}),
        ).run()
        # b still runs (on the replacement VM) and the run completes.
        assert sim.trace.task("b").finish == sim.makespan
        assert sim.makespan == pytest.approx(5.0)
        assert sim.trace.num_vms == 2  # dead instance + replacement

    def test_max_attempts_guard(self):
        problem = _two_module_problem()
        schedule = problem.least_cost_schedule()
        always_fail = ScriptedFaults({("a", k): 0.5 for k in range(10)})
        with pytest.raises(SimulationError, match="max_attempts"):
            WorkflowBroker(
                problem=problem,
                schedule=schedule,
                faults=always_fail,
                max_attempts=3,
            ).run()

    def test_fault_free_run_unchanged(self, example_problem):
        schedule = example_problem.least_cost_schedule()
        clean = WorkflowBroker(problem=example_problem, schedule=schedule).run()
        with_model = WorkflowBroker(
            problem=example_problem,
            schedule=schedule,
            faults=RandomFaults(rate=0.0),
        ).run()
        assert with_model.makespan == clean.makespan
        assert with_model.total_cost == clean.total_cost
        assert not with_model.trace.failures


@settings(max_examples=20, deadline=None)
@given(
    rate=st.floats(min_value=0.0, max_value=0.05),
    seed=st.integers(min_value=0, max_value=100),
)
def test_faulty_runs_complete_and_never_beat_fault_free(rate, seed):
    """Property: crashes only ever lengthen the makespan and raise cost."""
    from repro.workloads.example import example_problem as make_problem

    problem = make_problem()
    schedule = problem.least_cost_schedule()
    clean = WorkflowBroker(problem=problem, schedule=schedule).run()
    faulty = WorkflowBroker(
        problem=problem,
        schedule=schedule,
        faults=RandomFaults(rate=rate, seed=seed),
    ).run()
    assert faulty.makespan >= clean.makespan - 1e-9
    assert faulty.total_cost >= clean.total_cost - 1e-9
    assert len(faulty.trace.tasks) == problem.workflow.num_modules
