"""Additional broker scenarios: link contention, transfer-aware lst/est,
and mixed deviations stacked together."""

import pytest

from repro.core.critical_path import analyze_critical_path
from repro.core.module import DataDependency, Module
from repro.core.problem import MedCCProblem, TransferModel
from repro.core.vm import VMType, VMTypeCatalog
from repro.core.workflow import Workflow
from repro.sim.broker import WorkflowBroker
from repro.sim.faults import ScriptedFaults


def _fan_out_problem(transfers: TransferModel) -> MedCCProblem:
    """One producer feeding two consumers over identical edges."""
    workflow = Workflow(
        [
            Module("src", workload=2.0),
            Module("left", workload=2.0),
            Module("right", workload=2.0),
            Module("sink", workload=2.0),
        ],
        [
            DataDependency("src", "left", data_size=4.0),
            DataDependency("src", "right", data_size=4.0),
            DataDependency("left", "sink", data_size=1.0),
            DataDependency("right", "sink", data_size=1.0),
        ],
    )
    catalog = VMTypeCatalog([VMType(name="T", power=2.0, rate=1.0)])
    return MedCCProblem(workflow=workflow, catalog=catalog, transfers=transfers)


class TestLinkSerialization:
    def test_unserialized_links_are_independent(self):
        problem = _fan_out_problem(TransferModel(bandwidth=2.0))
        sim = WorkflowBroker(
            problem=problem, schedule=problem.least_cost_schedule()
        ).run()
        # src(1) + transfer(2) + branch(1) + transfer(0.5) + sink(1)
        assert sim.makespan == pytest.approx(5.5)

    def test_serialized_links_do_not_queue_distinct_links(self):
        # Each (src_vm, dst_vm) pair is its own link, so the two fan-out
        # transfers still run concurrently even when serialize_links=True.
        problem = _fan_out_problem(TransferModel(bandwidth=2.0))
        sim = WorkflowBroker(
            problem=problem,
            schedule=problem.least_cost_schedule(),
            serialize_links=True,
        ).run()
        assert sim.makespan == pytest.approx(5.5)

    def test_shared_vm_serializes_and_localizes(self):
        # Putting left and right on one VM serializes the branches but
        # removes the sink transfers from one of them.
        from repro.sim.packing import VMPlan, VMAllocation

        problem = _fan_out_problem(TransferModel(bandwidth=2.0))
        schedule = problem.least_cost_schedule()
        plan = VMPlan(
            allocations=(
                VMAllocation(0, "T", ("src",), 0.0, 0.0),
                VMAllocation(0, "T", ("left", "right"), 0.0, 0.0),
                VMAllocation(0, "T", ("sink",), 0.0, 0.0),
            ),
            mode="manual",
        )
        sim = WorkflowBroker(
            problem=problem, schedule=schedule, vm_plan=plan
        ).run()
        # src 0..1, transfer to shared VM arrives 3; left 3..4, right 4..5;
        # sink needs both branch outputs: 5 + 0.5 transfer + 1 run = 6.5.
        assert sim.makespan == pytest.approx(6.5)


class TestTransferAwareCriticalPath:
    def test_backward_pass_accounts_for_transfers(self):
        workflow = Workflow(
            [Module("a", workload=1.0), Module("b", workload=1.0)],
            [DataDependency("a", "b", data_size=1.0)],
        )
        cpa = analyze_critical_path(
            workflow, {"a": 1.0, "b": 1.0}, transfer_times={("a", "b"): 2.0}
        )
        assert cpa.makespan == pytest.approx(4.0)
        # a must finish by lft(a) = lst(b) - transfer = 3 - 2 = 1.
        assert cpa.lft["a"] == pytest.approx(1.0)
        assert cpa.buffer_time("a") == pytest.approx(0.0)


class TestStackedDeviations:
    def test_faults_plus_startup_plus_transfers(self):
        workflow = Workflow(
            [Module("a", workload=2.0), Module("b", workload=2.0)],
            [DataDependency("a", "b", data_size=2.0)],
        )
        catalog = VMTypeCatalog(
            [VMType(name="T", power=2.0, rate=1.0, startup_time=1.0)]
        )
        problem = MedCCProblem(
            workflow=workflow,
            catalog=catalog,
            transfers=TransferModel(bandwidth=2.0),
        )
        sim = WorkflowBroker(
            problem=problem,
            schedule=problem.least_cost_schedule(),
            faults=ScriptedFaults({("a", 0): 0.5}),
        ).run()
        # boot 1, a runs 1..1.5 (crash), replacement boots 1.5..2.5,
        # retry 2.5..3.5, transfer 3.5..4.5, b's VM boots from 4.5..5.5,
        # b runs 5.5..6.5.
        assert sim.makespan == pytest.approx(6.5)
        assert len(sim.trace.failures) == 1
        # Three leases billed: the dead one and two live ones.
        assert sim.trace.num_vms == 3


class TestActualDurations:
    def test_realized_times_drive_makespan_and_bill(self, example_problem):
        schedule = example_problem.least_cost_schedule()
        planned = schedule.durations(
            example_problem.workflow, example_problem.matrices
        )
        slower = {
            name: value * 1.5
            for name, value in planned.items()
            if example_problem.workflow.module(name).is_schedulable
        }
        sim = WorkflowBroker(
            problem=example_problem,
            schedule=schedule,
            actual_durations=slower,
        ).run()
        assert sim.makespan > sim.analytical_makespan
        assert sim.total_cost >= sim.analytical_cost - 1e-9
        assert sim.makespan_drift > 0

    def test_unknown_module_rejected(self, example_problem):
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError, match="unknown module"):
            WorkflowBroker(
                problem=example_problem,
                schedule=example_problem.least_cost_schedule(),
                actual_durations={"ghost": 1.0},
            ).run()

    def test_negative_duration_rejected(self, example_problem):
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError, match=">= 0"):
            WorkflowBroker(
                problem=example_problem,
                schedule=example_problem.least_cost_schedule(),
                actual_durations={"w1": -1.0},
            ).run()

    def test_faster_reality_can_lower_the_bill(self, example_problem):
        schedule = example_problem.least_cost_schedule()
        planned = schedule.durations(
            example_problem.workflow, example_problem.matrices
        )
        quicker = {
            name: value * 0.5
            for name, value in planned.items()
            if example_problem.workflow.module(name).is_schedulable
        }
        sim = WorkflowBroker(
            problem=example_problem,
            schedule=schedule,
            actual_durations=quicker,
        ).run()
        assert sim.total_cost <= sim.analytical_cost + 1e-9
        assert sim.makespan < sim.analytical_makespan
