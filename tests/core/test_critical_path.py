"""Unit and property tests for the critical-path analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.critical_path import analyze_critical_path
from repro.core.module import DataDependency, Module
from repro.core.workflow import Workflow
from repro.exceptions import ScheduleError

from tests.conftest import medcc_problems


def _diamond() -> Workflow:
    return Workflow(
        [Module(n, workload=1.0) for n in ("a", "b", "c", "d")],
        [
            DataDependency("a", "b"),
            DataDependency("a", "c"),
            DataDependency("b", "d"),
            DataDependency("c", "d"),
        ],
    )


class TestForwardBackwardPasses:
    def test_chain_timings(self):
        wf = Workflow(
            [Module(n, workload=1.0) for n in ("a", "b", "c")],
            [DataDependency("a", "b"), DataDependency("b", "c")],
        )
        cpa = analyze_critical_path(wf, {"a": 2.0, "b": 3.0, "c": 1.0})
        assert cpa.est == {"a": 0.0, "b": 2.0, "c": 5.0}
        assert cpa.eft == {"a": 2.0, "b": 5.0, "c": 6.0}
        assert cpa.makespan == 6.0
        assert cpa.critical_path == ("a", "b", "c")
        assert all(cpa.buffer_time(n) == 0.0 for n in ("a", "b", "c"))

    def test_diamond_slack_on_short_branch(self):
        cpa = analyze_critical_path(
            _diamond(), {"a": 1.0, "b": 5.0, "c": 2.0, "d": 1.0}
        )
        assert cpa.makespan == 7.0
        assert cpa.critical_path == ("a", "b", "d")
        assert cpa.buffer_time("c") == pytest.approx(3.0)
        assert cpa.is_critical("b") and not cpa.is_critical("c")
        assert cpa.critical_modules == ("a", "b", "d")

    def test_transfer_times_extend_paths(self):
        wf = Workflow(
            [Module("a", workload=1.0), Module("b", workload=1.0)],
            [DataDependency("a", "b", data_size=10.0)],
        )
        cpa = analyze_critical_path(
            wf, {"a": 1.0, "b": 1.0}, transfer_times={("a", "b"): 2.5}
        )
        assert cpa.est["b"] == pytest.approx(3.5)
        assert cpa.makespan == pytest.approx(4.5)

    def test_tied_longest_paths_all_critical(self):
        cpa = analyze_critical_path(
            _diamond(), {"a": 1.0, "b": 3.0, "c": 3.0, "d": 1.0}
        )
        assert cpa.critical_modules == ("a", "b", "c", "d")
        # The extracted path is one of the two, deterministically the
        # lexicographically-first branch.
        assert cpa.critical_path == ("a", "b", "d")

    def test_zero_duration_modules(self):
        wf = Workflow(
            [Module("a", workload=0.0), Module("b", workload=1.0)],
            [DataDependency("a", "b")],
        )
        cpa = analyze_critical_path(wf, {"a": 0.0, "b": 4.0})
        assert cpa.makespan == 4.0

    def test_missing_duration_raises(self):
        wf = Workflow([Module("a", workload=1.0)])
        with pytest.raises(ScheduleError, match="no duration"):
            analyze_critical_path(wf, {})

    def test_negative_duration_raises(self):
        wf = Workflow([Module("a", workload=1.0)])
        with pytest.raises(ScheduleError, match="negative"):
            analyze_critical_path(wf, {"a": -1.0})

    def test_critical_schedulable_excludes_fixed(self):
        wf = Workflow(
            [
                Module("in", fixed_time=1.0),
                Module("m", workload=2.0),
                Module("out", fixed_time=1.0),
            ],
            [DataDependency("in", "m"), DataDependency("m", "out")],
        )
        cpa = analyze_critical_path(wf, {"in": 1.0, "m": 2.0, "out": 1.0})
        assert cpa.critical_schedulable() == ("m",)

    def test_single_module(self):
        wf = Workflow([Module("solo", workload=1.0)])
        cpa = analyze_critical_path(wf, {"solo": 3.0})
        assert cpa.makespan == 3.0
        assert cpa.critical_path == ("solo",)


@settings(max_examples=60, deadline=None)
@given(problem=medcc_problems())
def test_critical_path_invariants(problem):
    """Properties over random DAGs and the least-cost schedule's durations."""
    schedule = problem.least_cost_schedule()
    durations = schedule.durations(problem.workflow, problem.matrices)
    cpa = analyze_critical_path(problem.workflow, durations)

    # Makespan equals the exit module's eft and the max over all eft.
    assert cpa.makespan == pytest.approx(cpa.eft[problem.workflow.exit])
    assert cpa.makespan == pytest.approx(max(cpa.eft.values()))

    path = cpa.critical_path
    # The extracted path starts at the entry, ends at the exit, follows
    # edges, and its durations sum to the makespan (transfers are zero).
    assert path[0] == problem.workflow.entry
    assert path[-1] == problem.workflow.exit
    for src, dst in zip(path, path[1:]):
        assert dst in problem.workflow.successors(src)
    assert sum(durations[n] for n in path) == pytest.approx(cpa.makespan)

    for name in problem.workflow.module_names:
        # Slack is non-negative and est/lst, eft/lft are consistent.
        assert cpa.buffer_time(name) >= -1e-9
        assert cpa.lft[name] - cpa.lst[name] == pytest.approx(durations[name])
        assert cpa.eft[name] - cpa.est[name] == pytest.approx(durations[name])
        assert cpa.lft[name] <= cpa.makespan + 1e-9
    # Every module on the extracted path has zero buffer.
    for name in path:
        assert cpa.is_critical(name)


@settings(max_examples=40, deadline=None)
@given(
    problem=medcc_problems(),
    latency=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
)
def test_transfers_never_shrink_makespan(problem, latency):
    """Property: adding transfer latency never reduces the makespan."""
    schedule = problem.least_cost_schedule()
    durations = schedule.durations(problem.workflow, problem.matrices)
    base = analyze_critical_path(problem.workflow, durations).makespan
    transfers = {e.key: latency for e in problem.workflow.edges()}
    slowed = analyze_critical_path(problem.workflow, durations, transfers).makespan
    assert slowed >= base - 1e-9
