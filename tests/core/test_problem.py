"""Unit tests for MedCCProblem and TransferModel."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.problem import MedCCProblem, TransferModel
from repro.exceptions import InfeasibleBudgetError, ScheduleError

from tests.conftest import medcc_problems


class TestTransferModel:
    def test_defaults_are_free(self):
        tm = TransferModel()
        assert tm.is_free
        assert tm.transfer_time(100.0) == 0.0
        assert tm.transfer_cost(100.0) == 0.0

    def test_eq5_timing(self):
        tm = TransferModel(bandwidth=10.0, latency=0.5)
        assert tm.transfer_time(20.0) == pytest.approx(2.5)
        assert tm.transfer_time(0.0) == 0.0

    def test_eq4_cost(self):
        tm = TransferModel(unit_cost=0.25)
        assert tm.transfer_cost(8.0) == pytest.approx(2.0)

    def test_invalid_parameters(self):
        with pytest.raises(ScheduleError):
            TransferModel(bandwidth=0.0)
        with pytest.raises(ScheduleError):
            TransferModel(latency=-1.0)
        with pytest.raises(ScheduleError):
            TransferModel(unit_cost=-0.1)

    def test_latency_only_model_not_free(self):
        assert not TransferModel(latency=0.1).is_free


class TestExampleInstance:
    def test_cost_range_matches_paper(self, example_problem):
        assert example_problem.cmin == pytest.approx(48.0)
        assert example_problem.cmax == pytest.approx(64.0)
        assert example_problem.budget_range() == (48.0, 64.0)

    def test_problem_size(self, example_problem):
        # problem_size counts all modules (incl. fixed entry/exit) per the
        # paper's generator convention; num_modules counts schedulable ones.
        assert example_problem.problem_size == (8, 8, 3)
        assert example_problem.num_modules == 6
        assert example_problem.num_types == 3

    def test_budget_levels_cover_range(self, example_problem):
        levels = example_problem.budget_levels(20)
        assert len(levels) == 20
        assert levels[-1] == pytest.approx(64.0)
        assert levels[0] == pytest.approx(48.0 + (64 - 48) / 20)
        assert all(b2 > b1 for b1, b2 in zip(levels, levels[1:]))

    def test_budget_levels_validation(self, example_problem):
        with pytest.raises(ScheduleError):
            example_problem.budget_levels(0)

    def test_check_feasible(self, example_problem):
        example_problem.check_feasible(48.0)
        example_problem.check_feasible(1000.0)
        with pytest.raises(InfeasibleBudgetError) as err:
            example_problem.check_feasible(47.0)
        assert err.value.budget == 47.0
        assert err.value.cmin == pytest.approx(48.0)

    def test_least_cost_and_fastest_schedules(self, example_problem):
        lc = example_problem.least_cost_schedule()
        fast = example_problem.fastest_schedule()
        assert example_problem.cost_of(lc) == pytest.approx(48.0)
        assert example_problem.cost_of(fast) == pytest.approx(64.0)
        assert example_problem.makespan_of(fast) <= example_problem.makespan_of(lc)

    def test_schedule_from_names(self, example_problem):
        sched = example_problem.schedule_from_names(
            {m: "VT3" for m in example_problem.matrices.module_names}
        )
        assert example_problem.cost_of(sched) == pytest.approx(64.0)

    def test_median_and_random_budget(self, example_problem):
        assert example_problem.median_budget() == pytest.approx(56.0)
        rng = np.random.default_rng(0)
        for _ in range(10):
            b = example_problem.random_feasible_budget(rng)
            assert 48.0 <= b <= 64.0


class TestTransfersOnProblem:
    def test_transfer_times_cached_empty_when_free(self, example_problem):
        assert example_problem.transfer_times == {}
        assert example_problem.transfer_cost_total == 0.0

    def test_transfer_costs_added_to_evaluation(self, example_problem):
        slow = MedCCProblem(
            workflow=example_problem.workflow,
            catalog=example_problem.catalog,
            transfers=TransferModel(bandwidth=1.0, unit_cost=0.5),
        )
        total_data = sum(e.data_size for e in slow.workflow.edges())
        assert slow.transfer_cost_total == pytest.approx(0.5 * total_data)
        lc = slow.least_cost_schedule()
        assert slow.cost_of(lc) == pytest.approx(48.0 + 0.5 * total_data)
        assert slow.cmin == pytest.approx(48.0 + 0.5 * total_data)
        # Transfers also lengthen the critical path.
        assert slow.makespan_of(lc) > example_problem.makespan_of(
            example_problem.least_cost_schedule()
        )

    def test_infinite_bandwidth_zero_latency_equivalent_to_free(
        self, example_problem
    ):
        same = MedCCProblem(
            workflow=example_problem.workflow,
            catalog=example_problem.catalog,
            transfers=TransferModel(bandwidth=math.inf, latency=0.0),
        )
        lc = same.least_cost_schedule()
        assert same.makespan_of(lc) == pytest.approx(
            example_problem.makespan_of(lc)
        )


@settings(max_examples=50, deadline=None)
@given(problem=medcc_problems())
def test_cost_range_invariants(problem):
    """Property: Cmin <= Cmax; canonical schedules realize the bounds."""
    assert problem.cmin <= problem.cmax + 1e-9
    lc = problem.least_cost_schedule()
    fast = problem.fastest_schedule()
    assert problem.cost_of(lc) == pytest.approx(problem.cmin)
    assert problem.cost_of(fast) == pytest.approx(problem.cmax)
    # The fastest schedule is never slower than the least-cost schedule.
    assert problem.makespan_of(fast) <= problem.makespan_of(lc) + 1e-9
