"""BatchedSweep must stay bit-identical to the scalar engines, per slot.

The batched SoA engine carries the same exactness contract as
:class:`~repro.core.fastpath.IncrementalSweep`, lifted to B slots: after
any interleaving of ``sweep_batch``, per-slot ``set_duration`` updates
and ``copy_slot`` forks, every slot's buffers (EST/EFT/LST/LFT/argmax/
makespan and the 2-D numpy mirrors) equal what
:func:`repro.core.fastpath.sweep_arrays` produces from scratch on that
slot's duration vector — bitwise, no tolerances.  These tests drive
random slot populations and update sequences on random DAGs (with and
without transfer times) and compare every buffer of every slot against
both the from-scratch sweep and a live :class:`IncrementalSweep` twin.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fastpath import (
    BatchedSweep,
    IncrementalSweep,
    sweep_arrays,
    transfer_vector,
)
from repro.core.problem import TransferModel
from repro.exceptions import ScheduleError
from tests.conftest import medcc_problems


def _with_transfers(problem):
    return dataclasses.replace(
        problem, transfers=TransferModel(bandwidth=2.0, latency=0.5)
    )


def _base_durations(sweep: BatchedSweep) -> list[float]:
    return list(sweep.index.base_durations)


def _assert_slot_matches_full_sweep(sweep, slot, durations, transfers):
    ref = sweep_arrays(sweep.index, durations, transfers)
    assert sweep._est[slot] == ref[0]
    assert sweep._eft[slot] == ref[1]
    assert sweep._lst[slot] == ref[2]
    assert sweep._lft[slot] == ref[3]
    assert sweep._argmax_pred[slot] == ref[4]
    assert sweep.makespan(slot) == ref[5]
    # The 2-D mirrors are synced by span slices — they must track the
    # list shadows exactly, or the batched critical mask silently drifts.
    assert sweep.est_batch[slot].tolist() == ref[0]
    assert sweep.lst_batch[slot].tolist() == ref[2]
    assert sweep.makespans[slot] == ref[5]


def _assert_slot_matches_incremental(batched, slot, twin: IncrementalSweep):
    assert batched._est[slot] == twin.est
    assert batched._eft[slot] == twin.eft
    assert batched._lst[slot] == twin.lst
    assert batched._lft[slot] == twin.lft
    assert batched._argmax_pred[slot] == twin.argmax_pred
    assert batched.makespan(slot) == twin.makespan


def _duration_matrix(data, sweep: BatchedSweep, rows: int) -> np.ndarray:
    """Draw one duration vector per row: base durations + random sched rows."""
    index = sweep.index
    matrix = np.tile(np.asarray(_base_durations(sweep)), (rows, 1))
    values = data.draw(
        st.lists(
            st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
            min_size=rows * len(index.sched_nodes),
            max_size=rows * len(index.sched_nodes),
        )
    )
    for r in range(rows):
        for i, node in enumerate(index.sched_nodes):
            matrix[r, node] = values[r * len(index.sched_nodes) + i]
    return matrix


# --------------------------------------------------------------------- #
# The core property: bit-identity of every slot, every buffer
# --------------------------------------------------------------------- #


@given(problem=medcc_problems(), data=st.data())
@settings(max_examples=30, deadline=None)
@pytest.mark.parametrize("with_transfers", [False, True])
def test_sweep_batch_rows_match_sweep_arrays(problem, data, with_transfers):
    """One vectorized pass over B rows == B independent scalar sweeps."""
    if with_transfers:
        problem = _with_transfers(problem)
    transfer_times = problem.transfer_times or None
    rows = data.draw(st.integers(min_value=1, max_value=4))
    sweep = BatchedSweep(problem.workflow, rows, transfer_times=transfer_times)
    transfers = transfer_vector(sweep.index, transfer_times)
    slots = [sweep.acquire_slot() for _ in range(rows)]
    matrix = _duration_matrix(data, sweep, rows)

    makespans = sweep.sweep_batch(slots, matrix)

    assert makespans.shape == (rows,)
    for r, slot in enumerate(slots):
        assert makespans[r] == sweep.makespan(slot)
        _assert_slot_matches_full_sweep(sweep, slot, matrix[r].tolist(), transfers)


@given(problem=medcc_problems(), data=st.data())
@settings(max_examples=25, deadline=None)
@pytest.mark.parametrize("with_transfers", [False, True])
def test_per_slot_updates_match_incremental_twin(problem, data, with_transfers):
    """Random per-slot update sequences track a live IncrementalSweep."""
    if with_transfers:
        problem = _with_transfers(problem)
    transfer_times = problem.transfer_times or None
    rows = data.draw(st.integers(min_value=1, max_value=3))
    sweep = BatchedSweep(problem.workflow, rows, transfer_times=transfer_times)
    transfers = transfer_vector(sweep.index, transfer_times)
    base = _base_durations(sweep)
    slots = [sweep.acquire_slot() for _ in range(rows)]
    twins = []
    for slot in slots:
        sweep.reset_slot(slot, base)
        twin = IncrementalSweep(problem.workflow, transfer_times=transfer_times)
        twin.reset_vector(base)
        twins.append(twin)

    num_sched = len(sweep.index.sched_nodes)
    updates = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=rows - 1),
                st.integers(min_value=0, max_value=num_sched - 1),
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            ),
            min_size=1,
            max_size=12,
        )
    )
    for r, row, value in updates:
        batched_makespan = sweep.set_row_duration(slots[r], row, value)
        twin_makespan = twins[r].set_row_duration(row, value)
        assert batched_makespan == twin_makespan
        for other in range(rows):
            _assert_slot_matches_incremental(sweep, slots[other], twins[other])
            durations = [
                sweep.duration_of(slots[other], v)
                for v in range(sweep.index.num_nodes)
            ]
            _assert_slot_matches_full_sweep(sweep, slots[other], durations, transfers)


@given(problem=medcc_problems(), data=st.data())
@settings(max_examples=20, deadline=None)
def test_copy_slot_forks_diverge_independently(problem, data):
    """copy_slot duplicates state; updating the fork leaves the source alone."""
    sweep = BatchedSweep(problem.workflow, 2)
    base = _base_durations(sweep)
    src = sweep.acquire_slot()
    sweep.reset_slot(src, base)
    row = data.draw(
        st.integers(min_value=0, max_value=len(sweep.index.sched_nodes) - 1)
    )
    value = data.draw(st.floats(min_value=0.0, max_value=50.0, allow_nan=False))

    dst = sweep.acquire_slot()
    sweep.copy_slot(src, dst)
    assert sweep.slot_copies == 1
    _assert_slot_matches_full_sweep(sweep, dst, base, None)

    src_snapshot = (
        list(sweep._est[src]),
        list(sweep._lst[src]),
        sweep.makespan(src),
    )
    sweep.set_row_duration(dst, row, value)
    assert (
        list(sweep._est[src]),
        list(sweep._lst[src]),
        sweep.makespan(src),
    ) == src_snapshot
    forked = [sweep.duration_of(dst, v) for v in range(sweep.index.num_nodes)]
    _assert_slot_matches_full_sweep(sweep, dst, forked, None)


def test_critical_rows_batch_matches_per_slot(example_problem):
    """The 2-D critical mask selects exactly what each slot selects alone."""
    sweep = BatchedSweep(example_problem.workflow, 3)
    base = _base_durations(sweep)
    slots = [sweep.acquire_slot() for _ in range(3)]
    matrix = np.tile(np.asarray(base), (3, 1))
    for r, node in enumerate(sweep.index.sched_nodes[:3]):
        matrix[r, node] += 5.0 * (r + 1)
    sweep.sweep_batch(slots, matrix)

    masks = sweep.critical_rows_batch(slots)
    assert masks.shape == (3, len(sweep.index.sched_nodes))
    for r, slot in enumerate(slots):
        assert masks[r].tolist() == sweep.critical_rows(slot).tolist()
        result = sweep.result(slot)
        expected = result.critical_schedulable_rows()
        assert np.flatnonzero(masks[r]).tolist() == expected


def test_result_snapshot_is_detached(example_problem):
    sweep = BatchedSweep(example_problem.workflow, 1)
    slot = sweep.acquire_slot()
    sweep.reset_slot(slot, _base_durations(sweep))
    snapshot = sweep.result(slot)
    est_before = snapshot.est.tolist()
    sweep.set_row_duration(slot, 0, 99.0)
    assert snapshot.est.tolist() == est_before


# --------------------------------------------------------------------- #
# Slot lifecycle and validation
# --------------------------------------------------------------------- #


class TestSlotLifecycle:
    def test_acquire_release_reuse(self, example_problem):
        sweep = BatchedSweep(example_problem.workflow, 2)
        first = sweep.acquire_slot()
        second = sweep.acquire_slot()
        assert {first, second} == {0, 1}
        with pytest.raises(ScheduleError, match="all 2 batch slots"):
            sweep.acquire_slot()
        sweep.release_slot(first)
        assert not sweep.active[first]
        assert sweep.acquire_slot() == first

    def test_release_keeps_state_snapshot(self, example_problem):
        sweep = BatchedSweep(example_problem.workflow, 1)
        slot = sweep.acquire_slot()
        sweep.reset_slot(slot, _base_durations(sweep))
        makespan = sweep.makespan(slot)
        sweep.release_slot(slot)
        # A retired slot drops out of the convergence mask but its
        # buffers stay readable (the batch solver snapshots on retire).
        assert sweep.makespan(slot) == makespan


class TestValidation:
    def test_batch_below_one_rejected(self, example_problem):
        with pytest.raises(ScheduleError, match="batch must be >= 1"):
            BatchedSweep(example_problem.workflow, 0)

    def test_bad_fraction_rejected(self, example_problem):
        with pytest.raises(ScheduleError, match="full_sweep_fraction"):
            BatchedSweep(example_problem.workflow, 1, full_sweep_fraction=1.5)

    def test_slot_out_of_range_rejected(self, example_problem):
        sweep = BatchedSweep(example_problem.workflow, 1)
        with pytest.raises(ScheduleError, match="slot 1 out of range"):
            sweep.makespan(1)

    def test_wrong_shape_rejected(self, example_problem):
        sweep = BatchedSweep(example_problem.workflow, 2)
        slots = [sweep.acquire_slot(), sweep.acquire_slot()]
        bad = np.zeros((1, sweep.index.num_nodes))
        with pytest.raises(ScheduleError, match="expected durations of shape"):
            sweep.sweep_batch(slots, bad)

    def test_negative_durations_rejected(self, example_problem):
        sweep = BatchedSweep(example_problem.workflow, 1)
        slot = sweep.acquire_slot()
        matrix = np.full((1, sweep.index.num_nodes), -1.0)
        with pytest.raises(ScheduleError, match="nonnegative"):
            sweep.sweep_batch([slot], matrix)
        sweep.reset_slot(slot, _base_durations(sweep))
        with pytest.raises(ScheduleError, match="negative duration"):
            sweep.set_duration(slot, sweep.index.sched_nodes[0], -1.0)

    def test_wrong_length_reset_rejected(self, example_problem):
        sweep = BatchedSweep(example_problem.workflow, 1)
        slot = sweep.acquire_slot()
        with pytest.raises(ScheduleError, match="durations"):
            sweep.reset_slot(slot, [1.0])
