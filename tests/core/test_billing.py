"""Unit and property tests for the billing policies (Eq. 7's round-up)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.billing import (
    DEFAULT_BILLING,
    BillingPolicy,
    BlockBilling,
    ExactBilling,
    HourlyBilling,
)
from repro.exceptions import CatalogError


class TestHourlyBilling:
    def test_partial_units_round_up(self):
        b = HourlyBilling()
        assert b.billed_units(0.1) == 1.0
        assert b.billed_units(1.0) == 1.0
        assert b.billed_units(1.01) == 2.0
        assert b.billed_units(6.67) == 7.0

    def test_zero_duration_bills_zero(self):
        assert HourlyBilling().billed_units(0.0) == 0.0

    def test_float_noise_does_not_overbill(self):
        # 20/3 hours computed in floating point is 6.666...7; a naive ceil
        # of 2.0000000000000004 would charge 3 units.
        b = HourlyBilling()
        assert b.billed_units(0.30000000000000004 / 0.1) == 3.0
        assert b.billed_units(6.000000000000001) == 6.0

    def test_charge_multiplies_rate(self):
        assert HourlyBilling().charge(6.67, 8.0) == pytest.approx(56.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(CatalogError):
            HourlyBilling().billed_units(-1.0)
        with pytest.raises(CatalogError):
            HourlyBilling().charge(-1.0, 1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(CatalogError):
            HourlyBilling().charge(1.0, -1.0)

    def test_half_unit_boundary_rounds_up_uniformly(self):
        # Regression: the tolerance check anchors on the *nearest* integer.
        # ``round()`` uses banker's rounding, whose tie-break at x.5 depends
        # on the parity of x (round(2.5) == 2 but round(3.5) == 4); the
        # anchor must instead be explicit half-up so even and odd floors
        # behave identically.  A half unit is a partial unit either way.
        b = HourlyBilling()
        assert b.billed_units(0.5) == 1.0
        assert b.billed_units(1.5) == 2.0
        assert b.billed_units(2.5) == 3.0  # banker's would anchor on 2
        assert b.billed_units(3.5) == 4.0  # banker's would anchor on 4
        assert b.billed_units(4.5) == 5.0

    def test_just_past_half_unit_rounds_up(self):
        b = HourlyBilling()
        assert b.billed_units(2.5 + 1e-9) == 3.0
        assert b.billed_units(2.5 - 1e-9) == 3.0

    def test_paper_example_costs(self):
        # Module w4 of the numerical example: WL=20 on VP=3/15/30.
        b = HourlyBilling()
        assert b.charge(20 / 3, 1.0) == pytest.approx(7.0)
        assert b.charge(20 / 15, 4.0) == pytest.approx(8.0)
        assert b.charge(20 / 30, 8.0) == pytest.approx(8.0)


class TestExactBilling:
    def test_no_round_up(self):
        assert ExactBilling().billed_units(1.23) == pytest.approx(1.23)

    def test_charge(self):
        assert ExactBilling().charge(2.5, 4.0) == pytest.approx(10.0)


class TestBlockBilling:
    def test_block_equivalent_to_hourly_at_one(self):
        assert BlockBilling(1.0).billed_units(3.2) == HourlyBilling().billed_units(3.2)

    def test_minute_blocks(self):
        b = BlockBilling(1 / 60)
        assert b.billed_units(0.5) == pytest.approx(0.5)
        assert b.billed_units(0.001) == pytest.approx(1 / 60)

    def test_invalid_block_rejected(self):
        with pytest.raises(CatalogError):
            BlockBilling(0.0)
        with pytest.raises(CatalogError):
            BlockBilling(-1.0)

    def test_ten_minute_blocks(self):
        b = BlockBilling(1 / 6)
        assert b.billed_units(0.4) == pytest.approx(0.5)

    def test_half_block_boundary_rounds_up(self):
        # Same regression as the hourly x.5 boundary, scaled by the block.
        b = BlockBilling(2.0)
        assert b.billed_units(5.0) == pytest.approx(6.0)  # 2.5 blocks -> 3
        assert b.billed_units(7.0) == pytest.approx(8.0)  # 3.5 blocks -> 4


class TestDefault:
    def test_default_is_hourly(self):
        assert isinstance(DEFAULT_BILLING, HourlyBilling)

    def test_policies_are_value_objects(self):
        assert HourlyBilling() == HourlyBilling()
        assert BlockBilling(0.5) == BlockBilling(0.5)
        assert BlockBilling(0.5) != BlockBilling(0.25)


@given(duration=st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_billed_units_never_below_duration(duration):
    """Property: every policy bills at least the raw duration."""
    for policy in (HourlyBilling(), ExactBilling(), BlockBilling(0.25)):
        assert policy.billed_units(duration) >= duration - 1e-6


@given(
    d1=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    d2=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
)
def test_billing_is_monotone(d1, d2):
    """Property: longer runs never bill fewer units."""
    lo, hi = sorted((d1, d2))
    for policy in (HourlyBilling(), ExactBilling(), BlockBilling(0.5)):
        assert policy.billed_units(lo) <= policy.billed_units(hi) + 1e-9


@given(duration=st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
def test_hourly_billing_overhead_below_one_unit(duration):
    """Property: the round-up penalty never exceeds 1 unit.

    (For durations so tiny that ``1.0 - duration`` rounds to ``1.0`` in
    floating point, the strict inequality is unrepresentable, so assert
    strictness only above that scale.)
    """
    billed = HourlyBilling().billed_units(duration)
    assert billed - duration <= 1.0
    if duration > 1e-12:
        assert billed - duration < 1.0


class TestBilledUnitsArray:
    """The vectorized round-up must match the scalar path elementwise."""

    POLICIES = (HourlyBilling(), ExactBilling(), BlockBilling(0.5), BlockBilling(1 / 60))

    @given(
        durations=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    def test_matches_scalar_elementwise(self, durations):
        import numpy as np

        values = np.array(durations).reshape(-1, 1)
        for policy in self.POLICIES:
            array = policy.billed_units_array(values)
            scalar = np.array(
                [[policy.billed_units(v)] for v in values.ravel()]
            )
            assert array.shape == values.shape
            assert (array == scalar).all(), policy

    def test_boundary_noise_forgiven_like_scalar(self):
        import numpy as np

        noisy = np.array([6.000000000000001, 5.999999999999999, 6.0, 6.5, 0.0])
        billed = HourlyBilling().billed_units_array(noisy)
        expected = [HourlyBilling().billed_units(v) for v in noisy]
        assert billed.tolist() == expected
        assert billed[0] == 6.0  # float noise forgiven, not pushed to 7

    def test_negative_rejected(self):
        import numpy as np

        for policy in (HourlyBilling(), ExactBilling(), BlockBilling(2.0)):
            with pytest.raises(CatalogError):
                policy.billed_units_array(np.array([1.0, -0.5]))

    def test_base_class_fallback_loops_scalar(self):
        import numpy as np

        class DoubleBilling(BillingPolicy):
            def billed_units(self, duration: float) -> float:
                return 2.0 * duration

        values = np.array([[0.5, 1.25], [3.0, 0.0]])
        assert DoubleBilling().billed_units_array(values).tolist() == [
            [1.0, 2.5],
            [6.0, 0.0],
        ]
