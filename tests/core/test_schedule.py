"""Unit tests for Schedule and ScheduleEvaluation."""

import pytest

from repro.core.matrices import compute_matrices
from repro.core.schedule import Schedule
from repro.exceptions import ScheduleError
from repro.workloads.example import example_catalog, example_problem, example_workflow


@pytest.fixture
def matrices():
    return compute_matrices(example_workflow(), example_catalog())


@pytest.fixture
def least_cost():
    return example_problem().least_cost_schedule()


class TestScheduleBasics:
    def test_lookup(self, least_cost):
        assert least_cost["w1"] == 1
        assert "w1" in least_cost
        assert len(least_cost) == 6

    def test_unknown_module_raises(self, least_cost):
        with pytest.raises(ScheduleError):
            least_cost["ghost"]

    def test_with_assignment_is_pure(self, least_cost):
        upgraded = least_cost.with_assignment("w4", 2)
        assert upgraded["w4"] == 2
        assert least_cost["w4"] == 0

    def test_with_assignment_unknown_module(self, least_cost):
        with pytest.raises(ScheduleError):
            least_cost.with_assignment("ghost", 1)

    def test_as_type_names(self, least_cost):
        names = least_cost.as_type_names(("VT1", "VT2", "VT3"))
        assert names["w3"] == "VT1"
        assert names["w1"] == "VT2"

    def test_type_vector_ordering(self, least_cost):
        vec = least_cost.type_vector(("w1", "w2", "w3", "w4", "w5", "w6"))
        assert vec == (1, 1, 0, 0, 1, 0)


class TestValidation:
    def test_missing_module_rejected(self, matrices):
        bad = Schedule({"w1": 0})
        with pytest.raises(ScheduleError, match="missing"):
            bad.validate(matrices)

    def test_extra_module_rejected(self, matrices, least_cost):
        bad = Schedule({**least_cost.assignment, "ghost": 0})
        with pytest.raises(ScheduleError, match="extra"):
            bad.validate(matrices)

    def test_out_of_range_type_rejected(self, matrices, least_cost):
        bad = least_cost.with_assignment("w1", 99)
        with pytest.raises(ScheduleError, match="invalid VM-type index"):
            bad.validate(matrices)

    def test_negative_type_rejected(self, matrices, least_cost):
        bad = least_cost.with_assignment("w1", -1)
        with pytest.raises(ScheduleError):
            bad.validate(matrices)


class TestEvaluation:
    def test_least_cost_totals(self, matrices, least_cost):
        assert least_cost.total_cost(matrices) == pytest.approx(48.0)

    def test_durations_include_fixed_modules(self, matrices, least_cost):
        durations = least_cost.durations(example_workflow(), matrices)
        assert durations["w0"] == 1.0
        assert durations["w7"] == 1.0
        assert durations["w4"] == pytest.approx(20 / 3)

    def test_evaluate_produces_cp_analysis(self, matrices, least_cost):
        ev = least_cost.evaluate(example_workflow(), matrices)
        assert ev.total_cost == pytest.approx(48.0)
        # Entry (1h) + w1 (1h) + w4 (20/3) + w6 (17/3) + exit (1h).
        assert ev.makespan == pytest.approx(2 + 1 + 20 / 3 + 17 / 3)
        assert ev.analysis.critical_path[0] == "w0"

    def test_within_budget(self, matrices, least_cost):
        ev = least_cost.evaluate(example_workflow(), matrices)
        assert ev.within_budget(48.0)
        assert ev.within_budget(48.0 - 1e-12)  # tolerance
        assert not ev.within_budget(47.0)

    def test_summary_mentions_cost_and_path(self, matrices, least_cost):
        text = least_cost.evaluate(example_workflow(), matrices).summary()
        assert "cost=48" in text
        assert "w0" in text

    def test_transfer_times_affect_makespan(self, matrices, least_cost):
        base = least_cost.evaluate(example_workflow(), matrices).makespan
        slowed = least_cost.evaluate(
            example_workflow(),
            matrices,
            transfer_times={("w0", "w1"): 2.0},
        ).makespan
        # w0->w1 sits on the critical path, so +2 moves the makespan.
        assert slowed == pytest.approx(base + 2.0)


class TestWithAssignmentFastPath:
    """with_assignment: one fresh copy, immutability intact (perf satellite)."""

    def test_returns_new_independent_schedule(self, least_cost):
        module = next(iter(least_cost.assignment))
        updated = least_cost.with_assignment(module, 1)
        assert updated is not least_cost
        assert updated[module] == 1
        assert updated.assignment is not least_cost.assignment

    def test_original_unchanged(self, least_cost):
        module = next(iter(least_cost.assignment))
        before = dict(least_cost.assignment)
        least_cost.with_assignment(module, 1)
        assert least_cost.assignment == before

    def test_result_is_still_frozen(self, least_cost):
        module = next(iter(least_cost.assignment))
        updated = least_cost.with_assignment(module, 1)
        with pytest.raises(AttributeError):
            updated.assignment = {}

    def test_unknown_module_rejected(self, least_cost):
        with pytest.raises(ScheduleError):
            least_cost.with_assignment("nope", 0)

    def test_adopted_schedule_behaves_like_constructed(self, least_cost):
        clone = Schedule(dict(least_cost.assignment))
        assert clone == least_cost
        assert len(clone) == len(least_cost)


class TestEvaluateKernelParity:
    """Schedule.evaluate: fast kernel and reference path agree exactly."""

    def test_kernel_and_reference_evaluations_match(self, least_cost):
        from repro.core import fastpath

        problem = example_problem()
        on = least_cost.evaluate(problem.workflow, problem.matrices)
        previous = fastpath.set_kernel_enabled(False)
        try:
            off = least_cost.evaluate(problem.workflow, problem.matrices)
        finally:
            fastpath.set_kernel_enabled(previous)
        assert on.total_cost == off.total_cost
        assert on.makespan == off.makespan
        assert on.analysis == off.analysis
        assert on.analysis.critical_path == off.analysis.critical_path
