"""Tests for problem-instance JSON serialization."""

import json

import pytest

from repro.core.billing import BlockBilling, ExactBilling, HourlyBilling
from repro.core.problem import MedCCProblem, TransferModel
from repro.core.serialize import (
    load_problem,
    problem_from_dict,
    problem_to_dict,
    save_problem,
)
from repro.exceptions import ReproError


class TestRoundtrip:
    def test_example_roundtrip(self, example_problem):
        clone = problem_from_dict(problem_to_dict(example_problem))
        assert clone.cmin == example_problem.cmin
        assert clone.cmax == example_problem.cmax
        assert clone.workflow.module_names == example_problem.workflow.module_names
        assert clone.catalog.names == example_problem.catalog.names

    def test_wrf_roundtrip_preserves_measured_te(self, wrf_problem):
        clone = problem_from_dict(problem_to_dict(wrf_problem))
        assert clone.measured_te == {
            k: tuple(v) for k, v in wrf_problem.measured_te.items()
        }
        assert clone.cmin == pytest.approx(125.9)

    def test_schedules_agree_after_roundtrip(self, example_problem):
        from repro.algorithms.critical_greedy import CriticalGreedyScheduler

        clone = problem_from_dict(problem_to_dict(example_problem))
        a = CriticalGreedyScheduler().solve(example_problem, 57.0)
        b = CriticalGreedyScheduler().solve(clone, 57.0)
        assert a.schedule.assignment == b.schedule.assignment
        assert a.med == pytest.approx(b.med)

    def test_transfers_roundtrip(self, example_problem):
        problem = MedCCProblem(
            workflow=example_problem.workflow,
            catalog=example_problem.catalog,
            transfers=TransferModel(bandwidth=3.0, latency=0.5, unit_cost=0.1),
        )
        clone = problem_from_dict(problem_to_dict(problem))
        assert clone.transfers == problem.transfers

    def test_infinite_bandwidth_roundtrip(self, example_problem):
        clone = problem_from_dict(problem_to_dict(example_problem))
        assert clone.transfers.is_free

    @pytest.mark.parametrize(
        "billing", [HourlyBilling(), ExactBilling(), BlockBilling(0.25)]
    )
    def test_billing_roundtrip(self, example_problem, billing):
        problem = MedCCProblem(
            workflow=example_problem.workflow,
            catalog=example_problem.catalog,
            billing=billing,
        )
        clone = problem_from_dict(problem_to_dict(problem))
        assert clone.billing == billing


class TestFiles:
    def test_save_and_load(self, tmp_path, example_problem):
        path = save_problem(example_problem, tmp_path / "instance.json")
        clone = load_problem(path)
        assert clone.cmin == pytest.approx(48.0)

    def test_invalid_json_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError, match="invalid instance file"):
            load_problem(bad)

    def test_unknown_version_rejected(self, tmp_path, example_problem):
        payload = problem_to_dict(example_problem)
        payload["format_version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ReproError, match="format version"):
            load_problem(path)

    def test_unknown_billing_rejected(self, example_problem):
        payload = problem_to_dict(example_problem)
        payload["billing"] = {"kind": "quantum"}
        with pytest.raises(ReproError, match="billing"):
            problem_from_dict(payload)


class TestCLIIntegration:
    def test_generate_then_solve(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "gen.json"
        assert (
            main(
                [
                    "generate",
                    "--modules",
                    "8",
                    "--edges",
                    "12",
                    "--types",
                    "3",
                    "--output",
                    str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "budget range" in out
        problem = load_problem(path)
        budget = problem.median_budget()
        assert (
            main(["solve", "--file", str(path), "--budget", str(budget)]) == 0
        )
        assert "MED=" in capsys.readouterr().out
