"""Unit tests for VM types and catalogs."""

import pytest

from repro.core.vm import VMType, VMTypeCatalog, linear_priced_catalog
from repro.exceptions import CatalogError


class TestVMType:
    def test_basic(self):
        vt = VMType(name="VT1", power=3.0, rate=1.0)
        assert vt.power == 3.0
        assert vt.startup_time == 0.0

    def test_invalid_power(self):
        with pytest.raises(CatalogError):
            VMType(name="x", power=0.0, rate=1.0)
        with pytest.raises(CatalogError):
            VMType(name="x", power=-1.0, rate=1.0)

    def test_invalid_rate(self):
        with pytest.raises(CatalogError):
            VMType(name="x", power=1.0, rate=-0.5)

    def test_zero_rate_allowed(self):
        assert VMType(name="free", power=1.0, rate=0.0).rate == 0.0

    def test_empty_name_rejected(self):
        with pytest.raises(CatalogError):
            VMType(name="", power=1.0, rate=1.0)

    def test_negative_startup_rejected(self):
        with pytest.raises(CatalogError):
            VMType(name="x", power=1.0, rate=1.0, startup_time=-1.0)


class TestVMTypeCatalog:
    def _catalog(self) -> VMTypeCatalog:
        return VMTypeCatalog(
            [
                VMType(name="VT1", power=3.0, rate=1.0),
                VMType(name="VT2", power=15.0, rate=4.0),
                VMType(name="VT3", power=30.0, rate=8.0),
            ]
        )

    def test_indexing_by_position_and_name(self):
        cat = self._catalog()
        assert cat[0].name == "VT1"
        assert cat["VT2"].power == 15.0
        assert cat.index_of("VT3") == 2

    def test_unknown_name_raises(self):
        with pytest.raises(CatalogError):
            self._catalog().index_of("VT9")
        with pytest.raises(CatalogError):
            self._catalog()["VT9"]

    def test_empty_catalog_rejected(self):
        with pytest.raises(CatalogError):
            VMTypeCatalog([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(CatalogError):
            VMTypeCatalog(
                [
                    VMType(name="A", power=1.0, rate=1.0),
                    VMType(name="A", power=2.0, rate=2.0),
                ]
            )

    def test_powers_rates_names(self):
        cat = self._catalog()
        assert cat.powers == (3.0, 15.0, 30.0)
        assert cat.rates == (1.0, 4.0, 8.0)
        assert cat.names == ("VT1", "VT2", "VT3")

    def test_fastest_and_cheapest(self):
        cat = self._catalog()
        assert cat.fastest() == 2
        assert cat.cheapest() == 0

    def test_fastest_tie_prefers_lower_rate(self):
        cat = VMTypeCatalog(
            [
                VMType(name="A", power=10.0, rate=5.0),
                VMType(name="B", power=10.0, rate=3.0),
            ]
        )
        assert cat.fastest() == 1

    def test_cheapest_tie_prefers_higher_power(self):
        cat = VMTypeCatalog(
            [
                VMType(name="A", power=5.0, rate=2.0),
                VMType(name="B", power=10.0, rate=2.0),
            ]
        )
        assert cat.cheapest() == 1

    def test_subset(self):
        sub = self._catalog().subset(["VT3", "VT1"])
        assert sub.names == ("VT3", "VT1")
        assert len(sub) == 2

    def test_membership_and_iteration(self):
        cat = self._catalog()
        assert "VT1" in cat and "nope" not in cat
        assert [t.name for t in cat] == ["VT1", "VT2", "VT3"]


class TestLinearPricedCatalog:
    def test_linear_units(self):
        cat = linear_priced_catalog([1, 2, 4], base_power=10.0, base_price=0.5)
        assert cat.powers == (10.0, 20.0, 40.0)
        assert cat.rates == (0.5, 1.0, 2.0)
        assert cat.names == ("VT1", "VT2", "VT3")

    def test_custom_prefix(self):
        cat = linear_priced_catalog([1], name_prefix="small")
        assert cat.names == ("small1",)

    def test_empty_units_rejected(self):
        with pytest.raises(CatalogError):
            linear_priced_catalog([])

    def test_nonpositive_units_rejected(self):
        with pytest.raises(CatalogError):
            linear_priced_catalog([1, 0])

    def test_price_per_power_constant(self):
        cat = linear_priced_catalog([1, 3, 9], base_power=2.0, base_price=0.4)
        ratios = {round(t.rate / t.power, 9) for t in cat}
        assert len(ratios) == 1
