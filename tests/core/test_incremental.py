"""IncrementalSweep must stay bit-identical to a from-scratch sweep.

The incremental engine's whole contract is exactness: after any sequence
of single-duration updates, every buffer (EST/EFT/LST/LFT/argmax/makespan
and the numpy mirrors) equals what :func:`repro.core.fastpath.sweep_arrays`
produces from scratch on the current duration vector — bitwise, no
tolerances.  These tests drive random update sequences on random DAGs
(with and without transfer times, across the full-sweep-fraction
extremes) and compare every buffer after every update.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fastpath
from repro.core.fastpath import IncrementalSweep, sweep_arrays, transfer_vector
from repro.core.problem import TransferModel
from repro.exceptions import ScheduleError
from tests.conftest import medcc_problems


def _durations_for(problem):
    schedule = problem.least_cost_schedule()
    return schedule.durations(problem.workflow, problem.matrices)


def _with_transfers(problem):
    return dataclasses.replace(
        problem, transfers=TransferModel(bandwidth=2.0, latency=0.5)
    )


def _assert_matches_full_sweep(sweep: IncrementalSweep, durations, transfers):
    ref = sweep_arrays(sweep.index, durations, transfers)
    assert sweep.est == ref[0]
    assert sweep.eft == ref[1]
    assert sweep.lst == ref[2]
    assert sweep.lft == ref[3]
    assert sweep.argmax_pred == ref[4]
    assert sweep.makespan == ref[5]
    # The numpy mirrors are synced by span slices — they must track the
    # list buffers exactly, or critical_rows() silently drifts.
    assert sweep.est_array.tolist() == ref[0]
    assert sweep.lst_array.tolist() == ref[2]


# --------------------------------------------------------------------- #
# The core property: bit-identity after random update sequences
# --------------------------------------------------------------------- #


@given(problem=medcc_problems(), data=st.data())
@settings(max_examples=40, deadline=None)
@pytest.mark.parametrize("fraction", [0.0, 0.5, 1.0])
@pytest.mark.parametrize("with_transfers", [False, True])
def test_incremental_matches_full_sweep(problem, data, fraction, with_transfers):
    if with_transfers:
        problem = _with_transfers(problem)
    transfer_times = problem.transfer_times or None
    sweep = IncrementalSweep(
        problem.workflow,
        _durations_for(problem),
        transfer_times=transfer_times,
        full_sweep_fraction=fraction,
    )
    index = sweep.index
    transfers = transfer_vector(index, transfer_times)
    durations = [sweep.duration_of(v) for v in range(index.num_nodes)]

    updates = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=index.num_nodes - 1),
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            ),
            min_size=1,
            max_size=12,
        )
    )
    for node, value in updates:
        durations[node] = float(value)
        makespan = sweep.set_duration(node, value)
        assert makespan == sweep.makespan
        _assert_matches_full_sweep(sweep, durations, transfers)


@given(problem=medcc_problems(), data=st.data())
@settings(max_examples=25, deadline=None)
def test_row_updates_and_critical_rows(problem, data):
    """Row-addressed updates and the vectorized critical mask.

    ``set_row_duration`` must address the same module as the TE/CE row
    order, and ``critical_rows()`` must select exactly the rows the
    immutable :class:`FastPathResult` path selects.
    """
    sweep = IncrementalSweep(problem.workflow, _durations_for(problem))
    index = sweep.index
    rows = len(index.sched_nodes)
    updates = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=rows - 1),
                st.floats(min_value=0.1, max_value=30.0, allow_nan=False),
            ),
            min_size=1,
            max_size=8,
        )
    )
    for row, value in updates:
        sweep.set_row_duration(row, value)
        assert sweep.duration_of(index.sched_nodes[row]) == float(value)
        result = sweep.result()
        mask = sweep.critical_rows()
        assert np.flatnonzero(mask).tolist() == result.critical_schedulable_rows()


def test_fraction_zero_always_full_sweeps(example_problem):
    sweep = IncrementalSweep(
        example_problem.workflow,
        _durations_for(example_problem),
        full_sweep_fraction=0.0,
    )
    base_full = sweep.full_sweeps
    sweep.set_row_duration(0, 123.0)
    assert sweep.full_sweeps == base_full + 1
    assert sweep.incremental_updates == 0


def test_fraction_one_never_full_sweeps_after_init(example_problem):
    sweep = IncrementalSweep(
        example_problem.workflow,
        _durations_for(example_problem),
        full_sweep_fraction=1.0,
    )
    assert sweep.full_sweeps == 1  # the constructor's initial sweep
    rows = len(sweep.index.sched_nodes)
    for row in range(rows):
        sweep.set_row_duration(row, 7.0 + row)
    assert sweep.full_sweeps == 1
    assert sweep.incremental_updates == rows


def test_noop_update_short_circuits(example_problem):
    sweep = IncrementalSweep(example_problem.workflow, _durations_for(example_problem))
    node = sweep.index.sched_nodes[0]
    before = (sweep.full_sweeps, sweep.incremental_updates, sweep.nodes_recomputed)
    makespan = sweep.set_duration(node, sweep.duration_of(node))
    assert makespan == sweep.makespan
    assert (sweep.full_sweeps, sweep.incremental_updates, sweep.nodes_recomputed) == before
    assert sweep.updates == 1


def test_reset_restores_bit_identity(example_problem):
    durations = _durations_for(example_problem)
    sweep = IncrementalSweep(example_problem.workflow, durations)
    baseline = sweep_arrays(
        sweep.index, [sweep.duration_of(v) for v in range(sweep.index.num_nodes)], None
    )
    for row in range(len(sweep.index.sched_nodes)):
        sweep.set_row_duration(row, 1.0 + row)
    sweep.reset(durations)
    assert sweep.est == baseline[0]
    assert sweep.lst == baseline[2]
    assert sweep.makespan == baseline[5]


class TestValidation:
    def test_bad_fraction_rejected(self, example_problem):
        for fraction in (-0.1, 1.5):
            with pytest.raises(ScheduleError, match="full_sweep_fraction"):
                IncrementalSweep(
                    example_problem.workflow, full_sweep_fraction=fraction
                )

    def test_negative_duration_rejected(self, example_problem):
        sweep = IncrementalSweep(example_problem.workflow)
        with pytest.raises(ScheduleError, match="negative duration"):
            sweep.set_duration(sweep.index.sched_nodes[0], -1.0)

    def test_node_out_of_range_rejected(self, example_problem):
        sweep = IncrementalSweep(example_problem.workflow)
        with pytest.raises(ScheduleError, match="out of range"):
            sweep.set_duration(sweep.index.num_nodes, 1.0)

    def test_row_out_of_range_rejected(self, example_problem):
        sweep = IncrementalSweep(example_problem.workflow)
        with pytest.raises(ScheduleError, match="out of range"):
            sweep.set_row_duration(len(sweep.index.sched_nodes), 1.0)

    def test_wrong_length_vector_rejected(self, example_problem):
        sweep = IncrementalSweep(example_problem.workflow)
        with pytest.raises(ScheduleError, match="durations"):
            sweep.reset_vector([1.0])

    def test_missing_name_rejected(self, example_problem):
        sweep = IncrementalSweep(example_problem.workflow)
        with pytest.raises(ScheduleError, match="no duration supplied"):
            sweep.reset({})


def test_result_snapshot_is_detached(example_problem):
    """result() snapshots: later updates must not mutate it."""
    sweep = IncrementalSweep(example_problem.workflow, _durations_for(example_problem))
    snapshot = sweep.result()
    est_before = snapshot.est.tolist()
    sweep.set_row_duration(0, 99.0)
    assert snapshot.est.tolist() == est_before
    analysis = snapshot.as_analysis()
    ref = fastpath.fast_critical_path(
        example_problem.workflow, _durations_for(example_problem)
    ).as_analysis()
    assert analysis == ref
