"""Unit tests for the Module and DataDependency primitives."""

import math

import pytest

from repro.core.module import DataDependency, Module
from repro.exceptions import WorkflowValidationError


class TestModule:
    def test_basic_construction(self):
        m = Module("w1", workload=10.0)
        assert m.name == "w1"
        assert m.workload == 10.0
        assert m.is_schedulable
        assert not m.is_fixed

    def test_fixed_module(self):
        m = Module("entry", fixed_time=1.0)
        assert m.is_fixed
        assert not m.is_schedulable
        assert m.fixed_time == 1.0

    def test_execution_time_follows_eq6(self):
        m = Module("w", workload=30.0)
        assert m.execution_time(3.0) == pytest.approx(10.0)
        assert m.execution_time(15.0) == pytest.approx(2.0)
        assert m.execution_time(30.0) == pytest.approx(1.0)

    def test_fixed_execution_time_ignores_power(self):
        m = Module("entry", fixed_time=1.5)
        assert m.execution_time(3.0) == 1.5
        assert m.execution_time(1000.0) == 1.5

    def test_zero_workload_allowed(self):
        m = Module("w", workload=0.0)
        assert m.execution_time(5.0) == 0.0

    def test_empty_name_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Module("")

    def test_negative_workload_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Module("w", workload=-1.0)

    def test_nan_workload_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Module("w", workload=math.nan)

    def test_infinite_workload_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Module("w", workload=math.inf)

    def test_negative_fixed_time_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Module("w", fixed_time=-0.5)

    def test_nonpositive_power_rejected(self):
        m = Module("w", workload=10.0)
        with pytest.raises(WorkflowValidationError):
            m.execution_time(0.0)
        with pytest.raises(WorkflowValidationError):
            m.execution_time(-2.0)

    def test_with_workload_preserves_identity_fields(self):
        m = Module("w", workload=10.0, metadata=(("k", "v"),))
        m2 = m.with_workload(20.0)
        assert m2.workload == 20.0
        assert m2.name == "w"
        assert m2.metadata == (("k", "v"),)
        assert m.workload == 10.0  # original untouched

    def test_modules_hashable_and_equal_by_value(self):
        assert Module("w", workload=1.0) == Module("w", workload=1.0)
        assert Module("w", workload=1.0) != Module("w", workload=2.0)
        assert len({Module("w", workload=1.0), Module("w", workload=1.0)}) == 1

    def test_metadata_excluded_from_equality(self):
        assert Module("w", workload=1.0, metadata=(("a", 1),)) == Module(
            "w", workload=1.0
        )


class TestDataDependency:
    def test_basic_edge(self):
        e = DataDependency("a", "b", data_size=5.0)
        assert e.key == ("a", "b")
        assert e.data_size == 5.0

    def test_default_data_size_zero(self):
        assert DataDependency("a", "b").data_size == 0.0

    def test_self_loop_rejected(self):
        with pytest.raises(WorkflowValidationError):
            DataDependency("a", "a")

    def test_empty_endpoint_rejected(self):
        with pytest.raises(WorkflowValidationError):
            DataDependency("", "b")
        with pytest.raises(WorkflowValidationError):
            DataDependency("a", "")

    def test_negative_data_size_rejected(self):
        with pytest.raises(WorkflowValidationError):
            DataDependency("a", "b", data_size=-1.0)

    def test_nan_data_size_rejected(self):
        with pytest.raises(WorkflowValidationError):
            DataDependency("a", "b", data_size=math.nan)
