"""Unit tests for the Workflow DAG model and the builder."""

import pytest

from repro.core.module import DataDependency, Module
from repro.core.workflow import Workflow, WorkflowBuilder
from repro.exceptions import WorkflowValidationError


def _simple_workflow() -> Workflow:
    return Workflow(
        [Module("a", workload=1.0), Module("b", workload=2.0), Module("c", workload=3.0)],
        [DataDependency("a", "b", data_size=1.0), DataDependency("b", "c", data_size=2.0)],
        name="simple",
    )


class TestWorkflowConstruction:
    def test_entry_and_exit_detection(self):
        wf = _simple_workflow()
        assert wf.entry == "a"
        assert wf.exit == "c"
        assert wf.num_modules == 3
        assert wf.num_edges == 2

    def test_duplicate_module_rejected(self):
        with pytest.raises(WorkflowValidationError, match="duplicate module"):
            Workflow([Module("a", workload=1.0), Module("a", workload=2.0)])

    def test_empty_workflow_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Workflow([])

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(WorkflowValidationError, match="unknown"):
            Workflow([Module("a", workload=1.0)], [DataDependency("a", "ghost")])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(WorkflowValidationError, match="duplicate edge"):
            Workflow(
                [Module("a", workload=1.0), Module("b", workload=1.0)],
                [DataDependency("a", "b"), DataDependency("a", "b", data_size=2.0)],
            )

    def test_cycle_rejected(self):
        with pytest.raises(WorkflowValidationError, match="cycle"):
            Workflow(
                [Module(n, workload=1.0) for n in "abc"],
                [
                    DataDependency("a", "b"),
                    DataDependency("b", "c"),
                    DataDependency("c", "a"),
                ],
            )

    def test_multiple_sources_rejected(self):
        with pytest.raises(WorkflowValidationError, match="exactly one entry"):
            Workflow(
                [Module(n, workload=1.0) for n in "abc"],
                [DataDependency("a", "c"), DataDependency("b", "c")],
            )

    def test_multiple_sinks_rejected(self):
        with pytest.raises(WorkflowValidationError, match="exactly one exit"):
            Workflow(
                [Module(n, workload=1.0) for n in "abc"],
                [DataDependency("a", "b"), DataDependency("a", "c")],
            )

    def test_single_module_workflow_valid(self):
        wf = Workflow([Module("only", workload=1.0)])
        assert wf.entry == wf.exit == "only"


class TestWorkflowAccessors:
    def test_module_lookup_and_error(self):
        wf = _simple_workflow()
        assert wf.module("b").workload == 2.0
        with pytest.raises(WorkflowValidationError):
            wf.module("nope")

    def test_dependency_lookup_and_error(self):
        wf = _simple_workflow()
        assert wf.dependency("a", "b").data_size == 1.0
        with pytest.raises(WorkflowValidationError):
            wf.dependency("a", "c")

    def test_predecessors_successors_sorted(self):
        wf = Workflow(
            [Module(n, workload=1.0) for n in ("s", "b", "a", "t")],
            [
                DataDependency("s", "b"),
                DataDependency("s", "a"),
                DataDependency("a", "t"),
                DataDependency("b", "t"),
            ],
        )
        assert wf.successors("s") == ("a", "b")
        assert wf.predecessors("t") == ("a", "b")

    def test_topological_order_is_deterministic_and_valid(self):
        wf = _simple_workflow()
        order = wf.topological_order()
        assert order == ("a", "b", "c")
        assert order == wf.topological_order()

    def test_contains_iter_len(self):
        wf = _simple_workflow()
        assert "a" in wf and "zzz" not in wf
        assert len(wf) == 3
        assert [m.name for m in wf] == ["a", "b", "c"]

    def test_schedulable_names_excludes_fixed(self):
        wf = Workflow(
            [
                Module("in", fixed_time=1.0),
                Module("m", workload=5.0),
                Module("out", fixed_time=1.0),
            ],
            [DataDependency("in", "m"), DataDependency("m", "out")],
        )
        assert wf.schedulable_names == ("m",)
        assert wf.module_names == ("in", "m", "out")

    def test_layers(self):
        wf = Workflow(
            [Module(n, workload=1.0) for n in ("s", "a", "b", "t")],
            [
                DataDependency("s", "a"),
                DataDependency("s", "b"),
                DataDependency("a", "t"),
                DataDependency("b", "t"),
            ],
        )
        assert wf.layers() == [("s",), ("a", "b"), ("t",)]

    def test_total_workload_and_problem_size(self):
        wf = _simple_workflow()
        assert wf.total_workload() == pytest.approx(6.0)
        assert wf.problem_size(4) == (3, 2, 4)

    def test_edges_iteration_deterministic(self):
        wf = _simple_workflow()
        assert [e.key for e in wf.edges()] == [("a", "b"), ("b", "c")]


class TestWorkflowSerialization:
    def test_roundtrip(self):
        wf = _simple_workflow()
        clone = Workflow.from_dict(wf.to_dict())
        assert clone.name == wf.name
        assert clone.module_names == wf.module_names
        assert [e.key for e in clone.edges()] == [e.key for e in wf.edges()]
        assert clone.module("b").workload == 2.0

    def test_roundtrip_preserves_fixed_time(self):
        wf = Workflow(
            [Module("in", fixed_time=1.5), Module("m", workload=2.0)],
            [DataDependency("in", "m")],
        )
        clone = Workflow.from_dict(wf.to_dict())
        assert clone.module("in").fixed_time == 1.5

    def test_relabeled(self):
        wf = _simple_workflow()
        renamed = wf.relabeled({"a": "alpha"})
        assert renamed.entry == "alpha"
        assert renamed.dependency("alpha", "b").data_size == 1.0


class TestWorkflowBuilder:
    def test_chained_build(self):
        wf = (
            WorkflowBuilder("demo")
            .add_module("x", workload=1.0)
            .add_module("y", workload=2.0)
            .add_edge("x", "y", data_size=3.0)
            .build()
        )
        assert wf.name == "demo"
        assert wf.num_edges == 1

    def test_normalized_adds_virtual_endpoints(self):
        wf = (
            WorkflowBuilder("multi")
            .add_module("a", workload=1.0)
            .add_module("b", workload=1.0)
            .normalized()
        )
        # Two isolated modules get a shared entry and exit.
        assert wf.entry == "__entry__"
        assert wf.exit == "__exit__"
        assert not wf.module(wf.entry).is_schedulable

    def test_normalized_noop_for_single_source_sink(self):
        wf = (
            WorkflowBuilder("chain")
            .add_module("a", workload=1.0)
            .add_module("b", workload=1.0)
            .add_edge("a", "b")
            .normalized()
        )
        assert wf.entry == "a"
        assert wf.exit == "b"

    def test_normalized_name_collision_rejected(self):
        builder = WorkflowBuilder("bad").add_module("__entry__", workload=1.0)
        with pytest.raises(WorkflowValidationError, match="collision"):
            builder.normalized()

    def test_module_names_listing(self):
        b = WorkflowBuilder().add_module("a", workload=1.0).add_module("b", workload=1.0)
        assert b.module_names() == ["a", "b"]
