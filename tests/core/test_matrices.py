"""Unit tests for the TE/CE matrices, checked against the paper's numbers."""

import numpy as np
import pytest

from repro.core.billing import ExactBilling
from repro.core.matrices import compute_matrices
from repro.core.module import DataDependency, Module
from repro.core.vm import VMType, VMTypeCatalog
from repro.core.workflow import Workflow
from repro.exceptions import ScheduleError
from repro.workloads.example import example_catalog, example_workflow
from repro.workloads.wrf import WRF_TE, wrf_problem


class TestExampleMatrices:
    """The reconstructed numerical example against the derivable values."""

    @pytest.fixture
    def matrices(self):
        return compute_matrices(example_workflow(), example_catalog())

    def test_shape_and_labels(self, matrices):
        assert matrices.te.shape == (6, 3)
        assert matrices.module_names == ("w1", "w2", "w3", "w4", "w5", "w6")
        assert matrices.type_names == ("VT1", "VT2", "VT3")

    def test_w4_execution_times(self, matrices):
        # WL_4 = 20 (pinned by the paper's worked step "decreases the
        # execution time of w4 by 6").
        assert matrices.time("w4", 0) == pytest.approx(20 / 3)
        assert matrices.time("w4", 1) == pytest.approx(20 / 15)
        assert matrices.time("w4", 2) == pytest.approx(20 / 30)

    def test_w4_costs(self, matrices):
        assert matrices.cost("w4", 0) == pytest.approx(7.0)
        assert matrices.cost("w4", 1) == pytest.approx(8.0)
        assert matrices.cost("w4", 2) == pytest.approx(8.0)

    def test_cmin_cmax_match_paper(self, matrices):
        assert matrices.cmin() == pytest.approx(48.0)
        assert matrices.cmax() == pytest.approx(64.0)

    def test_least_cost_choice_matches_table2_row6(self, matrices):
        # Least-cost schedule: w1, w2, w5 on VT2; w3, w4, w6 on VT1.
        choice = matrices.least_cost_choice()
        by_name = dict(zip(matrices.module_names, choice))
        assert by_name == {"w1": 1, "w2": 1, "w3": 0, "w4": 0, "w5": 1, "w6": 0}

    def test_fastest_choice_all_vt3(self, matrices):
        assert list(matrices.fastest_choice()) == [2] * 6

    def test_matrices_read_only(self, matrices):
        with pytest.raises(ValueError):
            matrices.te[0, 0] = 99.0
        with pytest.raises(ValueError):
            matrices.ce[0, 0] = 99.0


class TestMeasuredTE:
    """The WRF instance's measured-TE override (paper Table VI)."""

    def test_wrf_te_matches_table6(self):
        matrices = wrf_problem().matrices
        for name, times in WRF_TE.items():
            for j, t in enumerate(times):
                assert matrices.time(name, j) == pytest.approx(t)

    def test_wrf_cost_range_matches_paper(self):
        problem = wrf_problem()
        assert problem.cmin == pytest.approx(125.9)
        assert problem.cmax == pytest.approx(243.6)

    def test_unknown_module_rejected(self):
        wf = Workflow([Module("a", workload=1.0)])
        cat = VMTypeCatalog([VMType(name="T", power=1.0, rate=1.0)])
        with pytest.raises(ScheduleError, match="unknown"):
            compute_matrices(wf, cat, measured_te={"ghost": (1.0,)})

    def test_wrong_arity_rejected(self):
        wf = Workflow([Module("a", workload=1.0)])
        cat = VMTypeCatalog([VMType(name="T", power=1.0, rate=1.0)])
        with pytest.raises(ScheduleError, match="entries"):
            compute_matrices(wf, cat, measured_te={"a": (1.0, 2.0)})

    def test_negative_measured_time_rejected(self):
        wf = Workflow([Module("a", workload=1.0)])
        cat = VMTypeCatalog([VMType(name="T", power=1.0, rate=1.0)])
        with pytest.raises(ScheduleError, match="finite"):
            compute_matrices(wf, cat, measured_te={"a": (-1.0,)})

    def test_partial_override_keeps_analytical_rows(self):
        wf = Workflow(
            [Module("a", workload=10.0), Module("b", workload=20.0)],
            [DataDependency("a", "b")],
        )
        cat = VMTypeCatalog([VMType(name="T", power=5.0, rate=1.0)])
        matrices = compute_matrices(wf, cat, measured_te={"a": (3.3,)})
        assert matrices.time("a", 0) == pytest.approx(3.3)
        assert matrices.time("b", 0) == pytest.approx(4.0)


class TestTieBreaks:
    def test_least_cost_tie_prefers_faster(self):
        # Both types cost 4; the faster one must win (Alg. 1 step 2).
        wf = Workflow([Module("m", workload=8.0)])
        cat = VMTypeCatalog(
            [
                VMType(name="slow", power=2.0, rate=1.0),   # t=4, c=4
                VMType(name="fast", power=8.0, rate=4.0),   # t=1, c=4
            ]
        )
        matrices = compute_matrices(wf, cat)
        assert matrices.cost("m", 0) == matrices.cost("m", 1) == 4.0
        assert list(matrices.least_cost_choice()) == [1]

    def test_fastest_tie_prefers_cheaper(self):
        wf = Workflow([Module("m", workload=8.0)])
        cat = VMTypeCatalog(
            [
                VMType(name="a", power=8.0, rate=4.0),
                VMType(name="b", power=8.0, rate=2.0),
            ]
        )
        matrices = compute_matrices(wf, cat)
        assert list(matrices.fastest_choice()) == [1]

    def test_exact_billing_changes_costs(self):
        wf = Workflow([Module("m", workload=10.0)])
        cat = VMTypeCatalog([VMType(name="T", power=3.0, rate=1.0)])
        hourly = compute_matrices(wf, cat)
        exact = compute_matrices(wf, cat, billing=ExactBilling())
        assert hourly.cost("m", 0) == pytest.approx(4.0)
        assert exact.cost("m", 0) == pytest.approx(10 / 3)

    def test_workflow_with_only_fixed_modules(self):
        wf = Workflow(
            [Module("in", fixed_time=1.0), Module("out", fixed_time=1.0)],
            [DataDependency("in", "out")],
        )
        cat = VMTypeCatalog([VMType(name="T", power=1.0, rate=1.0)])
        matrices = compute_matrices(wf, cat)
        assert matrices.num_modules == 0
        assert matrices.cmin() == 0.0
        assert matrices.cmax() == 0.0

    def test_row_col_index(self):
        matrices = compute_matrices(example_workflow(), example_catalog())
        assert matrices.row_index["w3"] == 2
        assert matrices.col_index["VT2"] == 1
        assert matrices.num_types == 3


class TestMeasuredTeRowPlacement:
    """Regression: overrides must land on the *named* row (dict lookup).

    The old ``names.index(name)`` scan was O(m) per override; beyond the
    quadratic cost, any future reordering bug would scatter rows.  Pin the
    row placement with a fully-profiled workflow whose overrides are
    passed in reverse order.
    """

    def test_full_override_lands_on_named_rows(self):
        modules = [Module("in", fixed_time=0.0)]
        modules += [Module(f"w{i}", workload=10.0 * (i + 1)) for i in range(6)]
        modules.append(Module("out", fixed_time=0.0))
        edges = [DataDependency("in", "w0"), DataDependency("w5", "out")]
        edges += [DataDependency(f"w{i}", f"w{i+1}") for i in range(5)]
        workflow = Workflow(modules, edges)
        catalog = VMTypeCatalog(
            [VMType(name="A", power=1.0, rate=1.0), VMType(name="B", power=2.0, rate=3.0)]
        )
        measured = {
            f"w{i}": [100.0 + i, 200.0 + i] for i in reversed(range(6))
        }
        mats = compute_matrices(workflow, catalog, measured_te=measured)
        for i in range(6):
            row = mats.row_index[f"w{i}"]
            assert mats.te[row].tolist() == [100.0 + i, 200.0 + i]

    def test_ce_built_from_vectorized_billing(self):
        mats = compute_matrices(example_workflow(), example_catalog())
        rates = np.array(example_catalog().rates)
        expected = np.ceil(mats.te - 1e-12) * rates[None, :]
        assert np.allclose(mats.ce, expected)
