"""The fast CP kernel must be bit-identical to the reference analysis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fastpath
from repro.core.critical_path import CriticalPathAnalysis, analyze_critical_path
from repro.core.module import DataDependency, Module
from repro.core.workflow import Workflow
from repro.exceptions import ScheduleError
from tests.conftest import medcc_problems


def _durations_for(problem, schedule):
    return schedule.durations(problem.workflow, problem.matrices)


def _assert_same_analysis(ref: CriticalPathAnalysis, fast) -> None:
    analysis = fast.as_analysis()
    assert isinstance(analysis, CriticalPathAnalysis)
    assert analysis == ref and ref == analysis
    # Field-level identity, no tolerances: the kernel replicates the
    # reference's operation order exactly.
    assert analysis.est == ref.est
    assert analysis.eft == ref.eft
    assert analysis.lst == ref.lst
    assert analysis.lft == ref.lft
    assert analysis.makespan == ref.makespan
    assert analysis.critical_path == ref.critical_path
    assert analysis.critical_modules == ref.critical_modules
    assert analysis.critical_schedulable() == ref.critical_schedulable()


@given(problem=medcc_problems())
@settings(max_examples=60, deadline=None)
def test_kernel_matches_reference_on_random_dags(problem):
    schedule = problem.least_cost_schedule()
    durations = _durations_for(problem, schedule)
    ref = analyze_critical_path(problem.workflow, durations, None)
    fast = fastpath.fast_critical_path(problem.workflow, durations, None)
    _assert_same_analysis(ref, fast)


@given(problem=medcc_problems(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_kernel_matches_reference_with_transfers(problem, data):
    schedule = problem.least_cost_schedule()
    durations = _durations_for(problem, schedule)
    edges = [(e.src, e.dst) for e in problem.workflow.edges()]
    weights = data.draw(
        st.lists(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            min_size=len(edges),
            max_size=len(edges),
        )
    )
    transfer_times = dict(zip(edges, weights))
    ref = analyze_critical_path(problem.workflow, durations, transfer_times)
    fast = fastpath.fast_critical_path(problem.workflow, durations, transfer_times)
    _assert_same_analysis(ref, fast)


@given(problem=medcc_problems(max_modules=5))
@settings(max_examples=30, deadline=None)
def test_kernel_matches_reference_on_tied_paths(problem):
    # Constant durations make every path through equally deep nodes tie,
    # exercising the lexicographic argmax-predecessor tie-break.
    durations = {name: 1.0 for name in problem.workflow.topological_order()}
    ref = analyze_critical_path(problem.workflow, durations, None)
    fast = fastpath.fast_critical_path(problem.workflow, durations, None)
    _assert_same_analysis(ref, fast)


def test_graph_index_is_cached_per_workflow(diamond_problem):
    wf = diamond_problem.workflow
    assert fastpath.graph_index(wf) is fastpath.graph_index(wf)


def test_graph_index_shape(diamond_problem):
    wf = diamond_problem.workflow
    index = fastpath.graph_index(wf)
    assert index.num_nodes == len(wf.topological_order())
    assert index.num_edges == len(list(wf.edges()))
    assert index.names[index.entry] == wf.topological_order()[0]
    assert index.names[index.exit] == wf.topological_order()[-1]
    # row <-> node maps are mutually inverse over schedulable modules
    for row, node in enumerate(index.sched_nodes):
        assert index.row_of_node[node] == row


def test_validation_errors_match_reference(diamond_problem):
    wf = diamond_problem.workflow
    durations = {name: 1.0 for name in wf.topological_order()}
    missing = dict(durations)
    missing.pop("b")
    with pytest.raises(ScheduleError, match="no duration supplied"):
        fastpath.fast_critical_path(wf, missing)
    negative = dict(durations, b=-1.0)
    with pytest.raises(ScheduleError, match="negative duration"):
        fastpath.fast_critical_path(wf, negative)


def test_facade_materializes_lazily(diamond_problem):
    schedule = diamond_problem.least_cost_schedule()
    durations = _durations_for(diamond_problem, schedule)
    analysis = fastpath.fast_critical_path(
        diamond_problem.workflow, durations
    ).as_analysis()
    assert "est" not in analysis.__dict__  # not built yet
    ref = analyze_critical_path(diamond_problem.workflow, durations)
    assert analysis.buffer_time("b") == ref.buffer_time("b")  # inherited method
    assert "est" in analysis.__dict__  # materialized on demand


def test_kernel_toggle_roundtrip(diamond_problem):
    schedule = diamond_problem.least_cost_schedule()
    previous = fastpath.set_kernel_enabled(False)
    try:
        assert not fastpath.kernel_enabled()
        off = schedule.evaluate(diamond_problem.workflow, diamond_problem.matrices)
        fastpath.set_kernel_enabled(True)
        on = schedule.evaluate(diamond_problem.workflow, diamond_problem.matrices)
    finally:
        fastpath.set_kernel_enabled(previous)
    assert off.total_cost == on.total_cost
    assert off.makespan == on.makespan
    assert off.analysis == on.analysis


def test_evaluate_assignment_vectors_matches_schedule_evaluate(diamond_problem):
    matrices = diamond_problem.matrices
    columns = [0 for _ in matrices.module_names]
    result = fastpath.evaluate_assignment_vectors(
        diamond_problem.workflow, matrices.te, columns
    )
    durations = {
        name: matrices.te[i, 0] for i, name in enumerate(matrices.module_names)
    }
    for name in diamond_problem.workflow.topological_order():
        mod = diamond_problem.workflow.module(name)
        if not mod.is_schedulable:
            durations[name] = float(mod.fixed_time or 0.0)
    ref = analyze_critical_path(diamond_problem.workflow, durations)
    assert result.makespan == ref.makespan
    _assert_same_analysis(ref, result)


def test_sweep_handles_longer_chain_with_transfers():
    # Hand-checkable: chain a->b->c, unit durations, transfer 2 on (a, b).
    wf = Workflow(
        [
            Module("a", fixed_time=1.0),
            Module("b", workload=1.0),
            Module("c", fixed_time=1.0),
        ],
        [DataDependency("a", "b"), DataDependency("b", "c")],
    )
    durations = {"a": 1.0, "b": 1.0, "c": 1.0}
    transfers = {("a", "b"): 2.0}
    fast = fastpath.fast_critical_path(wf, durations, transfers)
    assert fast.makespan == 5.0
    assert fast.critical_path_names() == ("a", "b", "c")
    ref = analyze_critical_path(wf, durations, transfers)
    _assert_same_analysis(ref, fast)


def test_transfer_vector_follows_pred_edge_order(diamond_problem):
    index = fastpath.graph_index(diamond_problem.workflow)
    assert fastpath.transfer_vector(index, None) is None
    assert fastpath.transfer_vector(index, {}) is None
    vec = fastpath.transfer_vector(index, {index.pred_edges[0]: 3.0})
    assert vec is not None and len(vec) == index.num_edges
    assert vec[0] == 3.0 and not any(vec[1:])


def test_critical_mask_matches_reference(diamond_problem, rng):
    schedule = diamond_problem.least_cost_schedule()
    durations = _durations_for(diamond_problem, schedule)
    fast = fastpath.fast_critical_path(diamond_problem.workflow, durations)
    ref = analyze_critical_path(diamond_problem.workflow, durations)
    mask = fast.critical_mask()
    for v, name in enumerate(fast.index.names):
        assert bool(mask[v]) == ref.is_critical(name)
    buffered = fast.buffer_times()
    assert isinstance(buffered, np.ndarray)
    for v, name in enumerate(fast.index.names):
        assert buffered[v] == ref.buffer_time(name)
