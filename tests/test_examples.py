"""Smoke tests: every example script runs end to end and prints sanely.

Examples are documentation that executes; these tests keep them from
rotting.  Each script is run in-process (same interpreter, real stdout
captured) and checked for its headline output.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

#: script name → a string its output must contain.
_EXPECTATIONS = {
    "quickstart.py": "rescheduling trace",
    "wrf_budget_planning.py": "chosen operating point",
    "multicloud_transfers.py": "egress charges",
    "deadline_vs_budget.py": "violations: 0 (expected 0)",
    "fault_tolerant_operations.py": "over-budget",
    "clustering_study.py": "reproduces the grouped topology used in the "
    "experiments: yes",
    "ensemble_campaign.py": "admitted:",
}


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(_EXPECTATIONS), (
        "examples/ and the smoke-test expectations drifted apart"
    )


@pytest.mark.parametrize("script", sorted(_EXPECTATIONS))
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert _EXPECTATIONS[script] in out
    assert "Traceback" not in out
