"""Tests for the random baseline, deadline-greedy dual, and the registry."""

import pytest
from hypothesis import given, settings

from repro.algorithms.base import (
    ReschedulingStep,
    SchedulerResult,
    available_schedulers,
    get_scheduler,
    register_scheduler,
)
from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.algorithms.deadline_greedy import DeadlineGreedyScheduler
from repro.algorithms.random_schedule import RandomScheduler
from repro.exceptions import (
    ConfigurationError,
    ExperimentError,
    InfeasibleBudgetError,
)

from tests.conftest import problems_with_budgets


class TestRandomScheduler:
    def test_deterministic_given_seed(self, example_problem):
        a = RandomScheduler(samples=50, seed=3).solve(example_problem, 56.0)
        b = RandomScheduler(samples=50, seed=3).solve(example_problem, 56.0)
        assert a.schedule.assignment == b.schedule.assignment

    def test_feasible(self, example_problem):
        result = RandomScheduler(samples=100).solve(example_problem, 56.0)
        result.assert_feasible()

    def test_never_worse_than_least_cost(self, example_problem):
        lc_med = example_problem.makespan_of(
            example_problem.least_cost_schedule()
        )
        result = RandomScheduler(samples=100).solve(example_problem, 56.0)
        assert result.med <= lc_med + 1e-9

    def test_extras_report_sampling(self, example_problem):
        result = RandomScheduler(samples=10).solve(example_problem, 64.0)
        assert result.extras["samples"] == 10
        assert 0 <= result.extras["feasible_samples"] <= 10

    def test_infeasible_budget_raises(self, example_problem):
        with pytest.raises(InfeasibleBudgetError):
            RandomScheduler().solve(example_problem, 10.0)


class TestDeadlineGreedy:
    def test_impossible_deadline_raises(self, example_problem):
        fast_med = example_problem.makespan_of(
            example_problem.fastest_schedule()
        )
        with pytest.raises(InfeasibleBudgetError):
            DeadlineGreedyScheduler().solve_deadline(
                example_problem, fast_med - 0.5
            )

    def test_meets_deadline(self, example_problem):
        result = DeadlineGreedyScheduler().solve_deadline(example_problem, 10.0)
        assert result.med <= 10.0 + 1e-9

    def test_loose_deadline_reaches_cmin(self, example_problem):
        lc_med = example_problem.makespan_of(
            example_problem.least_cost_schedule()
        )
        result = DeadlineGreedyScheduler().solve_deadline(
            example_problem, lc_med + 1.0
        )
        assert result.total_cost == pytest.approx(example_problem.cmin)

    def test_duality_with_critical_greedy(self, example_problem):
        # Achieving CG's MED as a deadline must not cost more than CG paid.
        cg = CriticalGreedyScheduler().solve(example_problem, 57.0)
        dual = DeadlineGreedyScheduler().solve_deadline(example_problem, cg.med)
        assert dual.total_cost <= cg.total_cost + 1e-9
        assert dual.med <= cg.med + 1e-9

    def test_cost_monotone_in_deadline(self, example_problem):
        fast_med = example_problem.makespan_of(
            example_problem.fastest_schedule()
        )
        lc_med = example_problem.makespan_of(
            example_problem.least_cost_schedule()
        )
        deadlines = [fast_med + f * (lc_med - fast_med) for f in (0.0, 0.3, 0.7, 1.0)]
        costs = [
            DeadlineGreedyScheduler().solve_deadline(example_problem, d).total_cost
            for d in deadlines
        ]
        assert all(c2 <= c1 + 1e-9 for c1, c2 in zip(costs, costs[1:]))


class TestRegistry:
    def test_known_schedulers_present(self):
        names = set(available_schedulers())
        assert {
            "critical-greedy",
            "gain1",
            "gain2",
            "gain3",
            "gain-absolute",
            "loss1",
            "loss2",
            "loss3",
            "heft",
            "fastest",
            "least-cost",
            "exhaustive",
            "pipeline-dp",
            "random",
        } <= names

    def test_get_scheduler_instantiates(self):
        scheduler = get_scheduler("critical-greedy")
        assert scheduler.name == "critical-greedy"

    def test_unknown_scheduler_raises(self):
        with pytest.raises(ExperimentError, match="unknown scheduler"):
            get_scheduler("nope")

    def test_listing_is_sorted(self):
        names = available_schedulers()
        assert isinstance(names, list)
        assert names == sorted(names)

    def test_double_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="twice"):
            register_scheduler("critical-greedy")(CriticalGreedyScheduler)

    def test_result_assert_feasible(self, example_problem):
        result = CriticalGreedyScheduler().solve(example_problem, 57.0)
        result.assert_feasible()
        over = SchedulerResult(
            algorithm="x",
            schedule=result.schedule,
            evaluation=result.evaluation,
            budget=10.0,
        )
        with pytest.raises(ExperimentError, match="infeasible"):
            over.assert_feasible()

    def test_step_describe(self):
        step = ReschedulingStep(
            module="w4",
            from_type=0,
            to_type=2,
            time_decrease=6.0,
            cost_increase=1.0,
            makespan_after=12.1,
            cost_after=49.0,
        )
        text = step.describe(("VT1", "VT2", "VT3"))
        assert "w4" in text and "VT1" in text and "VT3" in text


@settings(max_examples=30, deadline=None)
@given(pb=problems_with_budgets(max_modules=5, max_types=3))
def test_random_scheduler_feasible_property(pb):
    problem, budget = pb
    RandomScheduler(samples=20).solve(problem, budget).assert_feasible()
