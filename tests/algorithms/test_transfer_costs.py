"""Regression tests: solvers must respect the budget when CR > 0.

The multi-cloud extension charges a schedule-independent data-transfer
total (Eq. 4); every solver must treat it as pre-committed spend.  An
earlier implementation tracked only VM costs and overspent the budget by
exactly the transfer total — caught by the multicloud example and pinned
here.
"""

import pytest

from repro.algorithms import get_scheduler
from repro.core.problem import MedCCProblem, TransferModel
from repro.exceptions import InfeasibleBudgetError


@pytest.fixture
def egress_problem(example_problem):
    return MedCCProblem(
        workflow=example_problem.workflow,
        catalog=example_problem.catalog,
        transfers=TransferModel(bandwidth=5.0, latency=0.1, unit_cost=0.5),
    )


@pytest.mark.parametrize(
    "name",
    [
        "critical-greedy",
        "gain1",
        "gain2",
        "gain3",
        "gain-absolute",
        "loss3",
        "exhaustive",
        "random",
        "least-cost",
    ],
)
def test_solver_respects_budget_with_transfer_charges(egress_problem, name):
    scheduler = get_scheduler(name)
    for budget in egress_problem.budget_levels(4):
        result = scheduler.solve(egress_problem, budget)
        result.assert_feasible()
        # The reported cost includes the transfer charges.
        assert result.total_cost >= egress_problem.transfer_cost_total - 1e-9


def test_budget_below_cmin_with_transfers_raises(egress_problem):
    # Even a budget covering the VM cost alone is infeasible once the
    # transfer charges are added.
    vm_only_cmin = egress_problem.matrices.cmin()
    assert vm_only_cmin < egress_problem.cmin
    with pytest.raises(InfeasibleBudgetError):
        get_scheduler("critical-greedy").solve(egress_problem, vm_only_cmin)


def test_pipeline_dp_with_transfer_charges():
    from repro.workloads.generator import paper_catalog
    from repro.workloads.synthetic import pipeline_workflow

    problem = MedCCProblem(
        workflow=pipeline_workflow(4),
        catalog=paper_catalog(3),
        transfers=TransferModel(unit_cost=1.0),
    )
    dp = get_scheduler("pipeline-dp")
    opt = get_scheduler("exhaustive")
    for budget in problem.budget_levels(4):
        r_dp = dp.solve(problem, budget)
        r_dp.assert_feasible()
        assert r_dp.med == pytest.approx(opt.solve(problem, budget).med)
