"""Tests for Critical-Greedy, including the paper's worked example trace."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.algorithms.exhaustive import ExhaustiveScheduler
from repro.exceptions import InfeasibleBudgetError
from repro.workloads.example import EXAMPLE_BUDGET_BANDS

from tests.conftest import problems_with_budgets


@pytest.fixture
def cg():
    return CriticalGreedyScheduler()


class TestPaperExampleTrace:
    """Section V-B's worked example, step by step."""

    def test_budget_57_upgrade_order(self, cg, example_problem):
        # "we first reschedule module w4 ... recalculate a new critical
        # path, and reschedule module w3 ... repeated for w6 mapped to VT3
        # and w2 mapped to VT3"
        result = cg.solve(example_problem, 57.0)
        assert [(s.module, s.to_type) for s in result.steps] == [
            ("w4", 2),
            ("w3", 2),
            ("w6", 2),
            ("w2", 2),
        ]

    def test_budget_57_final_cost_leaves_one_unit(self, cg, example_problem):
        # "under the budget of 57 with one unit of budget left unused"
        result = cg.solve(example_problem, 57.0)
        assert result.total_cost == pytest.approx(56.0)

    def test_first_step_decreases_w4_time_by_6(self, cg, example_problem):
        result = cg.solve(example_problem, 57.0)
        assert result.steps[0].time_decrease == pytest.approx(6.0)

    def test_budget_bands_match_table2(self, cg, example_problem):
        # Each Table II band's lower edge must produce the band's schedule
        # (the set of modules upgraded to VT3 relative to least-cost).
        for lower, upper, upgraded in EXAMPLE_BUDGET_BANDS:
            result = cg.solve(example_problem, lower)
            got = {
                m
                for m in example_problem.matrices.module_names
                if result.schedule[m] == 2
            }
            assert got == set(upgraded), f"band starting at {lower}"
            # Just inside the band (if bounded) the schedule is unchanged.
            if upper is not None:
                result_hi = cg.solve(example_problem, upper - 1e-6)
                got_hi = {
                    m
                    for m in example_problem.matrices.module_names
                    if result_hi.schedule[m] == 2
                }
                assert got_hi == set(upgraded)

    def test_med_monotone_in_budget(self, cg, example_problem):
        meds = [
            cg.solve(example_problem, b).med
            for b in [48, 49, 50, 52, 56, 60, 64]
        ]
        assert all(m2 <= m1 + 1e-9 for m1, m2 in zip(meds, meds[1:]))

    def test_budget_above_cmax_matches_fastest_makespan(self, cg, example_problem):
        result = cg.solve(example_problem, 1000.0)
        fastest_med = example_problem.makespan_of(
            example_problem.fastest_schedule()
        )
        assert result.med == pytest.approx(fastest_med)

    def test_infeasible_budget_raises(self, cg, example_problem):
        with pytest.raises(InfeasibleBudgetError):
            cg.solve(example_problem, 47.9)

    def test_budget_exactly_cmin_returns_least_cost(self, cg, example_problem):
        result = cg.solve(example_problem, 48.0)
        assert result.schedule.assignment == (
            example_problem.least_cost_schedule().assignment
        )


class TestAlgorithmBehaviour:
    def test_all_scope_never_worse_than_least_cost(self, example_problem):
        cg_all = CriticalGreedyScheduler(candidate_scope="all")
        lc_med = example_problem.makespan_of(
            example_problem.least_cost_schedule()
        )
        for budget in example_problem.budget_levels(8):
            assert cg_all.solve(example_problem, budget).med <= lc_med + 1e-9

    def test_invalid_scope_rejected(self):
        with pytest.raises(ValueError):
            CriticalGreedyScheduler(candidate_scope="some")

    def test_steps_record_makespan_and_cost(self, cg, example_problem):
        result = cg.solve(example_problem, 57.0)
        for step in result.steps:
            assert step.cost_after <= 57.0 + 1e-9
            assert step.time_decrease > 0
        # Makespans along the trace are non-increasing (upgrades on the CP).
        makespans = [s.makespan_after for s in result.steps]
        assert all(b <= a + 1e-9 for a, b in zip(makespans, makespans[1:]))

    def test_iterations_extra(self, cg, example_problem):
        result = cg.solve(example_problem, 57.0)
        assert result.extras["iterations"] == len(result.steps) == 4

    def test_wrf_147_5_matches_published_schedule(self, cg, wrf_problem):
        # Paper Table VII, budget 147.5: SCG = (1,1,1,1,2,1), MED 468.6.
        result = cg.solve(wrf_problem, 147.5)
        vec = tuple(
            result.schedule[m] + 1 for m in wrf_problem.matrices.module_names
        )
        assert vec == (1, 1, 1, 1, 2, 1)
        assert result.med == pytest.approx(468.6)


@settings(max_examples=60, deadline=None)
@given(pb=problems_with_budgets())
def test_cg_feasibility_and_sanity(pb):
    """Properties: within budget, never worse than least-cost, terminates."""
    problem, budget = pb
    result = CriticalGreedyScheduler().solve(problem, budget)
    result.assert_feasible()
    lc_med = problem.makespan_of(problem.least_cost_schedule())
    assert result.med <= lc_med + 1e-9
    # Iteration bound from the termination argument: m * (n - 1).
    m, _, n = problem.problem_size
    assert len(result.steps) <= m * max(n - 1, 0)


@settings(max_examples=25, deadline=None)
@given(pb=problems_with_budgets(max_modules=5, max_types=3))
def test_cg_never_beats_exhaustive(pb):
    """Property: the heuristic can never beat the exact optimum."""
    problem, budget = pb
    cg_med = CriticalGreedyScheduler().solve(problem, budget).med
    opt_med = ExhaustiveScheduler().solve(problem, budget).med
    assert cg_med >= opt_med - 1e-9


class TestAlg1TieBreaks:
    def test_equal_time_decrease_prefers_cheaper_upgrade(self):
        # Two types reach the same execution time for the critical module;
        # Alg. 1 line 13's tie-break must pick the cheaper one.
        from repro.core.module import Module
        from repro.core.problem import MedCCProblem
        from repro.core.vm import VMType, VMTypeCatalog
        from repro.core.workflow import Workflow

        problem = MedCCProblem(
            workflow=Workflow([Module("m", workload=12.0)]),
            catalog=VMTypeCatalog(
                [
                    VMType(name="slow", power=2.0, rate=1.0),     # t=6, c=6
                    VMType(name="fastA", power=6.0, rate=4.0),    # t=2, c=8
                    VMType(name="fastB", power=6.0, rate=3.5),    # t=2, c=7
                ]
            ),
        )
        result = CriticalGreedyScheduler().solve(problem, budget=8.0)
        assert result.steps[0].to_type == problem.catalog.index_of("fastB")
        assert result.med == pytest.approx(2.0)
        assert result.total_cost == pytest.approx(7.0)


def _assert_identical(ref, other):
    assert other.schedule.assignment == ref.schedule.assignment
    assert other.steps == ref.steps
    assert other.evaluation.makespan == ref.evaluation.makespan
    assert other.evaluation.total_cost == ref.evaluation.total_cost


class TestEngineEquivalence:
    """All three engines must be indistinguishable from each other."""

    def test_default_engine_is_incremental(self):
        assert CriticalGreedyScheduler().engine == "incremental"

    def test_invalid_engine_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            CriticalGreedyScheduler(engine="turbo")

    @pytest.mark.parametrize("engine", ["incremental", "fast"])
    @pytest.mark.parametrize("budget", [48.0, 52.0, 57.0, 64.0])
    def test_identical_on_paper_example(self, example_problem, budget, engine):
        ref = CriticalGreedyScheduler(engine="reference").solve(example_problem, budget)
        other = CriticalGreedyScheduler(engine=engine).solve(example_problem, budget)
        _assert_identical(ref, other)
        assert other.extras == ref.extras

    @pytest.mark.parametrize("engine", ["incremental", "fast"])
    def test_identical_on_wrf(self, wrf_problem, engine):
        budget = 0.5 * (wrf_problem.cmin + wrf_problem.cmax)
        ref = CriticalGreedyScheduler(engine="reference").solve(wrf_problem, budget)
        other = CriticalGreedyScheduler(engine=engine).solve(wrf_problem, budget)
        _assert_identical(ref, other)

    @pytest.mark.parametrize("scope", ["critical", "all"])
    @pytest.mark.parametrize("with_transfers", [False, True])
    def test_identical_on_random_instances(self, scope, with_transfers):
        import dataclasses

        import numpy as np

        from repro.core.problem import TransferModel
        from repro.workloads.generator import generate_problem

        for seed in range(4):
            rng = np.random.default_rng(1000 + seed)
            problem = generate_problem((12, 25, 4), rng)
            if with_transfers:
                problem = dataclasses.replace(
                    problem, transfers=TransferModel(bandwidth=2.0, latency=0.5)
                )
            budget = 0.6 * problem.cmin + 0.4 * problem.cmax
            ref = CriticalGreedyScheduler(
                candidate_scope=scope, engine="reference"
            ).solve(problem, budget)
            for engine in ("incremental", "fast"):
                other = CriticalGreedyScheduler(
                    candidate_scope=scope, engine=engine
                ).solve(problem, budget)
                _assert_identical(ref, other)

    @given(pb=problems_with_budgets())
    @settings(max_examples=25, deadline=None)
    def test_identical_on_hypothesis_instances(self, pb):
        problem, budget = pb
        if budget < problem.cmin:
            return  # infeasible budgets raise identically; covered elsewhere
        ref = CriticalGreedyScheduler(engine="reference").solve(problem, budget)
        for engine in ("incremental", "fast"):
            other = CriticalGreedyScheduler(engine=engine).solve(problem, budget)
            _assert_identical(ref, other)


class TestIncrementalEngineInternals:
    """Workspace reuse, pickling and the vectorized argmax guards."""

    def test_workspace_reused_across_budgets(self, example_problem):
        cg = CriticalGreedyScheduler(engine="incremental")
        budgets = example_problem.budget_levels(6)
        for budget in budgets:
            ref = CriticalGreedyScheduler(engine="reference").solve(
                example_problem, budget
            )
            _assert_identical(ref, cg.solve(example_problem, budget))
        workspace = cg._workspace
        assert workspace is not None
        assert workspace.problem_ref() is example_problem
        # Switching problems rebuilds the workspace instead of reusing it.
        import numpy as np

        from repro.workloads.generator import generate_problem

        other_problem = generate_problem((8, 12, 3), np.random.default_rng(3))
        other_budget = 0.5 * (other_problem.cmin + other_problem.cmax)
        ref = CriticalGreedyScheduler(engine="reference").solve(
            other_problem, other_budget
        )
        _assert_identical(ref, cg.solve(other_problem, other_budget))
        assert cg._workspace is not workspace

    def test_workspace_does_not_leak_into_equality_or_pickle(self, example_problem):
        import pickle

        cg = CriticalGreedyScheduler(engine="incremental")
        fresh = CriticalGreedyScheduler(engine="incremental")
        cg.solve(example_problem, 57.0)
        assert cg == fresh  # the cached workspace is invisible to __eq__
        clone = pickle.loads(pickle.dumps(cg))
        assert clone._workspace is None
        ref = CriticalGreedyScheduler(engine="reference").solve(example_problem, 57.0)
        _assert_identical(ref, clone.solve(example_problem, 57.0))

    @given(data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_pick_step_matches_scalar_scan(self, data):
        """The vectorized argmax must equal the scalar scan, always.

        Values are drawn from a tiny grid spaced well below ``_EPS``
        apart, which makes near-ties (the C1/C2 guard conditions) the
        common case rather than a rarity — precisely the inputs where a
        naive vectorization would diverge from the reference tie-break.
        """
        import numpy as np

        from repro.algorithms.critical_greedy import (
            _EPS,
            _pick_step,
            _pick_step_scan,
        )

        rows = data.draw(st.integers(min_value=1, max_value=4))
        cols = data.draw(st.integers(min_value=1, max_value=3))
        grid = st.sampled_from(
            [0.0, _EPS / 4, _EPS / 2, _EPS, 2 * _EPS, 1.0, 1.0 + _EPS / 2]
        )
        cells = rows * cols
        dt = np.array(
            data.draw(st.lists(grid, min_size=cells, max_size=cells))
        ).reshape(rows, cols)
        dc = np.array(
            data.draw(st.lists(grid, min_size=cells, max_size=cells))
        ).reshape(rows, cols)
        valid = np.array(
            data.draw(
                st.lists(st.booleans(), min_size=cells, max_size=cells)
            )
        ).reshape(rows, cols)
        assert _pick_step(dt, dc, valid, cols) == _pick_step_scan(
            dt, dc, valid, cols
        )
