"""Tests for the PCP deadline scheduler (related-work substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.deadline_greedy import DeadlineGreedyScheduler
from repro.algorithms.pcp import PCPScheduler, _cheapest_chain_within
from repro.exceptions import InfeasibleBudgetError

from tests.conftest import medcc_problems


class TestChainDP:
    def test_prefers_cheapest_feasible(self):
        te = [[4.0, 1.0], [4.0, 1.0]]
        ce = [[1.0, 3.0], [1.0, 3.0]]
        # Time budget 5: one module slow (4) + one fast (1) = cost 4.
        assert sorted(_cheapest_chain_within(te, ce, 5.0)) == [0, 1]
        # Time budget 8: both slow, cost 2.
        assert _cheapest_chain_within(te, ce, 8.0) == [0, 0]
        # Time budget 2: both fast.
        assert _cheapest_chain_within(te, ce, 2.0) == [1, 1]

    def test_infeasible_returns_none(self):
        assert _cheapest_chain_within([[5.0]], [[1.0]], 4.0) is None

    def test_empty_chain(self):
        assert _cheapest_chain_within([], [], 0.0) == []


class TestPCP:
    def test_meets_deadline_on_example(self, example_problem):
        fast_med = example_problem.makespan_of(example_problem.fastest_schedule())
        slow_med = example_problem.makespan_of(
            example_problem.least_cost_schedule()
        )
        pcp = PCPScheduler()
        for k in range(6):
            deadline = fast_med + (slow_med - fast_med) * k / 5
            result = pcp.solve_deadline(example_problem, deadline)
            assert result.med <= deadline + 1e-6

    def test_loose_deadline_is_cheap(self, example_problem):
        slow_med = example_problem.makespan_of(
            example_problem.least_cost_schedule()
        )
        result = PCPScheduler().solve_deadline(example_problem, slow_med + 1.0)
        assert result.total_cost == pytest.approx(example_problem.cmin)

    def test_tight_deadline_costs_more(self, example_problem):
        fast_med = example_problem.makespan_of(example_problem.fastest_schedule())
        slow_med = example_problem.makespan_of(
            example_problem.least_cost_schedule()
        )
        tight = PCPScheduler().solve_deadline(example_problem, fast_med)
        loose = PCPScheduler().solve_deadline(example_problem, slow_med)
        assert tight.total_cost >= loose.total_cost - 1e-9

    def test_impossible_deadline_raises(self, example_problem):
        fast_med = example_problem.makespan_of(example_problem.fastest_schedule())
        with pytest.raises(InfeasibleBudgetError):
            PCPScheduler().solve_deadline(example_problem, fast_med - 0.1)

    def test_wrf_deadlines(self, wrf_problem):
        pcp = PCPScheduler()
        for deadline in (200.0, 300.0, 500.0, 900.0):
            result = pcp.solve_deadline(wrf_problem, deadline)
            assert result.med <= deadline + 1e-6


@settings(max_examples=30, deadline=None)
@given(
    problem=medcc_problems(max_modules=6, max_types=3),
    frac=st.floats(min_value=0.0, max_value=1.5),
)
def test_pcp_always_meets_feasible_deadlines(problem, frac):
    """Property: PCP meets every deadline the fastest schedule meets, and
    both dual heuristics stay within it."""
    fast_med = problem.makespan_of(problem.fastest_schedule())
    slow_med = problem.makespan_of(problem.least_cost_schedule())
    deadline = fast_med + frac * max(slow_med - fast_med, 0.0)
    pcp_result = PCPScheduler().solve_deadline(problem, deadline)
    greedy_result = DeadlineGreedyScheduler().solve_deadline(problem, deadline)
    assert pcp_result.med <= deadline + 1e-6
    assert greedy_result.med <= deadline + 1e-6
