"""Tests for the reuse-and-reinvest extension scheduler."""

import pytest
from hypothesis import given, settings

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.algorithms.reinvest import ReinvestScheduler
from repro.exceptions import ExperimentError, InfeasibleBudgetError
from repro.sim.broker import WorkflowBroker

from tests.conftest import problems_with_budgets


class TestReinvest:
    def test_never_slower_than_plain_cg(self, example_problem):
        plain = CriticalGreedyScheduler()
        reinvest = ReinvestScheduler()
        for budget in example_problem.budget_levels(8):
            assert (
                reinvest.solve(example_problem, budget).med
                <= plain.solve(example_problem, budget).med + 1e-9
            )

    def test_packed_cost_within_budget(self, example_problem):
        for budget in example_problem.budget_levels(6):
            result = ReinvestScheduler().solve(example_problem, budget)
            assert result.extras["packed_cost"] <= budget + 1e-9

    def test_reinvestment_buys_speed(self):
        # A chain of two half-unit modules on the slow type: separate
        # leases bill 2 units, a shared lease bills 1 — the freed unit
        # funds upgrading the third (critical) module.
        from repro.core.module import DataDependency, Module
        from repro.core.problem import MedCCProblem
        from repro.core.vm import VMType, VMTypeCatalog
        from repro.core.workflow import Workflow

        workflow = Workflow(
            [
                Module("a", workload=0.5),
                Module("b", workload=0.5),
                Module("c", workload=4.0),
            ],
            [DataDependency("a", "b"), DataDependency("b", "c")],
        )
        catalog = VMTypeCatalog(
            [
                VMType(name="slow", power=1.0, rate=1.0),
                VMType(name="fast", power=2.0, rate=2.2),
            ]
        )
        problem = MedCCProblem(workflow=workflow, catalog=catalog)
        budget = problem.cmin  # = 6 (all slow); no slack for plain CG
        assert budget == pytest.approx(6.0)
        plain = CriticalGreedyScheduler().solve(problem, budget)
        assert plain.med == pytest.approx(5.0)
        reinvest = ReinvestScheduler().solve(problem, budget)
        # Packing the all-slow chain into one lease bills 5 instead of 6;
        # the freed unit funds upgrading c to the fast type (ΔC = 0.4).
        assert reinvest.med == pytest.approx(3.0)
        assert reinvest.extras["packed_cost"] <= budget + 1e-9
        assert reinvest.extras["unpacked_cost"] > budget  # spent the savings

    def test_simulated_packed_execution_matches(self, example_problem):
        result = ReinvestScheduler().solve(example_problem, 52.0)
        sim = WorkflowBroker(
            problem=example_problem,
            schedule=result.schedule,
            vm_plan=result.extras["vm_plan"],
        ).run()
        assert sim.makespan == pytest.approx(result.med)
        assert sim.total_cost == pytest.approx(result.extras["packed_cost"])
        assert sim.total_cost <= 52.0 + 1e-9

    def test_rounds_bounded(self, example_problem):
        result = ReinvestScheduler(max_rounds=2).solve(example_problem, 50.0)
        assert result.extras["rounds"] <= 2

    def test_parameter_validation(self):
        with pytest.raises(ExperimentError):
            ReinvestScheduler(max_rounds=0)

    def test_infeasible_budget_raises(self, example_problem):
        with pytest.raises(InfeasibleBudgetError):
            ReinvestScheduler().solve(example_problem, 10.0)

    def test_wrf_reinvestment(self, wrf_problem):
        plain = CriticalGreedyScheduler().solve(wrf_problem, 174.9)
        reinvest = ReinvestScheduler().solve(wrf_problem, 174.9)
        assert reinvest.med <= plain.med + 1e-9
        assert reinvest.extras["packed_cost"] <= 174.9 + 1e-9


@settings(max_examples=30, deadline=None)
@given(pb=problems_with_budgets(max_modules=6, max_types=3))
def test_reinvest_properties(pb):
    """Properties: packed-feasible, never slower than plain CG, and the
    packed execution realizes the claimed MED and bill."""
    problem, budget = pb
    plain = CriticalGreedyScheduler().solve(problem, budget)
    result = ReinvestScheduler().solve(problem, budget)
    assert result.med <= plain.med + 1e-9
    assert result.extras["packed_cost"] <= budget + 1e-9
    sim = WorkflowBroker(
        problem=problem,
        schedule=result.schedule,
        vm_plan=result.extras["vm_plan"],
    ).run()
    assert sim.makespan == pytest.approx(result.med)
    assert sim.total_cost == pytest.approx(result.extras["packed_cost"])
