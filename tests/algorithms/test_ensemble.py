"""Tests for ensemble scheduling (many workflows, one budget)."""

import numpy as np
import pytest

from repro.algorithms.ensemble import (
    EnsembleMember,
    EnsembleScheduler,
)
from repro.exceptions import ExperimentError
from repro.workloads.example import example_problem
from repro.workloads.generator import generate_problem


def _members(n: int = 3, seed: int = 5) -> list[EnsembleMember]:
    rng = np.random.default_rng(seed)
    return [
        EnsembleMember(
            name=f"member{i}",
            problem=generate_problem((8, 12, 3), rng),
            priority=n - i,
        )
        for i in range(n)
    ]


class TestAdmission:
    def test_everything_admitted_with_ample_budget(self):
        members = _members()
        budget = sum(m.problem.cmax for m in members)
        result = EnsembleScheduler().solve(members, budget)
        assert set(result.admitted) == {m.name for m in members}
        assert result.rejected == ()

    def test_priority_admission_drops_low_priority_first(self):
        members = _members()
        # Enough for the two highest-priority members' Cmin only.
        budget = members[0].problem.cmin + members[1].problem.cmin
        result = EnsembleScheduler().solve(members, budget)
        assert result.admitted == ("member0", "member1")
        assert result.rejected == ("member2",)

    def test_cheapest_admission_maximizes_count(self):
        members = _members()
        cmins = sorted(m.problem.cmin for m in members)
        budget = cmins[0] + cmins[1]
        by_cheapest = EnsembleScheduler(admission="cheapest").solve(
            members, budget
        )
        assert len(by_cheapest.admitted) == 2

    def test_no_member_affordable_raises(self):
        members = _members()
        with pytest.raises(ExperimentError, match="admits no"):
            EnsembleScheduler().solve(members, 1.0)

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ExperimentError, match="at least one"):
            EnsembleScheduler().solve([], 100.0)

    def test_duplicate_names_rejected(self):
        member = EnsembleMember(name="twin", problem=example_problem())
        with pytest.raises(ExperimentError, match="unique"):
            EnsembleScheduler().solve([member, member], 1000.0)

    def test_invalid_admission_mode(self):
        with pytest.raises(ExperimentError):
            EnsembleScheduler(admission="vip")


class TestBudgetDistribution:
    def test_total_spend_within_budget(self):
        members = _members()
        total_cmin = sum(m.problem.cmin for m in members)
        budget = total_cmin * 1.3
        result = EnsembleScheduler().solve(members, budget)
        assert result.total_cost <= budget + 1e-6

    def test_leftover_budget_buys_speed(self):
        members = _members()
        tight = sum(m.problem.cmin for m in members)
        roomy = sum(m.problem.cmax for m in members)
        meds_tight = EnsembleScheduler().solve(members, tight).total_med
        meds_roomy = EnsembleScheduler().solve(members, roomy).total_med
        assert meds_roomy <= meds_tight + 1e-9

    def test_member_schedules_individually_feasible(self):
        members = _members()
        budget = sum(m.problem.cmin for m in members) * 1.5
        result = EnsembleScheduler().solve(members, budget)
        for member in members:
            if member.name in result.admitted:
                cost = result.costs[member.name]
                assert cost >= member.problem.cmin - 1e-9
                # The recorded MED matches re-evaluating the schedule.
                med = member.problem.makespan_of(
                    result.schedules[member.name]
                )
                assert med == pytest.approx(result.meds[member.name])

    def test_rich_budget_reaches_every_fastest_schedule(self):
        members = _members(2)
        budget = sum(m.problem.cmax for m in members) + 10.0
        result = EnsembleScheduler().solve(members, budget)
        for member in members:
            fastest_med = member.problem.makespan_of(
                member.problem.fastest_schedule()
            )
            assert result.meds[member.name] == pytest.approx(
                fastest_med, rel=1e-6
            )
