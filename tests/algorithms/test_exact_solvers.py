"""Tests for the exhaustive search and the pipeline DP (exact solvers)."""

import itertools

import pytest
from hypothesis import given, settings

from repro.algorithms.exhaustive import ExhaustiveScheduler
from repro.algorithms.pipeline_dp import PipelineDPScheduler, is_pipeline
from repro.core.module import DataDependency, Module
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.core.vm import VMType, VMTypeCatalog
from repro.core.workflow import Workflow
from repro.exceptions import ExperimentError, InfeasibleBudgetError, ScheduleError
from repro.workloads.synthetic import pipeline_workflow

from tests.conftest import problems_with_budgets


def _bruteforce_optimum(problem: MedCCProblem, budget: float) -> float:
    """Reference oracle: full enumeration with itertools."""
    matrices = problem.matrices
    names = matrices.module_names
    best = float("inf")
    for combo in itertools.product(range(matrices.num_types), repeat=len(names)):
        schedule = Schedule(dict(zip(names, combo)))
        if problem.cost_of(schedule) > budget + 1e-9:
            continue
        best = min(best, problem.makespan_of(schedule))
    return best


class TestExhaustive:
    def test_matches_bruteforce_on_diamond(self, diamond_problem):
        for budget in diamond_problem.budget_levels(5):
            opt = ExhaustiveScheduler().solve(diamond_problem, budget)
            assert opt.med == pytest.approx(
                _bruteforce_optimum(diamond_problem, budget)
            )
            opt.assert_feasible()

    def test_matches_bruteforce_on_example(self, example_problem):
        for budget in (48.0, 53.0, 57.0, 64.0):
            opt = ExhaustiveScheduler().solve(example_problem, budget)
            assert opt.med == pytest.approx(
                _bruteforce_optimum(example_problem, budget)
            )

    def test_infeasible_budget_raises(self, diamond_problem):
        with pytest.raises(InfeasibleBudgetError):
            ExhaustiveScheduler().solve(diamond_problem, 0.0)

    def test_node_guard_triggers(self, example_problem):
        with pytest.raises(ExperimentError, match="max_nodes"):
            ExhaustiveScheduler(max_nodes=2).solve(example_problem, 64.0)

    def test_nodes_explored_reported(self, diamond_problem):
        result = ExhaustiveScheduler().solve(diamond_problem, 1e9)
        assert result.extras["nodes_explored"] >= 1


class TestPipelineDP:
    def _pipeline_problem(self, n_modules: int = 5) -> MedCCProblem:
        catalog = VMTypeCatalog(
            [
                VMType(name="S", power=1.0, rate=1.0),
                VMType(name="M", power=3.0, rate=2.0),
                VMType(name="L", power=6.0, rate=5.0),
            ]
        )
        return MedCCProblem(
            workflow=pipeline_workflow(n_modules), catalog=catalog
        )

    def test_is_pipeline_detection(self, diamond_problem):
        assert is_pipeline(self._pipeline_problem())
        assert not is_pipeline(diamond_problem)

    def test_rejects_non_pipeline(self, diamond_problem):
        with pytest.raises(ScheduleError, match="pipeline"):
            PipelineDPScheduler().solve(diamond_problem, 1e9)

    def test_matches_exhaustive_across_budgets(self):
        problem = self._pipeline_problem(5)
        for budget in problem.budget_levels(8):
            dp = PipelineDPScheduler().solve(problem, budget)
            opt = ExhaustiveScheduler().solve(problem, budget)
            assert dp.med == pytest.approx(opt.med)
            dp.assert_feasible()

    def test_infeasible_budget_raises(self):
        with pytest.raises(InfeasibleBudgetError):
            PipelineDPScheduler().solve(self._pipeline_problem(), 0.0)

    def test_frontier_guard(self):
        with pytest.raises(ExperimentError, match="max_states"):
            PipelineDPScheduler(max_states=1).solve(
                self._pipeline_problem(6), 1e9
            )

    def test_single_module_pipeline(self):
        problem = MedCCProblem(
            workflow=pipeline_workflow(1),
            catalog=VMTypeCatalog([VMType(name="T", power=2.0, rate=1.0)]),
        )
        result = PipelineDPScheduler().solve(problem, 1e9)
        assert result.med == pytest.approx(
            problem.workflow.module("s1").workload / 2.0
        )


@settings(max_examples=25, deadline=None)
@given(pb=problems_with_budgets(max_modules=4, max_types=3))
def test_exhaustive_is_a_lower_bound_for_every_heuristic(pb):
    """Property: the exact optimum lower-bounds every registered heuristic."""
    from repro.algorithms import get_scheduler

    problem, budget = pb
    opt = ExhaustiveScheduler().solve(problem, budget).med
    for name in ("critical-greedy", "gain3", "gain-absolute", "loss3", "random"):
        heuristic_med = get_scheduler(name).solve(problem, budget).med
        assert heuristic_med >= opt - 1e-9
