"""Tests for the extension schedulers: annealing and lookahead-CG."""

import pytest
from hypothesis import given, settings

from repro.algorithms.annealing import AnnealingScheduler
from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.algorithms.exhaustive import ExhaustiveScheduler
from repro.algorithms.lookahead import LookaheadCriticalGreedyScheduler
from repro.exceptions import InfeasibleBudgetError

from tests.conftest import problems_with_budgets


class TestAnnealing:
    def test_never_worse_than_cg(self, example_problem):
        cg = CriticalGreedyScheduler()
        sa = AnnealingScheduler(iterations=500, seed=1)
        for budget in example_problem.budget_levels(5):
            assert (
                sa.solve(example_problem, budget).med
                <= cg.solve(example_problem, budget).med + 1e-9
            )

    def test_feasible(self, example_problem):
        result = AnnealingScheduler(iterations=300).solve(example_problem, 57.0)
        result.assert_feasible()

    def test_deterministic_under_seed(self, example_problem):
        a = AnnealingScheduler(iterations=300, seed=7).solve(example_problem, 57.0)
        b = AnnealingScheduler(iterations=300, seed=7).solve(example_problem, 57.0)
        assert a.schedule.assignment == b.schedule.assignment

    def test_restarts(self, example_problem):
        result = AnnealingScheduler(iterations=100, restarts=3).solve(
            example_problem, 57.0
        )
        result.assert_feasible()
        assert result.extras["iterations"] == 300

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AnnealingScheduler(iterations=0)
        with pytest.raises(ValueError):
            AnnealingScheduler(cooling=1.0)
        with pytest.raises(ValueError):
            AnnealingScheduler(initial_temperature_factor=0.0)
        with pytest.raises(ValueError):
            AnnealingScheduler(restarts=0)

    def test_infeasible_budget_raises(self, example_problem):
        with pytest.raises(InfeasibleBudgetError):
            AnnealingScheduler().solve(example_problem, 1.0)

    def test_single_type_catalog_degenerates_gracefully(self):
        from repro.core.module import Module
        from repro.core.problem import MedCCProblem
        from repro.core.vm import VMType, VMTypeCatalog
        from repro.core.workflow import Workflow

        problem = MedCCProblem(
            workflow=Workflow([Module("a", workload=5.0)]),
            catalog=VMTypeCatalog([VMType(name="only", power=1.0, rate=1.0)]),
        )
        result = AnnealingScheduler().solve(problem, 10.0)
        assert result.med == pytest.approx(5.0)


class TestLookaheadCG:
    def test_never_worse_than_plain_cg_on_wrf(self, wrf_problem):
        plain = CriticalGreedyScheduler()
        smart = LookaheadCriticalGreedyScheduler()
        for budget in wrf_problem.budget_levels(8):
            assert (
                smart.solve(wrf_problem, budget).med
                <= plain.solve(wrf_problem, budget).med + 1e-9
            )

    def test_fixes_the_wrf_174_9_overspend(self, wrf_problem):
        # Plain CG overshoots w5 to VT3 at budget 174.9 and strands w6;
        # the lookahead's cheapest-equal-makespan tie-break avoids it.
        plain = CriticalGreedyScheduler().solve(wrf_problem, 174.9)
        smart = LookaheadCriticalGreedyScheduler().solve(wrf_problem, 174.9)
        assert smart.med < plain.med - 1e-9

    def test_only_improving_steps(self, example_problem):
        result = LookaheadCriticalGreedyScheduler().solve(example_problem, 64.0)
        makespans = [s.makespan_after for s in result.steps]
        assert all(b < a for a, b in zip(makespans, makespans[1:])) or (
            len(makespans) <= 1
        )

    def test_feasible_and_bounded(self, example_problem):
        result = LookaheadCriticalGreedyScheduler().solve(example_problem, 57.0)
        result.assert_feasible()


@settings(max_examples=25, deadline=None)
@given(pb=problems_with_budgets(max_modules=5, max_types=3))
def test_extensions_never_beat_the_optimum(pb):
    problem, budget = pb
    opt = ExhaustiveScheduler().solve(problem, budget).med
    sa = AnnealingScheduler(iterations=150).solve(problem, budget)
    la = LookaheadCriticalGreedyScheduler().solve(problem, budget)
    sa.assert_feasible()
    la.assert_feasible()
    assert sa.med >= opt - 1e-9
    assert la.med >= opt - 1e-9
