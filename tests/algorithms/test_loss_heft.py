"""Tests for the LOSS family, HEFT and the fastest/least-cost schedulers."""

import pytest
from hypothesis import given, settings

from repro.algorithms.heft import FastestScheduler, HeftScheduler, upward_ranks
from repro.algorithms.least_cost import LeastCostScheduler
from repro.algorithms.loss import (
    Loss1Scheduler,
    Loss2Scheduler,
    Loss3Scheduler,
    LossScheduler,
)
from repro.exceptions import InfeasibleBudgetError

from tests.conftest import problems_with_budgets


class TestLoss:
    def test_high_budget_keeps_fastest(self, example_problem):
        result = Loss3Scheduler().solve(example_problem, 64.0)
        assert result.med == pytest.approx(
            example_problem.makespan_of(example_problem.fastest_schedule())
        )
        assert result.steps == ()

    def test_tight_budget_downgrades_within_budget(self, example_problem):
        for scheduler in (Loss1Scheduler(), Loss2Scheduler(), Loss3Scheduler()):
            result = scheduler.solve(example_problem, 50.0)
            result.assert_feasible()

    def test_budget_cmin_is_feasible(self, example_problem):
        result = Loss3Scheduler().solve(example_problem, 48.0)
        result.assert_feasible()

    def test_infeasible_budget_raises(self, example_problem):
        with pytest.raises(InfeasibleBudgetError):
            Loss3Scheduler().solve(example_problem, 30.0)

    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            LossScheduler(variant=7)

    def test_steps_record_cost_savings(self, example_problem):
        result = Loss3Scheduler().solve(example_problem, 50.0)
        assert result.steps
        for step in result.steps:
            assert step.cost_increase < 0  # downgrades save money

    def test_loss_med_monotone_nonincreasing_in_budget(self, example_problem):
        meds = [
            Loss3Scheduler().solve(example_problem, b).med
            for b in example_problem.budget_levels(8)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(meds, meds[1:]))


class TestHeftAndFastest:
    def test_heft_equals_fastest_in_one_to_one_model(self, example_problem):
        heft = HeftScheduler().solve(example_problem, 64.0)
        fastest = FastestScheduler().solve(example_problem, 64.0)
        assert heft.schedule.assignment == fastest.schedule.assignment

    def test_upward_ranks_decrease_along_edges(self, example_problem):
        ranks = upward_ranks(example_problem)
        wf = example_problem.workflow
        for edge in wf.edges():
            assert ranks[edge.src] > ranks[edge.dst]

    def test_upward_rank_of_exit_is_its_own_time(self, example_problem):
        ranks = upward_ranks(example_problem)
        assert ranks[example_problem.workflow.exit] == pytest.approx(1.0)

    def test_priority_order_follows_ranks(self, example_problem):
        result = HeftScheduler().solve(example_problem, 64.0)
        order = result.extras["priority_order"]
        ranks = result.extras["upward_ranks"]
        values = [ranks[n] for n in order]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_min_time_ranks_option(self, example_problem):
        mean_ranks = upward_ranks(example_problem, use_mean_times=True)
        min_ranks = upward_ranks(example_problem, use_mean_times=False)
        assert all(
            min_ranks[n] <= mean_ranks[n] + 1e-9 for n in mean_ranks
        )


class TestLeastCostScheduler:
    def test_returns_cmin_cost(self, example_problem):
        result = LeastCostScheduler().solve(example_problem, 48.0)
        assert result.total_cost == pytest.approx(48.0)

    def test_infeasible_budget_raises(self, example_problem):
        with pytest.raises(InfeasibleBudgetError):
            LeastCostScheduler().solve(example_problem, 47.0)


@settings(max_examples=40, deadline=None)
@given(pb=problems_with_budgets())
def test_loss3_feasible_and_no_faster_than_fastest(pb):
    """Properties: LOSS lands within budget and cannot beat S_fastest."""
    problem, budget = pb
    result = Loss3Scheduler().solve(problem, budget)
    result.assert_feasible()
    fast_med = problem.makespan_of(problem.fastest_schedule())
    assert result.med >= fast_med - 1e-9


class TestLossFrozenFallback:
    def test_loss1_refreshes_when_frozen_pool_exhausts(self, example_problem):
        # At a budget just above Cmin, LOSS1 must downgrade nearly every
        # module; if its frozen pool runs dry it falls back to refreshed
        # candidates and still lands feasible.
        result = Loss1Scheduler().solve(example_problem, 48.5)
        result.assert_feasible()

    def test_loss_variants_agree_at_extremes(self, example_problem):
        for scheduler in (Loss1Scheduler(), Loss2Scheduler(), Loss3Scheduler()):
            top = scheduler.solve(example_problem, 64.0)
            assert top.med == pytest.approx(
                example_problem.makespan_of(example_problem.fastest_schedule())
            )


class TestUpwardRanksWithTransfers:
    def test_transfer_times_inflate_ranks(self, example_problem):
        from repro.core.problem import MedCCProblem, TransferModel

        slow = MedCCProblem(
            workflow=example_problem.workflow,
            catalog=example_problem.catalog,
            transfers=TransferModel(bandwidth=1.0, latency=0.5),
        )
        base = upward_ranks(example_problem)
        inflated = upward_ranks(slow)
        # Every non-exit module's rank grows once transfers take time.
        exit_name = example_problem.workflow.exit
        for name, rank in base.items():
            if name == exit_name:
                assert inflated[name] == pytest.approx(rank)
            else:
                assert inflated[name] > rank
