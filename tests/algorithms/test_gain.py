"""Tests for the GAIN family, anchored on the paper's published WRF rows."""

import pytest
from hypothesis import given, settings

from repro.algorithms.gain import (
    Gain1Scheduler,
    Gain2Scheduler,
    Gain3Scheduler,
    GainAbsoluteScheduler,
    GainScheduler,
)
from repro.exceptions import InfeasibleBudgetError

from tests.conftest import problems_with_budgets


class TestGain3AgainstPublishedWRFRows:
    """The identification evidence for the GAIN3 weight (see gain.py)."""

    def test_budget_147_5_schedule(self, wrf_problem):
        # Paper Table VII: SGAIN3 = (3,2,2,1,1,2) at budget 147.5 — the
        # dominant module w5 is left on VT1 even though its absolute
        # dT/dC move is the best in the instance.
        result = Gain3Scheduler().solve(wrf_problem, 147.5)
        vec = tuple(
            result.schedule[m] + 1 for m in wrf_problem.matrices.module_names
        )
        assert vec == (3, 2, 2, 1, 1, 2)

    def test_budget_150_schedule(self, wrf_problem):
        result = Gain3Scheduler().solve(wrf_problem, 150.0)
        vec = tuple(
            result.schedule[m] + 1 for m in wrf_problem.matrices.module_names
        )
        assert vec == (3, 2, 2, 1, 1, 2)

    def test_budget_155_upgrades_w4(self, wrf_problem):
        # Published row: (3,2,2,3,1,2); under the published (ceil-billed)
        # cost matrix the w4->VT3 step costs 11.3 against 9.0 of remaining
        # budget, so the reproducible schedule downgrades that single step
        # to w4->VT2.  Everything else matches.
        result = Gain3Scheduler().solve(wrf_problem, 155.0)
        vec = tuple(
            result.schedule[m] + 1 for m in wrf_problem.matrices.module_names
        )
        assert vec == (3, 2, 2, 2, 1, 2)

    def test_absolute_variant_upgrades_w5_first(self, wrf_problem):
        # The absolute dT/dC reading immediately upgrades w5 — which is
        # precisely why it cannot be the paper's GAIN3.
        result = GainAbsoluteScheduler().solve(wrf_problem, 147.5)
        assert result.steps[0].module == "w5"

    def test_gain3_small_modules_first(self, wrf_problem):
        result = Gain3Scheduler().solve(wrf_problem, 147.5)
        assert result.steps[0].module in ("w2", "w3")


class TestGainVariants:
    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            GainScheduler(variant="bogus")

    def test_all_variants_feasible_on_example(self, example_problem):
        for scheduler in (
            Gain1Scheduler(),
            Gain2Scheduler(),
            Gain3Scheduler(),
            GainAbsoluteScheduler(),
        ):
            for budget in example_problem.budget_levels(5):
                result = scheduler.solve(example_problem, budget)
                result.assert_feasible()

    def test_infeasible_budget_raises(self, example_problem):
        with pytest.raises(InfeasibleBudgetError):
            Gain3Scheduler().solve(example_problem, 40.0)

    def test_budget_cmin_returns_least_cost(self, example_problem):
        result = Gain3Scheduler().solve(example_problem, 48.0)
        assert result.schedule.assignment == (
            example_problem.least_cost_schedule().assignment
        )

    def test_gain1_each_task_moves_once(self, example_problem):
        result = Gain1Scheduler().solve(example_problem, 64.0)
        modules = [s.module for s in result.steps]
        assert len(modules) == len(set(modules))

    def test_gain2_only_applies_makespan_improving_moves(self, example_problem):
        result = Gain2Scheduler().solve(example_problem, 64.0)
        makespans = [s.makespan_after for s in result.steps]
        lc_med = example_problem.makespan_of(
            example_problem.least_cost_schedule()
        )
        previous = lc_med
        for m in makespans:
            assert m < previous + 1e-9
            previous = m

    def test_variant_recorded_in_extras(self, example_problem):
        assert (
            Gain3Scheduler().solve(example_problem, 50.0).extras["variant"]
            == "relative"
        )


@settings(max_examples=50, deadline=None)
@given(pb=problems_with_budgets())
def test_gain3_feasibility_and_improvement(pb):
    """Properties: within budget and never slower than least-cost."""
    problem, budget = pb
    result = Gain3Scheduler().solve(problem, budget)
    result.assert_feasible()
    lc_med = problem.makespan_of(problem.least_cost_schedule())
    assert result.med <= lc_med + 1e-9


@settings(max_examples=30, deadline=None)
@given(pb=problems_with_budgets(max_modules=5, max_types=3))
def test_all_gain_variants_feasible(pb):
    problem, budget = pb
    for scheduler in (Gain1Scheduler(), Gain2Scheduler(), GainAbsoluteScheduler()):
        scheduler.solve(problem, budget).assert_feasible()
