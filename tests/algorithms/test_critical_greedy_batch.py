"""solve_batch bit-identity: every batched row equals its serial solve.

The group-sharing batch solver's contract is byte-identity, not
closeness: row ``i`` of ``solve_batch(problem, budgets)`` must carry the
same schedule assignment, the same rescheduling step trace (module, type
and deltas), the same MED, cost and extras as ``solve(problem,
budgets[i])`` — for random DAGs (with transfers), random/unsorted/
duplicated budget grids, and adversarial near-tie ΔT/ΔC catalogs that
force the grouped argmax onto its exact per-member fallback.  The serial
oracle is checked on both the incremental and the reference engine.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.core.module import DataDependency, Module
from repro.core.problem import MedCCProblem, TransferModel
from repro.core.vm import VMType, VMTypeCatalog
from repro.core.workflow import Workflow
from repro.exceptions import InfeasibleBudgetError
from tests.conftest import medcc_problems


def _assert_rows_identical(serial, batched, context=""):
    """Byte-identity of two SchedulerResults — no tolerances anywhere."""
    assert batched.algorithm == serial.algorithm, context
    assert batched.budget == serial.budget, context
    assert batched.schedule.assignment == serial.schedule.assignment, context
    assert batched.steps == serial.steps, context
    assert batched.evaluation.makespan == serial.evaluation.makespan, context
    assert batched.evaluation.total_cost == serial.evaluation.total_cost, context
    assert dict(batched.extras) == dict(serial.extras), context


def _assert_batch_matches_serial(scheduler, problem, budgets, oracle=None):
    oracle = oracle or scheduler
    batched = scheduler.solve_batch(problem, budgets)
    assert len(batched) == len(budgets)
    for i, budget in enumerate(budgets):
        serial = oracle.solve(problem, budget)
        _assert_rows_identical(serial, batched[i], f"budget[{i}]={budget}")


def _budget_grid(data, problem, max_levels=6):
    """An unsorted budget grid with possible duplicates and extremes."""
    lo, hi = problem.budget_range()
    fracs = data.draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.3, allow_nan=False),
            min_size=2,
            max_size=max_levels,
        )
    )
    return [lo + frac * (hi - lo) for frac in fracs]


def _with_transfers(problem):
    return dataclasses.replace(
        problem, transfers=TransferModel(bandwidth=2.0, latency=0.5)
    )


# --------------------------------------------------------------------- #
# Random DAGs, random budget grids
# --------------------------------------------------------------------- #


@given(problem=medcc_problems(), data=st.data())
@settings(max_examples=40, deadline=None)
@pytest.mark.parametrize("with_transfers", [False, True])
def test_batch_matches_serial_incremental(problem, data, with_transfers):
    if with_transfers:
        problem = _with_transfers(problem)
    scheduler = CriticalGreedyScheduler()
    budgets = _budget_grid(data, problem)
    _assert_batch_matches_serial(scheduler, problem, budgets)


@given(problem=medcc_problems(max_modules=6, max_types=3), data=st.data())
@settings(max_examples=15, deadline=None)
def test_batch_matches_reference_engine(problem, data):
    """The batched rows equal the original implementation's solves too."""
    scheduler = CriticalGreedyScheduler()
    reference = CriticalGreedyScheduler(engine="reference")
    budgets = _budget_grid(data, problem, max_levels=4)
    _assert_batch_matches_serial(scheduler, problem, budgets, oracle=reference)


@given(problem=medcc_problems(max_modules=6, max_types=3), data=st.data())
@settings(max_examples=15, deadline=None)
def test_candidate_scope_all_batch_matches_serial(problem, data):
    scheduler = CriticalGreedyScheduler(candidate_scope="all")
    budgets = _budget_grid(data, problem, max_levels=4)
    _assert_batch_matches_serial(scheduler, problem, budgets)


# --------------------------------------------------------------------- #
# Adversarial near-tie ΔT/ΔC catalogs
# --------------------------------------------------------------------- #


def _tie_problem(delta: float, parallel: int = 4) -> MedCCProblem:
    """``parallel`` equal-workload modules in parallel, workloads split
    by ``delta`` — at ``delta=0`` every step is an exact ΔT/ΔC tie
    (row-major tie-break territory); at tiny ``delta`` the candidates
    land within the batch solver's eps guard, forcing its exact
    per-member fallback instead of the shared vectorized pick.
    """
    modules = [Module("src", fixed_time=0.0)]
    modules += [
        Module(f"p{i}", workload=24.0 + i * delta) for i in range(parallel)
    ]
    modules.append(Module("dst", fixed_time=0.0))
    edges = [DataDependency("src", f"p{i}") for i in range(parallel)]
    edges += [DataDependency(f"p{i}", "dst") for i in range(parallel)]
    workflow = Workflow(modules, edges, name=f"tie-{delta:g}")
    catalog = VMTypeCatalog(
        [
            VMType(name="S", power=1.0, rate=1.0),
            VMType(name="M", power=2.0, rate=3.0),
            VMType(name="L", power=4.0, rate=8.0),
        ]
    )
    return MedCCProblem(workflow=workflow, catalog=catalog)


@pytest.mark.parametrize("delta", [0.0, 1e-12, 1e-10, 1e-9, 1e-6])
def test_near_tie_deltas_stay_identical(delta):
    problem = _tie_problem(delta)
    scheduler = CriticalGreedyScheduler()
    reference = CriticalGreedyScheduler(engine="reference")
    lo, hi = problem.budget_range()
    # Band edges and interiors: every parallel module upgraded one at a
    # time ties (or nearly ties) with its siblings at each step.
    budgets = [lo + frac * (hi - lo) for frac in (0.0, 0.1, 0.25, 0.5, 0.9, 1.0)]
    _assert_batch_matches_serial(scheduler, problem, budgets)
    _assert_batch_matches_serial(scheduler, problem, budgets, oracle=reference)


def test_near_tie_mixed_budget_order(example_problem):
    """The paper example at band edges, unsorted with duplicates."""
    scheduler = CriticalGreedyScheduler()
    budgets = [57.0, 49.0, 57.0, 1000.0, 48.0, 56.999999999]
    _assert_batch_matches_serial(scheduler, example_problem, budgets)


# --------------------------------------------------------------------- #
# Contract edges
# --------------------------------------------------------------------- #


class TestBatchContract:
    def test_empty_budgets_returns_empty(self, example_problem):
        assert CriticalGreedyScheduler().solve_batch(example_problem, []) == []

    def test_single_budget_falls_back_to_serial(self, example_problem):
        scheduler = CriticalGreedyScheduler()
        [batched] = scheduler.solve_batch(example_problem, [57.0])
        _assert_rows_identical(scheduler.solve(example_problem, 57.0), batched)

    def test_infeasible_budget_raises_before_solving(self, example_problem):
        scheduler = CriticalGreedyScheduler()
        lo, _ = example_problem.budget_range()
        with pytest.raises(InfeasibleBudgetError):
            scheduler.solve_batch(example_problem, [57.0, lo - 1.0])

    def test_non_incremental_engine_falls_back(self, example_problem):
        scheduler = CriticalGreedyScheduler(engine="fast")
        budgets = [49.0, 57.0, 64.0]
        _assert_batch_matches_serial(scheduler, example_problem, budgets)

    def test_extras_report_per_row_iterations(self, example_problem):
        scheduler = CriticalGreedyScheduler()
        for result in scheduler.solve_batch(example_problem, [48.0, 57.0, 64.0]):
            assert dict(result.extras) == {"iterations": len(result.steps)}

    def test_rows_are_feasible(self, example_problem):
        scheduler = CriticalGreedyScheduler()
        budgets = [48.0, 52.0, 57.0, 64.0]
        for result in scheduler.solve_batch(example_problem, budgets):
            result.assert_feasible()
