"""Property: every registered scheduler yields lint-clean, feasible schedules."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.algorithms.base import available_schedulers, get_scheduler
from repro.lint import lint_schedule
from tests.conftest import problems_with_budgets

# exhaustive is exponential in |modules|; pipeline-dp rejects non-pipeline
# DAGs by design (ScheduleError), so neither fits the random-DAG property.
EXCLUDED = {"exhaustive", "pipeline-dp"}


@pytest.mark.parametrize("name", sorted(set(available_schedulers()) - EXCLUDED))
@given(pb=problems_with_budgets(max_modules=4, max_types=3))
@settings(max_examples=5, deadline=None)
def test_scheduler_output_is_lint_clean(name, pb):
    problem, budget = pb
    scheduler = get_scheduler(name)
    result = scheduler.solve(problem, budget)

    respects_budget = getattr(scheduler, "respects_budget", True)
    report = lint_schedule(
        problem,
        result.schedule,
        budget=budget if respects_budget else None,
        claimed_cost=result.total_cost,
        name=name,
    )
    assert not report.errors, report.render()
    if respects_budget:
        tol = 1e-9 * max(1.0, abs(budget))
        assert result.total_cost <= budget + tol
