"""Seeded-violation fixtures for the deep flow rules (RT7xx / RN8xx).

Every test builds a small project tree under ``tmp_path`` (flow rules
scope by directory: ``service/`` for the concurrency rules, the
bit-identity modules for RN801/RN802, ``experiments/``+``sim/`` for
RN803) and runs the real deep pipeline through ``lint_source_tree``.

The two ``TestSeededFault*`` classes are the acceptance drills from the
issue: take the *real* ``repro/service/cache.py`` and strip one ``with
self._lock:`` block (RT701 must catch it), and reorder a float
accumulation in a bit-identity ``core/fastpath.py`` module (RN801 must
catch it).
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import repro
from repro.lint import lint_source_tree

REAL_PACKAGE = Path(repro.__file__).resolve().parent


def deep_lint(tmp_path, files):
    """Write ``{relpath: source}`` under tmp_path and deep-lint the tree."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return lint_source_tree([tmp_path], deep=True)


def rules_of(report):
    return [d.rule for d in report]


class TestRT701LockDiscipline:
    def test_unlocked_write_to_guarded_attr(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "service/store.py": """\
                import threading

                __all__ = ["Store"]


                class Store:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []

                    def add(self, item):
                        with self._lock:
                            self._items.append(item)

                    def drop_all(self):
                        self._items = []
                """
            },
        )
        hits = [d for d in report if d.rule == "RT701"]
        assert len(hits) == 1
        assert "_items" in hits[0].message
        assert "drop_all" in hits[0].message

    def test_fully_locked_class_is_clean(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "service/store.py": """\
                import threading

                __all__ = ["Store"]


                class Store:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []

                    def add(self, item):
                        with self._lock:
                            self._items.append(item)

                    def snapshot(self):
                        with self._lock:
                            return list(self._items)
                """
            },
        )
        assert "RT701" not in rules_of(report)

    def test_locked_suffix_methods_are_caller_holds_lock(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "service/store.py": """\
                import threading

                __all__ = ["Store"]


                class Store:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []

                    def add(self, item):
                        with self._lock:
                            self._add_locked(item)

                    def _add_locked(self, item):
                        self._items.append(item)
                """
            },
        )
        assert "RT701" not in rules_of(report)

    def test_outside_service_package_is_out_of_scope(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "core/store.py": """\
                import threading

                __all__ = ["Store"]


                class Store:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = []

                    def add(self, item):
                        with self._lock:
                            self._items.append(item)

                    def drop_all(self):
                        self._items = []
                """
            },
        )
        assert "RT701" not in rules_of(report)


class TestRT702LockOrder:
    def test_opposite_nesting_order_is_a_cycle(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "service/pair.py": """\
                import threading

                __all__ = ["Pair"]


                class Pair:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def forward(self):
                        with self._a:
                            with self._b:
                                pass

                    def backward(self):
                        with self._b:
                            with self._a:
                                pass
                """
            },
        )
        hits = [d for d in report if d.rule == "RT702"]
        assert hits, "opposite lock nesting must produce a cycle finding"
        assert any("_a" in d.message and "_b" in d.message for d in hits)

    def test_consistent_order_is_clean(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "service/pair.py": """\
                import threading

                __all__ = ["Pair"]


                class Pair:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def forward(self):
                        with self._a:
                            with self._b:
                                pass

                    def also_forward(self):
                        with self._a:
                            with self._b:
                                pass
                """
            },
        )
        assert "RT702" not in rules_of(report)

    def test_self_deadlock_through_a_call(self, tmp_path):
        # Re-acquiring a non-reentrant Lock via a method called while
        # holding it — the exact shape of the executor bug this rule
        # found in service/executor.py.
        report = deep_lint(
            tmp_path,
            {
                "service/ex.py": """\
                import threading

                __all__ = ["Ex"]


                class Ex:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._n = 0

                    def submit(self):
                        with self._lock:
                            self._reject()

                    def _reject(self):
                        with self._lock:
                            self._n += 1
                """
            },
        )
        hits = [d for d in report if d.rule == "RT702"]
        assert hits, "lock re-acquisition through a call must be reported"

    def test_rlock_reacquisition_is_allowed(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "service/ex.py": """\
                import threading

                __all__ = ["Ex"]


                class Ex:
                    def __init__(self):
                        self._lock = threading.RLock()
                        self._n = 0

                    def submit(self):
                        with self._lock:
                            self._reject()

                    def _reject(self):
                        with self._lock:
                            self._n += 1
                """
            },
        )
        assert "RT702" not in rules_of(report)


class TestRT703BlockingOnHandlerPath:
    def test_sleep_reachable_from_do_get(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "service/http.py": """\
                import time
                from http.server import BaseHTTPRequestHandler

                __all__ = ["Handler"]


                class Handler(BaseHTTPRequestHandler):
                    def do_GET(self):
                        self._work()

                    def _work(self):
                        time.sleep(1.0)
                """
            },
        )
        hits = [d for d in report if d.rule == "RT703"]
        assert len(hits) == 1
        assert "time.sleep" in hits[0].message
        assert "do_GET" in hits[0].message  # the call chain names the entry

    def test_blocking_outside_handler_reach_is_clean(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "service/http.py": """\
                import time
                from http.server import BaseHTTPRequestHandler

                __all__ = ["Handler", "offline_work"]


                class Handler(BaseHTTPRequestHandler):
                    def do_GET(self):
                        pass


                def offline_work():
                    time.sleep(1.0)
                """
            },
        )
        assert "RT703" not in rules_of(report)

    def test_untimeouted_future_result_flagged(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "service/http.py": """\
                from http.server import BaseHTTPRequestHandler

                __all__ = ["Handler"]


                class Handler(BaseHTTPRequestHandler):
                    def do_POST(self):
                        return self.job.result()
                """
            },
        )
        assert "RT703" in rules_of(report)


class TestRT703AsyncioHandlerPath:
    """Seeded-fault drills for the asyncio extension of RT703.

    Blocking primitives reachable from ``async def`` functions are
    findings with "an asyncio handler path" wording, and files under
    ``service/aio/`` escalate them to errors.
    """

    def test_sleep_reachable_from_async_def_is_error_under_aio(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "service/aio/core.py": """\
                import time

                __all__ = ["handle"]


                async def handle(request):
                    return _work(request)


                def _work(request):
                    time.sleep(1.0)
                    return request
                """
            },
        )
        hits = [d for d in report if d.rule == "RT703"]
        assert len(hits) == 1
        assert "time.sleep" in hits[0].message
        assert "an asyncio handler path" in hits[0].message
        assert "handle" in hits[0].message  # the call chain names the entry
        assert str(hits[0].severity) == "error"

    def test_async_path_outside_aio_stays_warning(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "service/worker.py": """\
                import time

                __all__ = ["tick"]


                async def tick():
                    time.sleep(0.5)
                """
            },
        )
        hits = [d for d in report if d.rule == "RT703"]
        assert len(hits) == 1
        assert "an asyncio handler path" in hits[0].message
        assert str(hits[0].severity) == "warning"

    def test_untimeouted_future_result_in_async_def_flagged(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "service/aio/core.py": """\
                __all__ = ["gather"]


                async def gather(job):
                    return job.result()
                """
            },
        )
        hits = [d for d in report if d.rule == "RT703"]
        assert len(hits) == 1
        assert "an asyncio handler path" in hits[0].message
        assert str(hits[0].severity) == "error"

    def test_blocking_unreachable_from_async_def_is_clean(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "service/aio/tools.py": """\
                import time

                __all__ = ["warm_cache"]


                async def probe():
                    return 1


                def warm_cache():
                    time.sleep(1.0)
                """
            },
        )
        assert "RT703" not in rules_of(report)

    def test_sync_handler_wording_wins_on_shared_sites(self, tmp_path):
        # Baseline stability: a site reachable from BOTH a do_* handler
        # and an async def keeps the original HTTP-path wording (the
        # sync traversal runs first), so existing baseline entries do
        # not churn when async reach appears.
        report = deep_lint(
            tmp_path,
            {
                "service/http.py": """\
                import time
                from http.server import BaseHTTPRequestHandler

                __all__ = ["Handler", "refresh"]


                class Handler(BaseHTTPRequestHandler):
                    def do_GET(self):
                        _work()


                async def refresh():
                    _work()


                def _work():
                    time.sleep(1.0)
                """
            },
        )
        hits = [d for d in report if d.rule == "RT703"]
        assert len(hits) == 1
        assert "an HTTP handler path" in hits[0].message
        assert "an asyncio handler path" not in hits[0].message

    def test_lint_pragma_suppresses_async_finding(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "service/aio/core.py": """\
                __all__ = ["gather"]


                async def gather(job):
                    return job.result()  # lint: ignore[RT703] - done task
                """
            },
        )
        assert "RT703" not in rules_of(report)


class TestRN801ReductionOrder:
    def test_sum_over_dict_values_in_bit_identity_module(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "core/fastpath.py": """\
                __all__ = ["total"]


                def total(costs):
                    return sum(costs.values())
                """
            },
        )
        hits = [d for d in report if d.rule == "RN801"]
        assert len(hits) == 1

    def test_sorted_wrapper_pins_the_order(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "core/fastpath.py": """\
                __all__ = ["total"]


                def total(costs):
                    return sum(costs[k] for k in sorted(costs))
                """
            },
        )
        assert "RN801" not in rules_of(report)

    def test_ordinary_module_is_out_of_scope(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "analysis/tables.py": """\
                __all__ = ["total"]


                def total(costs):
                    return sum(costs.values())
                """
            },
        )
        assert "RN801" not in rules_of(report)

    def test_axis_wise_sum_over_batched_grid(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "core/fastpath.py": """\
                __all__ = ["fold_rows"]


                def fold_rows(grid):
                    return grid.sum(axis=1)
                """
            },
        )
        hits = [d for d in report if d.rule == "RN801"]
        assert len(hits) == 1
        assert "axis" in hits[0].message

    def test_np_mean_with_axis_tuple(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "algorithms/batch.py": """\
                import numpy as np

                __all__ = ["fold"]


                def fold(dt3):
                    return np.mean(dt3, axis=(1, 2))
                """
            },
        )
        hits = [d for d in report if d.rule == "RN801"]
        assert len(hits) == 1

    def test_positional_axis_is_recognized(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "core/fastpath.py": """\
                __all__ = ["fold_rows"]


                def fold_rows(grid):
                    return grid.prod(0)
                """
            },
        )
        assert "RN801" in rules_of(report)

    def test_exact_batched_reductions_are_clean(self, tmp_path):
        # The folds BatchedSweep actually runs across budget rows:
        # max/min/any/argmax are exact, order-independent reductions.
        report = deep_lint(
            tmp_path,
            {
                "core/fastpath.py": """\
                import numpy as np

                __all__ = ["sweep_rows"]


                def sweep_rows(ready, cand, valid3):
                    best = ready.max(axis=1)
                    latest = cand.min(axis=1)
                    pick = np.argmax(ready == best[:, None], axis=1)
                    guard = np.any(valid3, axis=(1, 2))
                    return best, latest, pick, guard
                """
            },
        )
        assert "RN801" not in rules_of(report)

    def test_full_reduction_without_axis_is_clean(self, tmp_path):
        # A 1-D contiguous .sum() has a pinned (single-pass pairwise)
        # order already covered by the strided-slice check; no axis, no
        # batch dimension, no new finding.
        report = deep_lint(
            tmp_path,
            {
                "core/fastpath.py": """\
                __all__ = ["total"]


                def total(values):
                    return values.sum()
                """
            },
        )
        assert "RN801" not in rules_of(report)


class TestRN802DictOrderAccumulation:
    def test_augmented_accumulation_over_items(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "algorithms/acc.py": """\
                __all__ = ["fold"]


                def fold(meds):
                    total = 0.0
                    for name, med in meds.items():
                        total += med
                    return total
                """
            },
        )
        hits = [d for d in report if d.rule == "RN802"]
        assert len(hits) == 1

    def test_sorted_items_is_clean(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "algorithms/acc.py": """\
                __all__ = ["fold"]


                def fold(meds):
                    total = 0.0
                    for name, med in sorted(meds.items()):
                        total += med
                    return total
                """
            },
        )
        assert "RN802" not in rules_of(report)


class TestRN803UnseededRandomness:
    def test_zero_arg_default_rng_in_experiments(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "experiments/run.py": """\
                import numpy as np

                __all__ = ["draw"]


                def draw():
                    return np.random.default_rng().random()
                """
            },
        )
        assert "RN803" in rules_of(report)

    def test_seeded_default_rng_is_clean(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "experiments/run.py": """\
                import numpy as np

                __all__ = ["draw"]


                def draw(seed):
                    return np.random.default_rng(seed).random()
                """
            },
        )
        assert "RN803" not in rules_of(report)

    def test_module_level_random_in_sim(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "sim/jitter.py": """\
                import random

                __all__ = ["jitter"]


                def jitter():
                    return random.random()
                """
            },
        )
        assert "RN803" in rules_of(report)

    def test_outside_experiment_dirs_is_out_of_scope(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "analysis/jitter.py": """\
                import random

                __all__ = ["jitter"]


                def jitter():
                    return random.random()
                """
            },
        )
        assert "RN803" not in rules_of(report)


# --------------------------------------------------------------------- #
# Acceptance drills: seeded faults in copies of the real sources
# --------------------------------------------------------------------- #


def _strip_first_lock_block(text: str) -> str:
    """Remove the first ``with self._lock:`` block header, dedenting its body.

    The textual equivalent of a developer deleting the ``with`` line and
    re-indenting — the body stays, the protection goes.
    """
    lines = text.splitlines(keepends=True)
    for i, line in enumerate(lines):
        stripped = line.strip()
        if stripped != "with self._lock:":
            continue
        indent = len(line) - len(line.lstrip())
        out = lines[:i]
        j = i + 1
        while j < len(lines):
            body = lines[j]
            if body.strip() and (len(body) - len(body.lstrip())) <= indent:
                break
            out.append(body[4:] if body.strip() else body)
            j += 1
        out.extend(lines[j:])
        return "".join(out)
    raise AssertionError("no 'with self._lock:' block found to strip")


class TestSeededFaultCacheLock:
    """Acceptance: drop one lock block in the real cache.py → RT701."""

    def test_pristine_copy_has_no_rt701(self, tmp_path):
        source = (REAL_PACKAGE / "service" / "cache.py").read_text()
        report = deep_lint(tmp_path, {"service/cache.py": source})
        assert "RT701" not in rules_of(report)

    def test_stripped_lock_is_caught(self, tmp_path):
        source = (REAL_PACKAGE / "service" / "cache.py").read_text()
        report = deep_lint(
            tmp_path, {"service/cache.py": _strip_first_lock_block(source)}
        )
        hits = [d for d in report if d.rule == "RT701"]
        assert hits, "removing a lock block from cache.py must trip RT701"
        assert any("_lock" in d.message for d in hits)


class TestSeededFaultFastpathOrder:
    """Acceptance: reorder a float accumulation in core/fastpath.py → RN801."""

    def test_ordered_reduction_is_clean(self, tmp_path):
        report = deep_lint(
            tmp_path,
            {
                "core/fastpath.py": """\
                __all__ = ["fold_spans"]


                def fold_spans(spans):
                    return sum(spans[n] for n in sorted(spans))
                """
            },
        )
        assert "RN801" not in rules_of(report)

    def test_reordered_reduction_is_caught(self, tmp_path):
        # The same reduction folded straight off the dict view: value-
        # identical only if insertion order happens to match, so the
        # bit-identity contract of core/fastpath.py rejects it.
        report = deep_lint(
            tmp_path,
            {
                "core/fastpath.py": """\
                __all__ = ["fold_spans"]


                def fold_spans(spans):
                    return sum(spans.values())
                """
            },
        )
        assert "RN801" in rules_of(report)


class TestSeededFaultBatchedAxisFold:
    """Acceptance: order-sensitive fold across BatchedSweep's batch axis → RN801.

    The drill takes the *real* ``core/fastpath.py`` (whose batched
    forward sweep reduces predecessor finish times with the exact
    ``ready.max(axis=1)``) and swaps that exact fold for a mean — the
    textual equivalent of a refactor averaging across the batched grid.
    The bit-identity contract must reject the order-sensitive fold while
    accepting the pristine kernel.
    """

    PRISTINE = "best = ready.max(axis=1)"
    FAULTY = "best = ready.mean(axis=1)"

    def test_pristine_copy_has_no_rn801(self, tmp_path):
        source = (REAL_PACKAGE / "core" / "fastpath.py").read_text()
        assert self.PRISTINE in source
        report = deep_lint(tmp_path, {"core/fastpath.py": source})
        assert "RN801" not in rules_of(report)

    def test_order_sensitive_batch_fold_is_caught(self, tmp_path):
        source = (REAL_PACKAGE / "core" / "fastpath.py").read_text()
        report = deep_lint(
            tmp_path,
            {"core/fastpath.py": source.replace(self.PRISTINE, self.FAULTY, 1)},
        )
        hits = [d for d in report if d.rule == "RN801"]
        assert hits, "an axis-wise mean across the batch grid must trip RN801"
        assert any("axis" in d.message for d in hits)
