"""Seeded-violation fixtures asserting exact domain rule ids (RW/RC/RP/RS)."""

from __future__ import annotations

import pytest

from repro.core.module import DataDependency, Module
from repro.core.problem import MedCCProblem, TransferModel
from repro.core.schedule import Schedule
from repro.core.vm import VMType, VMTypeCatalog
from repro.core.workflow import Workflow
from repro.lint import (
    Severity,
    lint_catalog,
    lint_problem,
    lint_schedule,
    lint_workflow,
)
from repro.lint.domain import ScheduleFacts
from repro.lint.registry import get_rule, run_rule


def wf_payload(modules, edges):
    """Shorthand for a Workflow.to_dict()-shaped payload."""
    return {
        "name": "fixture",
        "modules": [
            {"name": n, "workload": w, "fixed_time": ft} for n, w, ft in modules
        ],
        "edges": [{"src": s, "dst": d, "data_size": ds} for s, d, ds in edges],
    }


class TestWorkflowRules:
    def test_rw101_cycle(self):
        payload = wf_payload(
            [("a", 1.0, None), ("b", 1.0, None)],
            [("a", "b", 0.0), ("b", "a", 0.0)],
        )
        report = lint_workflow(payload)
        assert "RW101" in report.rule_ids()
        assert not report.ok

    def test_rw102_multiple_entries(self):
        payload = wf_payload(
            [("a", 1.0, None), ("b", 1.0, None), ("c", 1.0, None)],
            [("a", "c", 0.0), ("b", "c", 0.0)],
        )
        assert "RW102" in lint_workflow(payload).rule_ids()

    def test_rw103_multiple_exits(self):
        payload = wf_payload(
            [("a", 1.0, None), ("b", 1.0, None), ("c", 1.0, None)],
            [("a", "b", 0.0), ("a", "c", 0.0)],
        )
        assert "RW103" in lint_workflow(payload).rule_ids()

    def test_rw104_disconnected(self):
        payload = wf_payload(
            [("a", 1.0, None), ("b", 1.0, None), ("c", 1.0, None), ("d", 1.0, None)],
            [("a", "b", 0.0), ("c", "d", 0.0)],
        )
        assert "RW104" in lint_workflow(payload).rule_ids()

    def test_rw105_unknown_endpoint(self):
        payload = wf_payload(
            [("a", 1.0, None), ("b", 1.0, None)],
            [("a", "b", 0.0), ("a", "ghost", 0.0)],
        )
        report = lint_workflow(payload)
        assert "RW105" in report.rule_ids()
        assert any("ghost" in d.path for d in report)

    def test_rw106_duplicates(self):
        payload = wf_payload(
            [("a", 1.0, None), ("a", 2.0, None), ("b", 1.0, None)],
            [("a", "b", 0.0), ("a", "b", 0.0)],
        )
        report = lint_workflow(payload)
        ids = report.rule_ids()
        assert "RW106" in ids
        messages = [d.message for d in report if d.rule == "RW106"]
        assert any("module name" in m for m in messages)
        assert any("edge" in m for m in messages)

    def test_rw107_bad_magnitudes(self):
        payload = wf_payload(
            [("a", -3.0, None), ("b", 1.0, None), ("c", 1.0, -2.0)],
            [("a", "b", -1.0), ("b", "c", 0.0)],
        )
        report = lint_workflow(payload)
        hits = [d for d in report if d.rule == "RW107"]
        assert len(hits) == 3  # bad workload, bad fixed_time, bad data size

    def test_rw108_zero_workload_warning(self):
        payload = wf_payload(
            [("a", 0.0, None), ("b", 1.0, None)],
            [("a", "b", 0.0)],
        )
        report = lint_workflow(payload)
        hits = [d for d in report if d.rule == "RW108"]
        assert len(hits) == 1
        assert hits[0].severity is Severity.WARNING
        assert report.ok  # warnings do not fail the lint

    def test_clean_workflow_object(self, diamond_problem):
        report = lint_workflow(diamond_problem.workflow)
        assert report.ok
        assert "RW101" not in report.rule_ids()


class TestCatalogRules:
    def test_rc201_empty(self):
        report = lint_catalog([])
        assert "RC201" in report.rule_ids()

    def test_rc202_duplicate_names(self):
        report = lint_catalog(
            [
                {"name": "VT1", "power": 1.0, "rate": 1.0},
                {"name": "VT1", "power": 2.0, "rate": 2.0},
            ]
        )
        assert "RC202" in report.rule_ids()

    def test_rc203_bad_magnitudes(self):
        report = lint_catalog(
            [
                {"name": "VT1", "power": 0.0, "rate": 1.0},
                {"name": "VT2", "power": 2.0, "rate": -1.0},
            ]
        )
        hits = [d for d in report if d.rule == "RC203"]
        assert len(hits) == 2

    def test_rc204_duplicate_pricing_point(self):
        report = lint_catalog(
            [
                {"name": "VT1", "power": 2.0, "rate": 3.0},
                {"name": "VT2", "power": 2.0, "rate": 3.0},
            ]
        )
        hits = [d for d in report if d.rule == "RC204"]
        assert len(hits) == 1
        assert hits[0].severity is Severity.WARNING

    def test_rc205_dominated_type(self):
        report = lint_catalog(
            [
                {"name": "slow-expensive", "power": 1.0, "rate": 5.0},
                {"name": "fast-cheap", "power": 4.0, "rate": 2.0},
            ]
        )
        hits = [d for d in report if d.rule == "RC205"]
        assert len(hits) == 1
        assert "slow-expensive" in hits[0].path

    def test_pareto_catalog_clean(self, tiny_catalog):
        report = lint_catalog(tiny_catalog)
        assert not [d for d in report if d.rule in ("RC204", "RC205")]


class TestProblemRules:
    def test_rp301_infeasible_budget(self, diamond_problem):
        report = lint_problem(diamond_problem, budget=diamond_problem.cmin / 2)
        hits = [d for d in report if d.rule == "RP301"]
        assert len(hits) == 1
        assert not report.ok

    def test_rp302_excess_budget(self, diamond_problem):
        report = lint_problem(diamond_problem, budget=diamond_problem.cmax * 10)
        assert "RP302" in report.rule_ids()
        assert report.ok  # info severity only

    def test_rp303_degenerate_range(self):
        workflow = Workflow(
            [Module("a", workload=4.0), Module("b", workload=2.0)],
            [DataDependency("a", "b")],
        )
        catalog = VMTypeCatalog([VMType(name="only", power=1.0, rate=1.0)])
        report = lint_problem(MedCCProblem(workflow=workflow, catalog=catalog))
        assert "RP303" in report.rule_ids()

    def test_rp304_inert_transfer_pricing(self):
        workflow = Workflow(
            [Module("a", workload=4.0), Module("b", workload=2.0)],
            [DataDependency("a", "b", data_size=0.0)],
        )
        catalog = VMTypeCatalog(
            [
                VMType(name="S", power=1.0, rate=1.0),
                VMType(name="L", power=2.0, rate=3.0),
            ]
        )
        problem = MedCCProblem(
            workflow=workflow,
            catalog=catalog,
            transfers=TransferModel(unit_cost=0.5),
        )
        assert "RP304" in lint_problem(problem).rule_ids()

    def test_feasible_budget_clean(self, diamond_problem):
        budget = diamond_problem.median_budget()
        report = lint_problem(diamond_problem, budget=budget)
        assert report.ok
        assert "RP301" not in report.rule_ids()

    def test_payload_with_broken_workflow_still_lints(self):
        payload = {
            "format_version": 1,
            "workflow": wf_payload(
                [("a", 1.0, None), ("b", 1.0, None)],
                [("a", "b", 0.0), ("b", "a", 0.0)],
            ),
            "catalog": [{"name": "VT1", "power": 1.0, "rate": 1.0}],
        }
        report = lint_problem(payload)
        assert "RW101" in report.rule_ids()


class TestScheduleRules:
    def test_rs401_coverage(self, diamond_problem):
        schedule = Schedule({"a": 0, "b": 0})  # misses c, d
        report = lint_schedule(diamond_problem, schedule)
        hits = [d for d in report if d.rule == "RS401"]
        assert {d.path for d in hits} == {"schedule[c]", "schedule[d]"}

    def test_rs401_extra_module(self, diamond_problem):
        schedule = Schedule({"a": 0, "b": 0, "c": 0, "d": 0, "ghost": 0})
        report = lint_schedule(diamond_problem, schedule)
        assert any(
            d.rule == "RS401" and "ghost" in d.path for d in report
        )

    def test_rs402_type_out_of_range(self, diamond_problem):
        schedule = Schedule({"a": 0, "b": 99, "c": 0, "d": 0})
        report = lint_schedule(diamond_problem, schedule)
        assert any(d.rule == "RS402" and "b" in d.path for d in report)

    def test_rs403_over_budget(self, diamond_problem):
        fastest = diamond_problem.fastest_schedule()
        report = lint_schedule(
            diamond_problem, fastest, budget=diamond_problem.cmin
        )
        assert "RS403" in report.rule_ids()

    def test_rs406_claimed_cost_mismatch(self, diamond_problem):
        schedule = diamond_problem.least_cost_schedule()
        report = lint_schedule(
            diamond_problem,
            schedule,
            claimed_cost=diamond_problem.cost_of(schedule) + 5.0,
        )
        assert "RS406" in report.rule_ids()

    def test_deep_lint_clean_on_valid_schedule(self, diamond_problem):
        schedule = diamond_problem.least_cost_schedule()
        report = lint_schedule(
            diamond_problem,
            schedule,
            budget=diamond_problem.cmax,
            claimed_cost=diamond_problem.cost_of(schedule),
            deep=True,
        )
        assert report.ok
        assert len(report) == 0

    def test_rs404_precedence_violation_detected(self, diamond_problem):
        """RS404 fires on a fabricated trace where d starts before b ends."""

        class FakeTask:
            def __init__(self, module, start, finish):
                self.module = module
                self.start = start
                self.finish = finish

        class FakeTrace:
            tasks = [
                FakeTask("a", 0.0, 1.0),
                FakeTask("b", 1.0, 5.0),
                FakeTask("c", 1.0, 2.0),
                FakeTask("d", 3.0, 4.0),  # starts before b finishes
            ]

        class FakeSim:
            trace = FakeTrace()
            makespan = 4.0
            analytical_makespan = 4.0

        facts = ScheduleFacts(
            problem=diamond_problem,
            schedule=diamond_problem.least_cost_schedule(),
            sim=FakeSim(),
        )
        findings = run_rule(get_rule("RS404"), facts)
        assert findings and findings[0].rule == "RS404"
        assert "d" in findings[0].path

    def test_rs405_makespan_drift_detected(self, diamond_problem):
        class FakeSim:
            class trace:
                tasks = []

            makespan = 10.0
            analytical_makespan = 7.0

        facts = ScheduleFacts(
            problem=diamond_problem,
            schedule=diamond_problem.least_cost_schedule(),
            sim=FakeSim(),
        )
        findings = run_rule(get_rule("RS405"), facts)
        assert findings and findings[0].rule == "RS405"

    def test_rs405_skipped_with_startup_latency(self, diamond_problem):
        """RS405 is gated off when the model assumptions don't hold."""
        catalog = VMTypeCatalog(
            [VMType(name="S", power=1.0, rate=1.0, startup_time=2.0)]
        )
        problem = MedCCProblem(
            workflow=diamond_problem.workflow, catalog=catalog
        )

        class FakeSim:
            class trace:
                tasks = []

            makespan = 99.0
            analytical_makespan = 1.0

        facts = ScheduleFacts(
            problem=problem,
            schedule=Schedule({n: 0 for n in problem.workflow.schedulable_names}),
            sim=FakeSim(),
        )
        assert run_rule(get_rule("RS405"), facts) == []


class TestReportRendering:
    def test_text_render_mentions_rule_and_counts(self, diamond_problem):
        report = lint_problem(diamond_problem, budget=diamond_problem.cmin / 2)
        text = report.render()
        assert "RP301" in text and "error" in text

    def test_json_render_roundtrips(self, diamond_problem):
        import json

        report = lint_problem(diamond_problem, budget=diamond_problem.cmin / 2)
        payload = json.loads(report.render("json"))
        assert payload["summary"]["error"] == 1
        assert payload["diagnostics"][0]["rule"] == "RP301"

    def test_exit_codes(self, diamond_problem):
        clean = lint_problem(diamond_problem)
        dirty = lint_problem(diamond_problem, budget=0.0)
        assert clean.exit_code() == 0
        assert dirty.exit_code() == 1


def test_every_domain_rule_is_documented():
    """All registered domain rules carry a summary and a rationale."""
    from repro.lint import domain_rules

    rules = domain_rules()
    assert {r.id for r in rules} >= {
        "RW101", "RW102", "RW103", "RW104", "RW105", "RW106", "RW107", "RW108",
        "RC201", "RC202", "RC203", "RC204", "RC205",
        "RP301", "RP302", "RP303", "RP304",
        "RS401", "RS402", "RS403", "RS404", "RS405", "RS406",
    }
    for rule in rules:
        assert rule.summary and rule.rationale


@pytest.mark.parametrize("workload", ["example", "wrf"])
def test_builtin_workloads_are_lint_clean(workload):
    from repro.workloads import example_problem, wrf_problem

    problem = example_problem() if workload == "example" else wrf_problem()
    report = lint_problem(problem)
    assert report.ok, report.render()
