"""Runner edge cases: unreadable sources, cache behavior, RL meta rules,
baseline CLI plumbing, RA905 escalation and ``--strict``."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.exceptions import LintError
from repro.lint import lint_source_tree
from repro.lint.runner import main as lint_main

CLEAN = """\
__all__ = ["answer"]


def answer():
    return 42
"""


def write_tree(tmp_path, files):
    for relpath, content in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        if isinstance(content, bytes):
            target.write_bytes(content)
        else:
            target.write_text(textwrap.dedent(content))
    return tmp_path


# --------------------------------------------------------------------- #
# Files lint cannot vouch for → RL003, never a crash
# --------------------------------------------------------------------- #


class TestUnanalyzableFiles:
    def test_syntax_error_is_a_diagnostic(self, tmp_path):
        write_tree(tmp_path, {"ok.py": CLEAN, "broken.py": "def nope(:\n"})
        report = lint_source_tree([tmp_path])
        hits = [d for d in report if d.rule == "RL003"]
        assert len(hits) == 1
        assert hits[0].path.startswith("broken.py")
        assert "syntax error" in hits[0].message
        assert report.exit_code() == 1  # RL003 is an error

    def test_non_utf8_is_a_diagnostic(self, tmp_path):
        write_tree(tmp_path, {"latin.py": b"x = '\xe9'\n"})
        report = lint_source_tree([tmp_path])
        hits = [d for d in report if d.rule == "RL003"]
        assert len(hits) == 1
        assert "UTF-8" in hits[0].message

    def test_empty_file_is_fine(self, tmp_path):
        write_tree(tmp_path, {"empty.py": ""})
        report = lint_source_tree([tmp_path])
        assert "RL003" not in report.rule_ids()

    def test_broken_file_does_not_mask_the_rest(self, tmp_path):
        # the readable neighbour is still fully linted
        write_tree(
            tmp_path,
            {
                "broken.py": "def nope(:\n",
                "mod.py": "def visible():\n    return 1\n",  # no __all__
            },
        )
        report = lint_source_tree([tmp_path])
        assert {"RL003", "RA905"} <= report.rule_ids()

    def test_exit_code_is_deterministic(self, tmp_path):
        write_tree(tmp_path, {"broken.py": "def nope(:\n"})
        codes = {lint_source_tree([tmp_path]).exit_code() for _ in range(3)}
        assert codes == {1}

    def test_deep_run_survives_broken_files(self, tmp_path):
        write_tree(
            tmp_path,
            {"broken.py": "def nope(:\n", "service/ok.py": CLEAN},
        )
        report = lint_source_tree([tmp_path], deep=True)
        assert "RL003" in report.rule_ids()


# --------------------------------------------------------------------- #
# Incremental cache
# --------------------------------------------------------------------- #


class TestCache:
    def test_warm_run_reproduces_diagnostics(self, tmp_path):
        tree = write_tree(
            tmp_path / "tree", {"service/mod.py": "def visible():\n    return 1\n"}
        )
        cache = tmp_path / "cache.json"
        cold = lint_source_tree([tree], deep=True, cache_path=cache)
        assert cache.exists()
        warm = lint_source_tree([tree], deep=True, cache_path=cache)
        assert [d.to_dict() for d in cold] == [d.to_dict() for d in warm]

    def test_edited_file_invalidates_its_entry(self, tmp_path):
        tree = write_tree(tmp_path / "tree", {"mod.py": CLEAN})
        cache = tmp_path / "cache.json"
        assert lint_source_tree([tree], cache_path=cache).rule_ids() == set()
        (tree / "mod.py").write_text("def visible():\n    return 1\n")
        report = lint_source_tree([tree], cache_path=cache)
        assert "RA905" in report.rule_ids()

    def test_corrupt_cache_is_ignored(self, tmp_path):
        tree = write_tree(tmp_path / "tree", {"mod.py": CLEAN})
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        report = lint_source_tree([tree], cache_path=cache)
        assert report.exit_code() == 0
        assert json.loads(cache.read_text())["files"]  # rewritten, valid


# --------------------------------------------------------------------- #
# RL001 — pragma that never fires (deep runs only)
# --------------------------------------------------------------------- #


class TestUnusedSuppressions:
    def test_stale_pragma_reported_on_deep_runs(self, tmp_path):
        tree = write_tree(
            tmp_path,
            {
                "mod.py": """\
                __all__ = ["answer"]


                def answer():
                    return 42  # lint: ignore[RA901]
                """
            },
        )
        report = lint_source_tree([tree], deep=True)
        hits = [d for d in report if d.rule == "RL001"]
        assert len(hits) == 1
        assert "RA901" in hits[0].message

    def test_shallow_runs_stay_quiet(self, tmp_path):
        # flow-rule pragmas cannot be validated without the deep pass
        tree = write_tree(
            tmp_path,
            {
                "mod.py": """\
                __all__ = ["answer"]


                def answer():
                    return 42  # lint: ignore[RA901]
                """
            },
        )
        assert "RL001" not in lint_source_tree([tree]).rule_ids()

    def test_used_pragma_is_not_stale(self, tmp_path):
        tree = write_tree(
            tmp_path,
            {
                "mod.py": """\
                __all__ = ["same"]


                def same(total_cost, budget):
                    return total_cost == budget  # lint: ignore[RA901]
                """
            },
        )
        report = lint_source_tree([tree], deep=True)
        assert "RA901" not in report.rule_ids()
        assert "RL001" not in report.rule_ids()


# --------------------------------------------------------------------- #
# Baseline plumbing (RL002, --update-baseline, missing file)
# --------------------------------------------------------------------- #


class TestBaselinePlumbing:
    def test_update_then_apply_is_clean(self, tmp_path):
        tree = write_tree(
            tmp_path / "tree", {"mod.py": "def visible():\n    return 1\n"}
        )
        baseline = tmp_path / "baseline.json"
        first = lint_source_tree(
            [tree], baseline_path=baseline, update_baseline=True
        )
        assert len(first) == 0  # the fresh baseline absorbs its own findings
        entries = json.loads(baseline.read_text())["entries"]
        assert [e["rule"] for e in entries] == ["RA905"]
        second = lint_source_tree([tree], baseline_path=baseline)
        assert len(second) == 0
        assert second.exit_code() == 0

    def test_stale_entry_becomes_rl002(self, tmp_path):
        tree = write_tree(
            tmp_path / "tree", {"mod.py": "def visible():\n    return 1\n"}
        )
        baseline = tmp_path / "baseline.json"
        lint_source_tree([tree], baseline_path=baseline, update_baseline=True)
        (tree / "mod.py").write_text(CLEAN)  # the finding is fixed
        report = lint_source_tree([tree], baseline_path=baseline)
        hits = [d for d in report if d.rule == "RL002"]
        assert len(hits) == 1
        assert "RA905" in hits[0].message

    def test_missing_baseline_is_an_explicit_error(self, tmp_path):
        tree = write_tree(tmp_path / "tree", {"mod.py": CLEAN})
        with pytest.raises(LintError, match="--update-baseline"):
            lint_source_tree([tree], baseline_path=tmp_path / "nope.json")


# --------------------------------------------------------------------- #
# RA905 escalation + --strict (CLI level)
# --------------------------------------------------------------------- #


class TestSeverityAndStrict:
    def test_ra905_is_an_error_in_core_and_service(self, tmp_path):
        source = "def visible():\n    return 1\n"
        tree = write_tree(
            tmp_path,
            {"core/mod.py": source, "service/mod.py": source, "misc/mod.py": source},
        )
        report = lint_source_tree([tree])
        severities = {
            d.path.split(":")[0]: str(d.severity)
            for d in report
            if d.rule == "RA905"
        }
        assert severities["core/mod.py"] == "error"
        assert severities["service/mod.py"] == "error"
        assert severities["misc/mod.py"] == "warning"
        assert report.exit_code() == 1

    def test_cli_warning_only_exit_flips_under_strict(self, tmp_path):
        write_tree(tmp_path, {"mod.py": "def visible():\n    return 1\n"})
        assert lint_main([str(tmp_path)]) == 0
        assert lint_main([str(tmp_path), "--strict"]) == 1

    def test_cli_rejects_baseline_without_source_target(self):
        assert lint_main(["--workload", "example", "--baseline", "x.json"]) == 2

    def test_cli_rejects_update_without_baseline(self, tmp_path):
        assert lint_main([str(tmp_path), "--update-baseline"]) == 2

    def test_cli_sarif_output_for_a_tree(self, tmp_path, capsys):
        write_tree(tmp_path, {"mod.py": CLEAN})
        assert lint_main([str(tmp_path), "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
