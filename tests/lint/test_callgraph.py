"""Unit tests for the whole-program symbol table / call graph (pass 1)."""

from __future__ import annotations

import textwrap

from repro.lint import build_index
from repro.lint.astrules import SourceModule
from repro.lint.callgraph import module_key


def index_tree(tmp_path, files):
    """Write ``{relpath: source}`` under tmp_path and build the index."""
    modules = []
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
        modules.append(SourceModule.parse(target, root=tmp_path))
    return build_index(modules)


class TestModuleKey:
    def test_plain_file(self):
        assert module_key("service/cache.py") == "service.cache"

    def test_package_init_collapses(self):
        assert module_key("service/__init__.py") == "service"

    def test_root_init_is_empty(self):
        assert module_key("__init__.py") == ""


class TestDefinitions:
    def test_functions_classes_and_methods_are_indexed(self, tmp_path):
        index = index_tree(
            tmp_path,
            {
                "pkg/mod.py": """\
                def helper():
                    return 1

                class Widget:
                    def spin(self):
                        return helper()
                """
            },
        )
        fn = index.function_in_module("pkg.mod", "helper")
        assert fn is not None and fn.display == "helper"
        cls = index.class_in_module("pkg.mod", "Widget")
        assert cls is not None and "spin" in cls.methods
        assert cls.methods["spin"].display == "Widget.spin"

    def test_method_of_follows_project_bases(self, tmp_path):
        index = index_tree(
            tmp_path,
            {
                "base.py": """\
                class Base:
                    def shared(self):
                        return 0
                """,
                "child.py": """\
                from base import Base

                class Child(Base):
                    pass
                """,
            },
        )
        child = index.class_in_module("child", "Child")
        found = index.method_of(child, "shared")
        assert found is not None and found.qualname == "base::Base.shared"


class TestCallEdges:
    def test_bare_name_and_self_method_calls(self, tmp_path):
        index = index_tree(
            tmp_path,
            {
                "mod.py": """\
                def leaf():
                    return 1

                class Svc:
                    def outer(self):
                        return self.inner()

                    def inner(self):
                        return leaf()
                """
            },
        )
        assert index.callees("mod::Svc.outer") == ("mod::Svc.inner",)
        assert index.callees("mod::Svc.inner") == ("mod::leaf",)

    def test_module_alias_and_symbol_import_calls(self, tmp_path):
        index = index_tree(
            tmp_path,
            {
                "util.py": """\
                def work():
                    return 1
                """,
                "caller.py": """\
                import util as u
                from util import work

                def via_alias():
                    return u.work()

                def via_symbol():
                    return work()
                """,
            },
        )
        assert index.callees("caller::via_alias") == ("util::work",)
        assert index.callees("caller::via_symbol") == ("util::work",)

    def test_constructor_then_attribute_call(self, tmp_path):
        # ``self.codec = Codec()`` in __init__ types the attribute, so
        # ``self.codec.encode()`` resolves to Codec.encode.
        index = index_tree(
            tmp_path,
            {
                "codec.py": """\
                class Codec:
                    def encode(self):
                        return b""
                """,
                "app.py": """\
                from codec import Codec

                class App:
                    def __init__(self):
                        self.codec = Codec()

                    def handle(self):
                        return self.codec.encode()
                """,
            },
        )
        assert "codec::Codec.__init__" not in index.callees("app::App.handle")
        assert index.callees("app::App.handle") == ("codec::Codec.encode",)

    def test_relative_import_resolution(self, tmp_path):
        index = index_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": """\
                def shout():
                    return "a"
                """,
                "pkg/b.py": """\
                from .a import shout

                def echo():
                    return shout()
                """,
            },
        )
        assert index.callees("pkg.b::echo") == ("pkg.a::shout",)

    def test_package_prefixed_absolute_import(self, tmp_path):
        # Lint roots are package dirs, so keys lack the package's own
        # name; resolve_module strips leading components until it hits.
        index = index_tree(
            tmp_path,
            {
                "service/codec.py": """\
                def dumps():
                    return "{}"
                """,
                "service/app.py": """\
                from repro.service.codec import dumps

                def render():
                    return dumps()
                """,
            },
        )
        assert index.callees("service.app::render") == ("service.codec::dumps",)


class TestReachability:
    def test_reachable_depths_and_chain(self, tmp_path):
        index = index_tree(
            tmp_path,
            {
                "mod.py": """\
                def a():
                    return b()

                def b():
                    return c()

                def c():
                    return 1
                """
            },
        )
        reach = index.reachable(["mod::a"])
        assert reach["mod::a"] == (0, None)
        assert reach["mod::b"] == (1, "mod::a")
        assert reach["mod::c"] == (2, "mod::b")
        assert index.call_chain("mod::c", reach) == [
            "mod::a",
            "mod::b",
            "mod::c",
        ]

    def test_max_depth_truncates(self, tmp_path):
        index = index_tree(
            tmp_path,
            {
                "mod.py": """\
                def a():
                    return b()

                def b():
                    return c()

                def c():
                    return 1
                """
            },
        )
        reach = index.reachable(["mod::a"], max_depth=1)
        assert "mod::b" in reach
        assert "mod::c" not in reach

    def test_cycles_terminate(self, tmp_path):
        index = index_tree(
            tmp_path,
            {
                "mod.py": """\
                def ping():
                    return pong()

                def pong():
                    return ping()
                """
            },
        )
        reach = index.reachable(["mod::ping"])
        assert set(reach) == {"mod::ping", "mod::pong"}
