"""Seeded-violation source fixtures asserting exact AST rule ids (RA9xx)."""

from __future__ import annotations

import textwrap

from repro.lint import lint_paths, self_lint


def lint_source(tmp_path, source, filename="mod.py"):
    """Write a snippet under tmp_path and AST-lint the directory."""
    target = tmp_path / filename
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return lint_paths([tmp_path])


class TestRA901FloatEquality:
    def test_flags_cost_equality(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def check(total_cost, budget):
                return total_cost == budget
            """,
        )
        hits = [d for d in report if d.rule == "RA901"]
        assert len(hits) == 1
        assert "total_cost" in hits[0].message or "budget" in hits[0].message

    def test_flags_attribute_makespan(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def drifted(sim, result):
                return sim.makespan != result.makespan
            """,
        )
        assert [d.rule for d in report] == ["RA901"]

    def test_zero_sentinel_is_exempt(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def is_free(unit_cost):
                return unit_cost == 0.0
            """,
        )
        assert "RA901" not in report.rule_ids()

    def test_non_money_names_are_exempt(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def same(name, other):
                return name == other
            """,
        )
        assert "RA901" not in report.rule_ids()

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def check(total_cost, budget):
                return total_cost == budget  # lint: ignore[RA901]
            """,
        )
        assert "RA901" not in report.rule_ids()

    def test_flags_reduction_of_money_grid(self, tmp_path):
        # The batched 2-D grids: folding whole budget rows into the
        # compared value is still float equality on billed quantities.
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def drifted(costs, best):
                return costs.max(axis=1) == best
            """,
        )
        hits = [d for d in report if d.rule == "RA901"]
        assert len(hits) == 1
        assert "costs" in hits[0].message

    def test_flags_np_reduction_of_money_array(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            import numpy as np

            def drifted(budgets, target):
                return np.min(budgets, axis=0) != target
            """,
        )
        hits = [d for d in report if d.rule == "RA901"]
        assert len(hits) == 1
        assert "budgets" in hits[0].message

    def test_reduction_of_non_money_array_is_exempt(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def same(ready, best):
                return ready.max(axis=1) == best
            """,
        )
        assert "RA901" not in report.rule_ids()


class TestRA902Rounding:
    def test_flags_round_on_billing_name(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def bill(total_cost):
                return round(total_cost)
            """,
        )
        assert "RA902" in report.rule_ids()

    def test_flags_math_floor_on_charge(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            import math

            __all__ = []

            def truncate(charge):
                return math.floor(charge)
            """,
        )
        assert "RA902" in report.rule_ids()

    def test_flags_any_rounding_inside_core(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def snap(x):
                return round(x)
            """,
            filename="core/util.py",
        )
        assert "RA902" in report.rule_ids()

    def test_core_billing_module_is_the_authority(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            import math

            __all__ = []

            def billed_units(duration):
                return math.floor(duration) + 1
            """,
            filename="core/billing.py",
        )
        assert "RA902" not in report.rule_ids()

    def test_plain_round_outside_core_ok(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def snap(x):
                return round(x, 6)
            """,
        )
        assert "RA902" not in report.rule_ids()


class TestRA903BuiltinRaise:
    def test_flags_valueerror(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def f(x):
                if x < 0:
                    raise ValueError("negative")
            """,
        )
        assert "RA903" in report.rule_ids()

    def test_flags_bare_exception_and_runtimeerror(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def f(x):
                if x:
                    raise RuntimeError("boom")
                raise Exception
            """,
        )
        hits = [d for d in report if d.rule == "RA903"]
        assert len(hits) == 2

    def test_repro_errors_are_fine(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            from repro.exceptions import CatalogError

            __all__ = []

            def f():
                raise CatalogError("bad catalog")
            """,
        )
        assert "RA903" not in report.rule_ids()

    def test_exceptions_module_is_exempt(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def f():
                raise ValueError("allowed here")
            """,
            filename="exceptions.py",
        )
        assert "RA903" not in report.rule_ids()

    def test_reraise_without_exc_ok(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def f():
                try:
                    pass
                except KeyError:
                    raise
            """,
        )
        assert "RA903" not in report.rule_ids()


class TestRA904MutableDefaults:
    def test_flags_list_default(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def f(items=[]):
                return items
            """,
        )
        assert "RA904" in report.rule_ids()

    def test_flags_dict_call_default_kwonly(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def f(*, cache=dict()):
                return cache
            """,
        )
        assert "RA904" in report.rule_ids()

    def test_none_default_ok(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def f(items=None, scale=1.0):
                return items, scale
            """,
        )
        assert "RA904" not in report.rule_ids()


class TestRA905MissingAll:
    def test_flags_public_module_without_all(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            def helper():
                return 1
            """,
        )
        hits = [d for d in report if d.rule == "RA905"]
        assert len(hits) == 1

    def test_private_and_main_modules_exempt(self, tmp_path):
        (tmp_path / "_private.py").write_text("x = 1\n")
        (tmp_path / "__main__.py").write_text("x = 1\n")
        report = lint_paths([tmp_path])
        assert "RA905" not in report.rule_ids()

    def test_init_requires_all(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("x = 1\n")
        report = lint_paths([tmp_path])
        assert "RA905" in report.rule_ids()


class TestSuppression:
    def test_bare_pragma_suppresses_everything(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def f():
                raise ValueError("x")  # lint: ignore
            """,
        )
        assert len(report) == 0

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def f():
                raise ValueError("x")  # lint: ignore[RA901]
            """,
        )
        assert "RA903" in report.rule_ids()


def test_every_ast_rule_is_documented():
    from repro.lint import ast_rules

    rules = ast_rules()
    assert {r.id for r in rules} == {
        "RA901",
        "RA902",
        "RA903",
        "RA904",
        "RA905",
        "RS602",
    }
    for rule in rules:
        assert rule.summary and rule.rationale


def test_repro_codebase_is_self_lint_clean():
    """The acceptance criterion: the shipped package has zero findings."""
    report = self_lint()
    assert len(report) == 0, report.render()


class TestRS602SwallowedException:
    """Service-scope rule: broad handlers must re-raise or record."""

    SWALLOW = """\
        __all__ = []

        def handle(job):
            try:
                return job.run()
            except Exception:
                return None
        """

    def test_flags_swallow_in_service_package(self, tmp_path):
        report = lint_source(tmp_path, self.SWALLOW, filename="service/mod.py")
        hits = [d for d in report if d.rule == "RS602"]
        assert len(hits) == 1

    def test_flags_bare_except(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def handle(job):
                try:
                    return job.run()
                except:  # noqa: E722
                    return None
            """,
            filename="service/mod.py",
        )
        assert "RS602" in report.rule_ids()

    def test_flags_baseexception_in_tuple_clause(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def handle(job):
                try:
                    return job.run()
                except (KeyError, BaseException):
                    return None
            """,
            filename="service/mod.py",
        )
        assert "RS602" in report.rule_ids()

    def test_reraise_complies(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def handle(job):
                try:
                    return job.run()
                except Exception:
                    cleanup()
                    raise
            """,
            filename="service/mod.py",
        )
        assert "RS602" not in report.rule_ids()

    def test_recording_through_error_payload_complies(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def handle(service, job):
                try:
                    return job.run()
                except Exception as exc:
                    return service.error_payload(exc)
            """,
            filename="service/mod.py",
        )
        assert "RS602" not in report.rule_ids()

    def test_recording_through_breaker_complies(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def handle(breaker, job):
                try:
                    return job.run()
                except Exception:
                    breaker.record_failure()
                    return None
            """,
            filename="service/mod.py",
        )
        assert "RS602" not in report.rule_ids()

    def test_narrow_handler_is_fine(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def handle(job):
                try:
                    return job.run()
                except KeyError:
                    return None
            """,
            filename="service/mod.py",
        )
        assert "RS602" not in report.rule_ids()

    def test_outside_service_package_exempt(self, tmp_path):
        report = lint_source(tmp_path, self.SWALLOW, filename="core/mod.py")
        assert "RS602" not in report.rule_ids()

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def handle(job):
                try:
                    return job.run()
                except Exception:  # lint: ignore[RS602]
                    return None
            """,
            filename="service/mod.py",
        )
        assert "RS602" not in report.rule_ids()


class TestRA902Ceil:
    """RA902 also owns ceil: array billing must stay in core/billing.py."""

    def test_flags_math_ceil_on_billed_name(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            import math

            __all__ = []

            def round_up(billed_units):
                return math.ceil(billed_units)
            """,
        )
        assert "RA902" in report.rule_ids()

    def test_flags_np_ceil_on_cost(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            import numpy as np

            __all__ = []

            def round_costs(cost_matrix):
                return np.ceil(cost_matrix)
            """,
        )
        assert "RA902" in report.rule_ids()

    def test_flags_bare_ceil_inside_core(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            __all__ = []

            def snap(x):
                return ceil(x)
            """,
            filename="core/util.py",
        )
        assert "RA902" in report.rule_ids()

    def test_billing_module_may_ceil(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            import numpy as np

            __all__ = []

            def billed_units_array(durations):
                return np.ceil(durations)
            """,
            filename="core/billing.py",
        )
        assert "RA902" not in report.rule_ids()

    def test_plain_ceil_outside_core_on_neutral_name_ok(self, tmp_path):
        report = lint_source(
            tmp_path,
            """\
            import math

            __all__ = []

            def buckets(count):
                return math.ceil(count / 10)
            """,
        )
        assert "RA902" not in report.rule_ids()
