"""CLI wiring (`repro lint`, `python -m repro.lint`) and the base.py hook."""

from __future__ import annotations

import json

import pytest

from repro.algorithms.base import (
    SchedulerResult,
    _REGISTRY,
    get_scheduler,
    register_scheduler,
    result_validation_enabled,
    set_result_validation,
)
from repro.cli import main as cli_main
from repro.exceptions import LintError
from repro.lint.runner import main as lint_main


class TestLintCLI:
    def test_workload_example_exits_zero(self, capsys):
        assert cli_main(["lint", "--workload", "example"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_self_json_exits_zero(self, capsys):
        assert cli_main(["lint", "--self", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"] == {"error": 0, "warning": 0, "info": 0}

    def test_module_entry_self(self, capsys):
        assert lint_main(["--self"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_infeasible_budget_exits_one(self, capsys):
        assert cli_main(["lint", "--workload", "example", "--budget", "1"]) == 1
        assert "RP301" in capsys.readouterr().out

    def test_algorithm_schedule_lint(self, capsys):
        code = cli_main(
            [
                "lint",
                "--workload",
                "example",
                "--budget",
                "60",
                "--algorithm",
                "critical-greedy",
                "--deep",
            ]
        )
        assert code == 0

    def test_algorithm_requires_budget(self, capsys):
        assert cli_main(["lint", "--workload", "example", "--algorithm", "heft"]) == 2

    def test_nothing_to_lint_is_usage_error(self, capsys):
        assert cli_main(["lint"]) == 2

    def test_file_target_with_seeded_violation(self, tmp_path, capsys):
        instance = {
            "format_version": 1,
            "workflow": {
                "name": "bad",
                "modules": [
                    {"name": "a", "workload": 1.0, "fixed_time": None},
                    {"name": "b", "workload": 1.0, "fixed_time": None},
                ],
                "edges": [
                    {"src": "a", "dst": "b", "data_size": 0.0},
                    {"src": "b", "dst": "a", "data_size": 0.0},
                ],
            },
            "catalog": [{"name": "VT1", "power": 1.0, "rate": 1.0}],
            "billing": {"kind": "hourly"},
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(instance))
        assert cli_main(["lint", "--file", str(path)]) == 1
        assert "RW101" in capsys.readouterr().out

    def test_paths_target(self, tmp_path, capsys):
        (tmp_path / "snippet.py").write_text("def f(xs=[]):\n    return xs\n")
        assert cli_main(["lint", str(tmp_path)]) == 1
        assert "RA904" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RW101", "RC205", "RP301", "RS403", "RA901"):
            assert rule_id in out


class TestValidationHook:
    @pytest.fixture
    def bogus_scheduler(self):
        """Register a scheduler that blows the budget; clean up afterwards."""
        name = "test-bogus-overspender"

        @register_scheduler(name)
        class OverspendingScheduler:
            def solve(self, problem, budget):
                schedule = problem.fastest_schedule()
                return SchedulerResult(
                    algorithm=name,
                    schedule=schedule,
                    evaluation=problem.evaluate(schedule),
                    budget=budget,
                )

        yield name
        _REGISTRY.pop(name, None)

    def test_hook_raises_on_over_budget_result(self, diamond_problem, bogus_scheduler):
        assert result_validation_enabled()  # enabled suite-wide in conftest
        scheduler = get_scheduler(bogus_scheduler)
        with pytest.raises(LintError) as excinfo:
            scheduler.solve(diamond_problem, diamond_problem.cmin)
        assert any(d.rule == "RS403" for d in excinfo.value.diagnostics)

    def test_hook_is_inert_when_disabled(self, diamond_problem, bogus_scheduler):
        previous = set_result_validation(False)
        try:
            result = get_scheduler(bogus_scheduler).solve(
                diamond_problem, diamond_problem.cmin
            )
            assert result.total_cost > diamond_problem.cmin
        finally:
            set_result_validation(previous)

    def test_hook_passes_valid_results_through(self, diamond_problem):
        result = get_scheduler("critical-greedy").solve(
            diamond_problem, diamond_problem.median_budget()
        )
        assert result.total_cost <= diamond_problem.median_budget() + 1e-9
