"""Baseline round-trip properties (Hypothesis) and SARIF shape checks."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import LintError
from repro.lint import (
    Baseline,
    BaselineEntry,
    Diagnostic,
    LintReport,
    Severity,
    all_rules,
    render_sarif,
    sarif_payload,
)

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #

rule_ids = st.from_regex(r"R[A-Z][0-9]{3}", fullmatch=True)
file_paths = st.from_regex(r"[a-z]{1,8}(/[a-z]{1,8}){0,2}\.py", fullmatch=True)
messages = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1, max_size=60
)
justifications = st.text(max_size=40)


@st.composite
def baselines(draw):
    """A Baseline whose entries have unique (rule, file, message) keys."""
    raw = draw(
        st.lists(
            st.tuples(rule_ids, file_paths, messages),
            min_size=0,
            max_size=8,
            unique=True,
        )
    )
    entries = tuple(
        BaselineEntry(
            rule=rule,
            file=file,
            message=message,
            count=draw(st.integers(min_value=1, max_value=4)),
            justification=draw(justifications),
        )
        for rule, file, message in raw
    )
    return Baseline(entries=entries)


@st.composite
def diagnostic_lists(draw):
    raw = draw(
        st.lists(st.tuples(rule_ids, file_paths, messages), min_size=1, max_size=8)
    )
    return [
        Diagnostic(
            rule=rule,
            severity=Severity.WARNING,
            path=f"{file}:{draw(st.integers(min_value=1, max_value=500))}",
            message=message,
        )
        for rule, file, message in raw
    ]


# --------------------------------------------------------------------- #
# Baseline round-trip + apply semantics
# --------------------------------------------------------------------- #


class TestBaselineRoundTrip:
    @given(baseline=baselines())
    def test_payload_round_trip_is_lossless(self, baseline):
        # through the exact JSON text a --update-baseline run would write
        payload = json.loads(json.dumps(baseline.to_payload()))
        restored = Baseline.from_payload(payload)
        assert restored.by_key() == baseline.by_key()

    @given(baseline=baselines())
    def test_payload_is_deterministically_ordered(self, baseline):
        shuffled = Baseline(entries=tuple(reversed(baseline.entries)))
        assert shuffled.to_payload() == baseline.to_payload()

    @given(diags=diagnostic_lists())
    def test_self_baseline_absorbs_everything(self, diags):
        baseline = Baseline.from_diagnostics(diags)
        kept, suppressed, stale = baseline.apply(diags)
        assert kept == []
        assert suppressed == len(diags)
        assert stale == []

    @given(diags=diagnostic_lists())
    def test_empty_baseline_keeps_everything(self, diags):
        kept, suppressed, stale = Baseline().apply(diags)
        assert kept == diags
        assert suppressed == 0
        assert stale == []

    @given(diags=diagnostic_lists())
    def test_line_moves_do_not_invalidate_entries(self, diags):
        # keys exclude line numbers on purpose: editing unrelated code
        # above a baselined finding must not resurface it.
        baseline = Baseline.from_diagnostics(diags)
        moved = [
            Diagnostic(
                rule=d.rule,
                severity=d.severity,
                path=d.path.rsplit(":", 1)[0] + ":999",
                message=d.message,
            )
            for d in diags
        ]
        kept, suppressed, _ = baseline.apply(moved)
        assert kept == []
        assert suppressed == len(diags)

    def test_save_load_round_trip(self, tmp_path):
        baseline = Baseline(
            entries=(
                BaselineEntry(
                    rule="RT703",
                    file="service/app.py",
                    message="blocking call",
                    count=2,
                    justification="bounded by the per-job timeout",
                ),
            )
        )
        target = tmp_path / "baseline.json"
        baseline.save(target)
        assert Baseline.load(target).by_key() == baseline.by_key()

    def test_counts_bound_absorption(self):
        diag = Diagnostic(
            rule="RT703",
            severity=Severity.WARNING,
            path="service/app.py:10",
            message="blocking call",
        )
        baseline = Baseline.from_diagnostics([diag])
        kept, suppressed, stale = baseline.apply([diag, diag])
        assert suppressed == 1
        assert [d.rule for d in kept] == ["RT703"]
        assert stale == []

    def test_unmatched_entries_are_stale(self):
        baseline = Baseline(
            entries=(
                BaselineEntry(
                    rule="RT703", file="gone.py", message="blocking call"
                ),
            )
        )
        kept, suppressed, stale = baseline.apply([])
        assert (kept, suppressed) == ([], 0)
        assert [entry.file for entry in stale] == ["gone.py"]

    def test_bad_version_is_rejected(self):
        with pytest.raises(LintError):
            Baseline.from_payload({"version": 99, "entries": []})

    def test_bad_count_is_rejected(self):
        with pytest.raises(LintError):
            Baseline.from_payload(
                {
                    "version": 1,
                    "entries": [
                        {"rule": "RA901", "file": "x.py", "message": "m", "count": 0}
                    ],
                }
            )


# --------------------------------------------------------------------- #
# SARIF shape
# --------------------------------------------------------------------- #


def make_report():
    return LintReport.collect(
        [
            Diagnostic(
                rule="RT701",
                severity=Severity.ERROR,
                path="service/store.py:17",
                message="unguarded access",
                suggestion="hold the lock",
            ),
            Diagnostic(
                rule="RW101",
                severity=Severity.WARNING,
                path="workflow[Montage]",
                message="object-level finding",
            ),
        ],
        target="self",
    )


class TestSarifShape:
    def test_envelope(self):
        payload = sarif_payload(make_report(), all_rules())
        assert payload["version"] == "2.1.0"
        assert payload["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(payload["runs"]) == 1

    def test_driver_carries_the_rule_catalog(self):
        payload = sarif_payload(make_report(), all_rules())
        driver = payload["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        ids = [rule["id"] for rule in driver["rules"]]
        assert len(ids) == len(set(ids))
        assert {"RT701", "RT702", "RT703", "RN801", "RN802", "RN803"} <= set(ids)
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "error",
                "warning",
                "note",
            )

    def test_results_reference_the_catalog(self):
        payload = sarif_payload(make_report(), all_rules())
        run = payload["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        by_rule = {r["ruleId"]: r for r in run["results"]}
        assert by_rule["RT701"]["level"] == "error"
        assert rules[by_rule["RT701"]["ruleIndex"]]["id"] == "RT701"

    def test_file_line_paths_become_physical_locations(self):
        payload = sarif_payload(make_report(), all_rules())
        results = {r["ruleId"]: r for r in payload["runs"][0]["results"]}
        physical = results["RT701"]["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "service/store.py"
        assert physical["region"]["startLine"] == 17

    def test_object_paths_become_logical_locations(self):
        payload = sarif_payload(make_report(), all_rules())
        results = {r["ruleId"]: r for r in payload["runs"][0]["results"]}
        location = results["RW101"]["locations"][0]
        assert "physicalLocation" not in location
        assert (
            location["logicalLocations"][0]["fullyQualifiedName"]
            == "workflow[Montage]"
        )

    def test_suggestion_rides_in_the_message(self):
        payload = sarif_payload(make_report(), all_rules())
        results = {r["ruleId"]: r for r in payload["runs"][0]["results"]}
        assert "(fix: hold the lock)" in results["RT701"]["message"]["text"]

    def test_render_is_valid_json(self):
        text = render_sarif(make_report(), all_rules())
        assert json.loads(text)["version"] == "2.1.0"
