"""Unit tests for RS601: service responses must honour the request budget."""

import json

import pytest

from repro.core.serialize import problem_to_dict
from repro.lint import get_rule, lint_service_response
from repro.service import SchedulingService


@pytest.fixture
def response(example_problem):
    with SchedulingService(max_workers=1, queue_size=4) as svc:
        return svc.solve(
            {"problem": problem_to_dict(example_problem), "budget": 57.0}
        )


class TestRS601:
    def test_registered_with_service_scope(self):
        rule = get_rule("RS601")
        assert rule.scope == "service"
        assert rule.kind == "domain"

    def test_clean_response_passes(self, example_problem, response):
        report = lint_service_response(example_problem, response, budget=57.0)
        assert report.ok, report.render()

    def test_budget_violation_flagged(self, example_problem, response):
        # The cached schedule costs 56; validating against a budget of 10
        # (e.g. a cache replayed for the wrong request) must flag RS601.
        report = lint_service_response(example_problem, response, budget=10.0)
        assert not report.ok
        assert [d.rule for d in report.errors] == ["RS601"]
        assert "exceed" in report.errors[0].message

    def test_budget_defaults_to_response_echo(self, example_problem, response):
        tampered = json.loads(json.dumps(response))
        tampered["budget"] = 10.0
        report = lint_service_response(example_problem, tampered)
        assert not report.ok

    def test_undecodable_schedule_flagged(self, example_problem, response):
        tampered = json.loads(json.dumps(response))
        tampered["result"]["schedule"]["assignment"]["w1"] = "no-such-type"
        report = lint_service_response(example_problem, tampered, budget=57.0)
        assert not report.ok
        assert "decodable" in report.errors[0].message

    def test_missing_schedule_flagged(self, example_problem, response):
        tampered = json.loads(json.dumps(response))
        del tampered["result"]["schedule"]
        report = lint_service_response(example_problem, tampered, budget=57.0)
        assert not report.ok

    def test_error_response_skipped(self, example_problem):
        error = {"status": "error", "error": {"kind": "overloaded"}}
        report = lint_service_response(example_problem, error, budget=57.0)
        assert report.ok

    def test_incomplete_coverage_flagged(self, example_problem, response):
        tampered = json.loads(json.dumps(response))
        assignment = tampered["result"]["schedule"]["assignment"]
        assignment.pop(sorted(assignment)[0])
        report = lint_service_response(example_problem, tampered, budget=57.0)
        assert not report.ok
        assert "cover" in report.errors[0].message
