"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListing:
    def test_experiments_listing(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out and "wrf" in out

    def test_schedulers_listing(self, capsys):
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out
        assert "critical-greedy" in out and "gain3" in out


class TestSolve:
    def test_solve_example(self, capsys):
        code = main(
            [
                "solve",
                "--workload",
                "example",
                "--algorithm",
                "critical-greedy",
                "--budget",
                "57",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MED=" in out
        assert "w4 -> VT3" in out

    def test_solve_infeasible_budget_errors(self, capsys):
        code = main(["solve", "--budget", "10"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_solve_wrf_gain3(self, capsys):
        code = main(
            ["solve", "--workload", "wrf", "--algorithm", "gain3", "--budget", "150"]
        )
        assert code == 0
        assert "gain3" in capsys.readouterr().out

    def test_unknown_algorithm_errors(self, capsys):
        code = main(["solve", "--algorithm", "magic", "--budget", "57"])
        assert code == 1
        assert "unknown scheduler" in capsys.readouterr().err

    def test_solve_json_output(self, capsys):
        import json

        assert main(["solve", "--budget", "57", "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["algorithm"] == "critical-greedy"
        assert payload["cost"] <= 57.0
        assert payload["schedule"]["kind"] == "schedule"
        assert payload["schedule"]["assignment"]["w4"] == "VT3"
        # canonical rendering: sorted keys, compact separators, one line
        assert out.strip() == out.strip().replace(", ", ",")

    def test_solve_json_matches_codec(self, capsys):
        from repro.service.codec import dumps, encode_schedule
        from repro.algorithms import get_scheduler
        from repro.workloads import example_problem

        assert main(["solve", "--budget", "57", "--json"]) == 0
        out = capsys.readouterr().out
        problem = example_problem()
        result = get_scheduler("critical-greedy").solve(problem, 57.0)
        expected = dumps(encode_schedule(result.schedule, problem.catalog))
        assert expected in out


class TestServiceCommands:
    def test_serve_and_submit_round_trip(self, tmp_path, capsys):
        import json
        import threading

        from repro.service.app import SchedulingService
        from repro.service.http import make_server

        service = SchedulingService(max_workers=1, queue_size=4)
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            assert main(["submit", "--url", url, "--budget", "57"]) == 0
            first = json.loads(capsys.readouterr().out)
            assert first["status"] == "ok" and first["cache_hit"] is False

            code = main(["submit", "--url", url, "--budget", "57", "--validate"])
            assert code == 0
            second = json.loads(capsys.readouterr().out)
            assert second["cache_hit"] is True
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_submit_unreachable_server_errors(self, capsys):
        code = main(
            ["submit", "--url", "http://127.0.0.1:9", "--budget", "57"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_submit_infeasible_budget_reports_error(self, capsys):
        import json
        import threading

        from repro.service.app import SchedulingService
        from repro.service.http import make_server

        service = SchedulingService(max_workers=1, queue_size=4)
        server = make_server(service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            code = main(["submit", "--url", url, "--budget", "0.01"])
            assert code == 1
            out = json.loads(capsys.readouterr().out)
            assert out["error"]["kind"] == "infeasible_budget"
        finally:
            server.shutdown()
            server.server_close()
            service.close()


class TestSimulate:
    def test_simulate_example(self, capsys):
        code = main(["simulate", "--workload", "example", "--budget", "57"])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated MED" in out
        assert "== vms ==" in out

    def test_simulate_with_packing(self, capsys):
        code = main(["simulate", "--budget", "57", "--pack"])
        assert code == 0
        out = capsys.readouterr().out
        assert "analytical MED" in out


class TestExperimentCommand:
    def test_quick_experiment(self, capsys):
        code = main(["experiment", "table2", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "table2" in out

    def test_quick_complexity(self, capsys):
        code = main(["experiment", "complexity", "--quick"])
        assert code == 0
        assert "Theorem 1" in capsys.readouterr().out

    def test_invalid_experiment_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["experiment", "nope"])


class TestReportCommand:
    def test_quick_report_writes_all_sections(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "report.txt"
        assert main(["report", "--quick", "--output", str(target)]) == 0
        text = target.read_text()
        for experiment_id in (
            "table2",
            "table3",
            "table4",
            "fig7",
            "fig9",
            "fig10",
            "fig11",
            "wrf",
            "complexity",
        ):
            assert f"== {experiment_id}:" in text
        assert "wrote" in capsys.readouterr().out


class TestVisualizeCommand:
    def test_gantt(self, capsys):
        from repro.cli import main

        assert main(["visualize", "--budget", "57", "--format", "gantt"]) == 0
        out = capsys.readouterr().out
        assert "|" in out and "#" in out

    def test_dot(self, capsys):
        from repro.cli import main

        assert main(["visualize", "--budget", "57", "--format", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "VT" in out
