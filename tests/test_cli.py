"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListing:
    def test_experiments_listing(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out and "wrf" in out

    def test_schedulers_listing(self, capsys):
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out
        assert "critical-greedy" in out and "gain3" in out


class TestSolve:
    def test_solve_example(self, capsys):
        code = main(
            [
                "solve",
                "--workload",
                "example",
                "--algorithm",
                "critical-greedy",
                "--budget",
                "57",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MED=" in out
        assert "w4 -> VT3" in out

    def test_solve_infeasible_budget_errors(self, capsys):
        code = main(["solve", "--budget", "10"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_solve_wrf_gain3(self, capsys):
        code = main(
            ["solve", "--workload", "wrf", "--algorithm", "gain3", "--budget", "150"]
        )
        assert code == 0
        assert "gain3" in capsys.readouterr().out

    def test_unknown_algorithm_errors(self, capsys):
        code = main(["solve", "--algorithm", "magic", "--budget", "57"])
        assert code == 1
        assert "unknown scheduler" in capsys.readouterr().err


class TestSimulate:
    def test_simulate_example(self, capsys):
        code = main(["simulate", "--workload", "example", "--budget", "57"])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated MED" in out
        assert "== vms ==" in out

    def test_simulate_with_packing(self, capsys):
        code = main(["simulate", "--budget", "57", "--pack"])
        assert code == 0
        out = capsys.readouterr().out
        assert "analytical MED" in out


class TestExperimentCommand:
    def test_quick_experiment(self, capsys):
        code = main(["experiment", "table2", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "table2" in out

    def test_quick_complexity(self, capsys):
        code = main(["experiment", "complexity", "--quick"])
        assert code == 0
        assert "Theorem 1" in capsys.readouterr().out

    def test_invalid_experiment_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["experiment", "nope"])


class TestReportCommand:
    def test_quick_report_writes_all_sections(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "report.txt"
        assert main(["report", "--quick", "--output", str(target)]) == 0
        text = target.read_text()
        for experiment_id in (
            "table2",
            "table3",
            "table4",
            "fig7",
            "fig9",
            "fig10",
            "fig11",
            "wrf",
            "complexity",
        ):
            assert f"== {experiment_id}:" in text
        assert "wrote" in capsys.readouterr().out


class TestVisualizeCommand:
    def test_gantt(self, capsys):
        from repro.cli import main

        assert main(["visualize", "--budget", "57", "--format", "gantt"]) == 0
        out = capsys.readouterr().out
        assert "|" in out and "#" in out

    def test_dot(self, capsys):
        from repro.cli import main

        assert main(["visualize", "--budget", "57", "--format", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "VT" in out
