"""Peer replication: write-through push, anti-entropy pull, quarantine."""

import pytest

from repro.core.serialize import problem_to_dict
from repro.exceptions import (
    EventConflictError,
    LiveLogCorruptionError,
    LiveWorkflowError,
    TransientServiceError,
    UnknownWorkflowError,
)
from repro.live.store import MAX_RECORD_BYTES, LiveWorkflowManager
from repro.service.codec import dumps


class InProcessPeer:
    """A PeerLink wired straight onto another manager (no HTTP)."""

    def __init__(self, manager: LiveWorkflowManager) -> None:
        self.manager = manager
        self.fail = False

    def fetch(self, workflow_id):
        if self.fail:
            raise TransientServiceError("peer down")
        try:
            return self.manager.sync_export(workflow_id)["records"]
        except UnknownWorkflowError:
            return None

    def push(self, workflow_id, base_records, records):
        if self.fail:
            raise TransientServiceError("peer down")
        payload = (
            {"reset": True, "records": records}
            if base_records is None
            else {"base_records": base_records, "records": records}
        )
        return self.manager.sync_import(workflow_id, payload)["records"]


@pytest.fixture
def registration(example_problem):
    return {"problem": problem_to_dict(example_problem), "budget": 57.0}


@pytest.fixture
def pair(tmp_path):
    """Node A replicating write-through into node B's live_dir."""
    node_b = LiveWorkflowManager(live_dir=tmp_path / "b", node="b")
    node_a = LiveWorkflowManager(
        live_dir=tmp_path / "a", node="a", peers=[InProcessPeer(node_b)]
    )
    return node_a, node_b, tmp_path


class TestWriteThrough:
    def test_every_record_lands_on_the_peer(self, pair, registration):
        node_a, node_b, tmp = pair
        wid = node_a.register(dict(registration))["workflow_id"]
        node_a.event(wid, {"seq": 1, "type": "topup", "amount": 1.0})
        node_a.event(wid, {"seq": 2, "type": "topup", "amount": 2.0})
        assert (tmp / "a" / f"{wid}.jsonl").read_bytes() == (
            tmp / "b" / f"{wid}.jsonl"
        ).read_bytes()
        # The replica serves the same history through its own recovery.
        assert dumps(node_b.status(wid)) == dumps(node_a.status(wid))
        stats = node_a.stats()
        assert stats["pushes"] == 3 and stats["push_failures"] == 0
        assert stats["replication_lag"] == 0

    def test_push_failure_recovers_with_full_resync(self, pair, registration):
        node_a, node_b, tmp = pair
        peer = node_a._peers[0]
        wid = node_a.register(dict(registration))["workflow_id"]
        peer.fail = True
        node_a.event(wid, {"seq": 1, "type": "topup", "amount": 1.0})
        assert node_a.stats()["push_failures"] == 1
        assert node_a.stats()["replication_lag"] > 0
        peer.fail = False
        # The next write notices the lost ack and resyncs the whole log.
        node_a.event(wid, {"seq": 2, "type": "topup", "amount": 2.0})
        assert (tmp / "a" / f"{wid}.jsonl").read_bytes() == (
            tmp / "b" / f"{wid}.jsonl"
        ).read_bytes()
        assert node_a.stats()["replication_lag"] == 0

    def test_compaction_pushes_the_compacted_log(self, tmp_path, registration):
        node_b = LiveWorkflowManager(live_dir=tmp_path / "b")
        node_a = LiveWorkflowManager(
            live_dir=tmp_path / "a",
            peers=[InProcessPeer(node_b)],
            checkpoint_interval=2,
        )
        wid = node_a.register(dict(registration))["workflow_id"]
        for seq in (1, 2, 3):
            node_a.event(wid, {"seq": seq, "type": "topup", "amount": 1.0})
        assert (tmp_path / "a" / f"{wid}.jsonl").read_bytes() == (
            tmp_path / "b" / f"{wid}.jsonl"
        ).read_bytes()
        fresh_b = LiveWorkflowManager(live_dir=tmp_path / "b")
        assert dumps(fresh_b.status(wid)) == dumps(node_a.status(wid))


class TestPullOnMiss:
    def test_missing_log_rebuilds_from_peer(self, pair, registration):
        node_a, node_b, tmp = pair
        wid = node_a.register(dict(registration))["workflow_id"]
        node_a.event(wid, {"seq": 1, "type": "topup", "amount": 1.0})
        # A brand-new node with an empty live_dir but a peer serves the
        # workflow by pulling the log on demand.
        node_c = LiveWorkflowManager(
            live_dir=tmp / "c", peers=[InProcessPeer(node_b)]
        )
        assert dumps(node_c.status(wid)) == dumps(node_a.status(wid))
        assert node_c.stats()["pulls"] == 1
        assert (tmp / "c" / f"{wid}.jsonl").exists()

    def test_corrupt_log_quarantined_and_healed_from_peer(
        self, pair, registration
    ):
        node_a, node_b, tmp = pair
        wid = node_a.register(dict(registration))["workflow_id"]
        node_a.event(wid, {"seq": 1, "type": "topup", "amount": 1.0})
        expected = dumps(node_a.status(wid))

        log = tmp / "a" / f"{wid}.jsonl"
        log.write_text('{"kind": "registration"}\nGARBAGE NOT JSON\n')
        healed = LiveWorkflowManager(
            live_dir=tmp / "a", peers=[InProcessPeer(node_b)]
        )
        # No client-visible 500: the damaged log is set aside, the
        # replica pulled in, and the request answered.
        assert dumps(healed.status(wid)) == expected
        stats = healed.stats()
        assert stats["quarantined"] == 1 and stats["pulls"] == 1
        quarantined = tmp / "a" / f"{wid}.jsonl.quarantined"
        assert quarantined.exists()
        assert "GARBAGE" in quarantined.read_text()

    def test_corruption_without_peers_still_raises(self, pair, registration):
        node_a, _node_b, tmp = pair
        wid = node_a.register(dict(registration))["workflow_id"]
        (tmp / "a" / f"{wid}.jsonl").write_text("GARBAGE\n")
        alone = LiveWorkflowManager(live_dir=tmp / "a")  # no peers
        with pytest.raises(LiveLogCorruptionError):
            alone.status(wid)
        # ... and the damaged log was NOT touched (readers never mutate
        # a shared live_dir without a replica to restore from).
        assert (tmp / "a" / f"{wid}.jsonl").read_text() == "GARBAGE\n"

    def test_dead_peer_degrades_to_local_error(self, pair, registration):
        node_a, node_b, tmp = pair
        wid = node_a.register(dict(registration))["workflow_id"]
        (tmp / "a" / f"{wid}.jsonl").write_text("GARBAGE\n")
        peer = InProcessPeer(node_b)
        peer.fail = True
        stuck = LiveWorkflowManager(live_dir=tmp / "a", peers=[peer])
        with pytest.raises(LiveLogCorruptionError):
            stuck.status(wid)


class TestSyncEndpointValidation:
    def test_export_unknown_is_404_class(self, tmp_path):
        manager = LiveWorkflowManager(live_dir=tmp_path)
        with pytest.raises(UnknownWorkflowError):
            manager.sync_export("missing")

    def test_export_returns_raw_lines(self, tmp_path, registration):
        manager = LiveWorkflowManager(live_dir=tmp_path)
        wid = manager.register(dict(registration))["workflow_id"]
        manager.event(wid, {"seq": 1, "type": "topup", "amount": 1.0})
        body = manager.sync_export(wid)
        assert body["count"] == 2 and len(body["records"]) == 2
        assert all(isinstance(line, str) for line in body["records"])

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            {},
            {"records": []},
            {"records": "not-a-list"},
            {"records": [42]},
            {"records": ["not json"]},
            {"records": ['["a","list"]']},
            {"records": ['{"no_kind": 1}']},
            {"records": ['{"kind": "event"}']},  # append without base
            {"records": ['{"kind": "event"}'], "base_records": 0},
            {"records": ['{"kind": "event"}'], "base_records": True},
            {"reset": True, "records": ['{"kind": "event"}']},  # no registration
        ],
    )
    def test_malformed_import_is_400_class(self, tmp_path, payload):
        manager = LiveWorkflowManager(live_dir=tmp_path)
        with pytest.raises(LiveWorkflowError):
            manager.sync_import("wf", payload)

    def test_oversized_record_rejected(self, tmp_path):
        manager = LiveWorkflowManager(live_dir=tmp_path)
        huge = '{"kind": "event", "pad": "' + "x" * MAX_RECORD_BYTES + '"}'
        with pytest.raises(LiveWorkflowError):
            manager.sync_import("wf", {"reset": True, "records": [huge]})

    def test_base_mismatch_is_conflict(self, tmp_path, registration):
        manager = LiveWorkflowManager(live_dir=tmp_path)
        wid = manager.register(dict(registration))["workflow_id"]
        with pytest.raises(EventConflictError):
            manager.sync_import(
                wid,
                {"base_records": 5, "records": ['{"kind": "fence", "epoch": 2}']},
            )

    def test_import_without_live_dir_is_400_class(self):
        manager = LiveWorkflowManager()
        with pytest.raises(LiveWorkflowError):
            manager.sync_import(
                "wf", {"reset": True, "records": ['{"kind": "registration"}']}
            )

    def test_reset_import_evicts_loaded_copy(self, pair, registration):
        node_a, node_b, tmp = pair
        wid = node_a.register(dict(registration))["workflow_id"]
        node_a.event(wid, {"seq": 1, "type": "topup", "amount": 1.0})
        # B has the replica loaded; a reset import must make B re-read.
        node_b.status(wid)
        records = node_a.sync_export(wid)["records"]
        node_b.sync_import(wid, {"reset": True, "records": records})
        assert dumps(node_b.status(wid)) == dumps(node_a.status(wid))


class TestStreamingBounds:
    def test_oversized_log_record_is_corruption_not_allocation(
        self, tmp_path, registration
    ):
        manager = LiveWorkflowManager(live_dir=tmp_path)
        wid = manager.register(dict(registration))["workflow_id"]
        with open(tmp_path / f"{wid}.jsonl", "ab") as handle:
            handle.write(b'{"kind": "event", "pad": "')
            handle.write(b"x" * (MAX_RECORD_BYTES + 16))
            handle.write(b'"}\n')
        with pytest.raises(LiveLogCorruptionError):
            LiveWorkflowManager(live_dir=tmp_path).status(wid)

    def test_terminated_garbage_line_is_corruption(self, tmp_path, registration):
        manager = LiveWorkflowManager(live_dir=tmp_path)
        wid = manager.register(dict(registration))["workflow_id"]
        with open(tmp_path / f"{wid}.jsonl", "ab") as handle:
            handle.write(b"NOT JSON BUT NEWLINE TERMINATED\n")
        with pytest.raises(LiveLogCorruptionError):
            LiveWorkflowManager(live_dir=tmp_path).status(wid)

    def test_torn_tail_still_dropped(self, tmp_path, registration):
        manager = LiveWorkflowManager(live_dir=tmp_path)
        wid = manager.register(dict(registration))["workflow_id"]
        manager.event(wid, {"seq": 1, "type": "topup", "amount": 1.0})
        with open(tmp_path / f"{wid}.jsonl", "ab") as handle:
            handle.write(b'{"kind": "event", "torn')  # no newline: crash
        fresh = LiveWorkflowManager(live_dir=tmp_path)
        assert fresh.status(wid)["last_seq"] == 1


class TestStatsSurface:
    def test_stats_exposes_federation_health(self, pair, registration):
        node_a, _node_b, _tmp = pair
        wid = node_a.register(dict(registration))["workflow_id"]
        node_a.event(wid, {"seq": 1, "type": "topup", "amount": 1.0})
        stats = node_a.stats()
        for key in (
            "fenced",
            "epoch_claims",
            "checkpoints",
            "compactions",
            "archived",
            "expired",
            "pulls",
            "quarantined",
            "pushes",
            "push_failures",
            "sync_imports",
            "replication_lag",
            "max_epoch",
            "last_checkpoint_seq",
            "peers",
            "fsync",
        ):
            assert key in stats, key
        assert stats["peers"] == 1 and stats["fsync"] is True
        assert stats["max_epoch"] == 1
