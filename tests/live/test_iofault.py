"""FaultyLogIO: crash-boundary ladder semantics and seeded fault draws."""

import pytest

from repro.live.iofault import FaultyLogIO, LogIO, SimulatedCrash


class TestLogIO:
    def test_append_returns_new_size_and_creates_file(self, tmp_path):
        io = LogIO()
        path = tmp_path / "log.jsonl"
        assert io.size(path) is None
        size = io.append(path, b"one\n")
        assert size == 4 == io.size(path)
        assert io.append(path, b"two\n") == 8

    def test_truncate_torn_tail_drops_partial_line(self, tmp_path):
        io = LogIO()
        path = tmp_path / "log.jsonl"
        path.write_bytes(b"complete\ntorn")
        io.truncate_torn_tail(path)
        assert path.read_bytes() == b"complete\n"
        io.truncate_torn_tail(path)  # idempotent on a clean log
        assert path.read_bytes() == b"complete\n"

    def test_replace_is_atomic_swap(self, tmp_path):
        io = LogIO()
        src, dst = tmp_path / "new", tmp_path / "old"
        src.write_bytes(b"new\n")
        dst.write_bytes(b"old\n")
        io.replace(src, dst)
        assert dst.read_bytes() == b"new\n" and not src.exists()

    def test_remove_ignores_missing(self, tmp_path):
        LogIO().remove(tmp_path / "never-existed")


class TestCrashLadder:
    def test_simulated_crash_is_not_an_exception(self):
        # `except Exception` anywhere in the stack must not absorb a
        # simulated power loss.
        assert not issubclass(SimulatedCrash, Exception)

    def test_append_has_four_boundaries(self, tmp_path):
        io = FaultyLogIO(crash_at=None)
        io.append(tmp_path / "log.jsonl", b"record\n")
        assert io.boundaries == 4 and io.crashes == 0

    @pytest.mark.parametrize(
        ("crash_at", "expected"),
        [
            (0, b""),  # pre: nothing written
            (1, b"rec"),  # partial: a torn prefix reached disk
            (2, b"record\n"),  # pre-fsync: all bytes written, sync pending
        ],
    )
    def test_append_crash_leaves_expected_bytes(self, tmp_path, crash_at, expected):
        io = FaultyLogIO(crash_at=crash_at, partial_fraction=0.5)
        path = tmp_path / "log.jsonl"
        with pytest.raises(SimulatedCrash):
            io.append(path, b"record\n")
        assert (path.read_bytes() if path.exists() else b"") == expected

    def test_append_post_boundary_crashes_after_durability(self, tmp_path):
        io = FaultyLogIO(crash_at=3)
        path = tmp_path / "log.jsonl"
        with pytest.raises(SimulatedCrash):
            io.append(path, b"record\n")
        # The crash hit *after* write+fsync: the record fully survived.
        assert path.read_bytes() == b"record\n"

    def test_replace_crash_before_rename_keeps_old(self, tmp_path):
        io = FaultyLogIO(crash_at=0)
        src, dst = tmp_path / "new", tmp_path / "old"
        src.write_bytes(b"new\n")
        dst.write_bytes(b"old\n")
        with pytest.raises(SimulatedCrash):
            io.replace(src, dst)
        assert dst.read_bytes() == b"old\n" and src.exists()

    def test_replace_crash_after_rename_keeps_new(self, tmp_path):
        io = FaultyLogIO(crash_at=1)  # pre-dirsync: rename already happened
        src, dst = tmp_path / "new", tmp_path / "old"
        src.write_bytes(b"new\n")
        dst.write_bytes(b"old\n")
        with pytest.raises(SimulatedCrash):
            io.replace(src, dst)
        assert dst.read_bytes() == b"new\n" and not src.exists()

    def test_boundaries_count_across_operations(self, tmp_path):
        io = FaultyLogIO(crash_at=None)
        path = tmp_path / "log.jsonl"
        io.append(path, b"a\n")  # 4 boundaries
        io.write_file(tmp_path / "tmp", b"b\n")  # 4 boundaries
        io.replace(tmp_path / "tmp", path)  # 3 boundaries
        assert io.boundaries == 11

    def test_partial_fraction_validated(self):
        with pytest.raises(ValueError):
            FaultyLogIO(partial_fraction=0.0)
        with pytest.raises(ValueError):
            FaultyLogIO(partial_fraction=1.0)


class TestSeededFaults:
    def test_fsync_errors_are_deterministic_per_seed(self, tmp_path):
        def pattern(seed: int) -> list[bool]:
            io = FaultyLogIO(seed=seed, fsync_error_prob=0.5)
            failures = []
            for n in range(20):
                try:
                    io.append(tmp_path / f"s{seed}-{n}.jsonl", b"x\n")
                    failures.append(False)
                except OSError:
                    failures.append(True)
            return failures

        first = pattern(7)
        assert pattern(7) == first  # same seed, same draws
        assert any(first) and not all(first)
        assert pattern(8) != first  # a different seed reshuffles

    def test_injected_replace_error_counts(self, tmp_path):
        io = FaultyLogIO(seed=1, replace_error_prob=1.0)
        src = tmp_path / "src"
        src.write_bytes(b"x\n")
        with pytest.raises(OSError):
            io.replace(src, tmp_path / "dst")
        assert io.injected_replace_errors == 1
        assert src.exists()  # the failed rename left the source alone
