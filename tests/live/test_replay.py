"""DES-trace replay through the live subsystem: identity and drift.

The headline property (the PR's acceptance bar): replaying a seeded,
drift-free DES trace reproduces the offline schedule *byte-identically*
and never bumps the revision counter — the live engine's warm grids and
billing arithmetic are bitwise-faithful continuations of the offline
solver, not a near-miss reimplementation.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.core.serialize import problem_to_dict
from repro.exceptions import ServiceError
from repro.live.replay import merge_topups, replay_events, replay_simulation
from repro.live.store import LiveWorkflowManager
from repro.service.codec import dumps, encode_schedule
from repro.sim.faults import ScriptedFaults
from repro.workloads.generator import generate_problem

from tests.conftest import problems_with_budgets


class ManagerClient:
    """The live-endpoint trio served straight off a manager (no HTTP)."""

    def __init__(self, manager: LiveWorkflowManager | None = None) -> None:
        self.manager = manager or LiveWorkflowManager()

    def register_workflow(self, payload):
        return self.manager.register(payload)

    def workflow_event(self, workflow_id, payload):
        return self.manager.event(workflow_id, payload)

    def workflow_status(self, workflow_id):
        return self.manager.status(workflow_id)


@settings(max_examples=25, deadline=None)
@given(pb=problems_with_budgets(max_modules=6, max_types=3))
def test_zero_drift_replay_is_byte_identical(pb):
    problem, budget = pb
    offline = CriticalGreedyScheduler().solve(problem, budget)
    result, report = replay_simulation(
        ManagerClient(), problem, budget, with_regret=False
    )
    assert report.revision == 0
    assert report.replays == 0
    assert not report.violations
    assert report.complete
    assert not report.over_budget
    # Byte-identical: the final live schedule renders to the same
    # canonical JSON as the offline plan.
    client = ManagerClient()
    body = client.register_workflow(
        {"problem": problem_to_dict(problem), "budget": budget}
    )
    offline_bytes = dumps(encode_schedule(offline.schedule, problem.catalog))
    assert dumps(body["result"]["schedule"]) == offline_bytes


def test_zero_drift_replay_example(example_problem):
    for budget in (48.0, 52.0, 57.0, 64.0):
        offline = CriticalGreedyScheduler().solve(example_problem, budget)
        client = ManagerClient()
        result, report = replay_simulation(
            client, example_problem, budget, with_regret=False
        )
        assert report.revision == 0 and report.complete
        status = client.workflow_status(report.workflow_id)
        assert dumps(status["result"]["schedule"]) == dumps(
            encode_schedule(offline.schedule, example_problem.catalog)
        )
        assert status["ledger"]["cost_drift"] == 0.0


class TestMergeTopups:
    def test_topups_inserted_by_time_and_resequenced(self):
        events = [
            {"seq": 9, "type": "started", "module": "a", "time": 0.0},
            {"seq": 9, "type": "completed", "module": "a", "duration": 1.0, "time": 5.0},
        ]
        merged = merge_topups(events, [(3.0, 2.0), (0.0, 1.0)])
        kinds = [(e["type"], e.get("time")) for e in merged]
        assert kinds == [
            ("topup", 0.0),
            ("started", 0.0),
            ("topup", 3.0),
            ("completed", 5.0),
        ]
        assert [e["seq"] for e in merged] == [1, 2, 3, 4]

    def test_trailing_topups_appended(self):
        merged = merge_topups([], [(1.0, 5.0)])
        assert merged == [{"type": "topup", "amount": 5.0, "time": 1.0, "seq": 1}]


class TestDriftReplay:
    """The ISSUE acceptance scenario: >=1 late module, >=1 crash, >=1
    budget top-up, end-to-end, with every revised residual schedule
    respecting the remaining budget."""

    def _scenario(self):
        rng = np.random.default_rng(42)
        problem = generate_problem((30, 55, 5), rng)
        lo, hi = problem.budget_range()
        budget = lo + 0.5 * (hi - lo)
        offline = CriticalGreedyScheduler().solve(problem, budget)
        names = list(problem.matrices.module_names)
        # One module 2x late, one 30% early, one crash 60% through.
        late, early, crashy = names[0], names[1], names[2]
        matrices = problem.matrices
        actual = {
            late: 2.0 * matrices.time(late, offline.schedule[late]),
            early: 0.7 * matrices.time(early, offline.schedule[early]),
        }
        crash_offset = 0.6 * matrices.time(crashy, offline.schedule[crashy])
        faults = ScriptedFaults({(crashy, 0): crash_offset})
        return problem, budget, actual, faults

    def test_drift_crash_and_topup_end_to_end(self):
        problem, budget, actual, faults = self._scenario()
        client = ManagerClient()
        result, report = replay_simulation(
            client,
            problem,
            budget,
            actual_durations=actual,
            faults=faults,
            topups=[(0.0, 0.15 * budget)],
        )
        assert report.complete
        assert not report.violations
        assert report.revision > 0
        assert report.final_budget == pytest.approx(budget + 0.15 * budget)
        assert report.spend > 0.0
        status = client.workflow_status(report.workflow_id)
        assert status["failures"] >= 1
        assert status["ledger"]["cost_drift"] != 0.0
        # Regret vs the clairvoyant offline schedule is reported.
        assert report.regret is not None
        assert report.regret.clairvoyant_makespan > 0.0
        assert report.regret.realized_makespan == pytest.approx(result.makespan)

    def test_replay_events_surfaces_registration_failure(self, example_problem):
        client = ManagerClient()
        with pytest.raises(ServiceError):
            replay_events(
                client,
                {"problem": problem_to_dict(example_problem), "budget": "x"},
                [],
            )
