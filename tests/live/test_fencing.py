"""Epoch fencing: one enforced writer per live-workflow log."""

import threading

import pytest

from repro.core.serialize import problem_to_dict
from repro.exceptions import StaleEpochError
from repro.live.fencing import WriterLease, fence_record, record_epoch
from repro.live.store import LiveWorkflowManager
from repro.service.codec import dumps


@pytest.fixture
def registration(example_problem):
    return {"problem": problem_to_dict(example_problem), "budget": 57.0}


class TestRecords:
    def test_fence_record_shape(self):
        record = fence_record(3, "node-a")
        assert record == {"kind": "fence", "epoch": 3, "node": "node-a"}
        assert fence_record(1, None)["node"] == "unnamed"

    @pytest.mark.parametrize("kind", ["fence", "checkpoint"])
    def test_record_epoch_reads_fence_and_checkpoint(self, kind):
        assert record_epoch({"kind": kind, "epoch": 5}) == 5

    @pytest.mark.parametrize(
        "record",
        [
            {"kind": "event", "epoch": 5},
            {"kind": "registration"},
            {"kind": "fence", "epoch": 0},
            {"kind": "fence", "epoch": -1},
            {"kind": "fence", "epoch": True},
            {"kind": "fence", "epoch": "2"},
            {"kind": "checkpoint"},
        ],
    )
    def test_record_epoch_rejects_other_kinds_and_malformed(self, record):
        assert record_epoch(record) is None

    def test_lease_defaults_force_first_scan(self):
        lease = WriterLease()
        assert lease.epoch == 0 and lease.size == -1

    def test_stale_epoch_error_carries_context(self):
        exc = StaleEpochError("wf", epoch=2, observed=5)
        assert exc.workflow_id == "wf" and exc.epoch == 2 and exc.observed == 5


class TestFailoverFencing:
    def test_registration_implies_epoch_one_no_extra_line(
        self, registration, tmp_path
    ):
        manager = LiveWorkflowManager(live_dir=tmp_path)
        wid = manager.register(dict(registration))["workflow_id"]
        manager.event(wid, {"seq": 1, "type": "topup", "amount": 1.0})
        lines = (tmp_path / f"{wid}.jsonl").read_text().splitlines()
        assert len(lines) == 2  # registration + event, no fence record
        assert manager.stats()["max_epoch"] == 1
        assert manager.stats()["epoch_claims"] == 0

    def test_takeover_claims_next_epoch_with_fence_record(
        self, registration, tmp_path
    ):
        node_a = LiveWorkflowManager(live_dir=tmp_path, node="a")
        wid = node_a.register(dict(registration))["workflow_id"]
        node_a.event(wid, {"seq": 1, "type": "topup", "amount": 1.0})

        # Failover: node B recovers and *writes*, so it must claim.
        node_b = LiveWorkflowManager(live_dir=tmp_path, node="b")
        node_b.event(wid, {"seq": 2, "type": "topup", "amount": 2.0})
        assert node_b.stats()["epoch_claims"] == 1
        assert node_b.stats()["max_epoch"] == 2
        records = [
            line for line in (tmp_path / f"{wid}.jsonl").read_text().splitlines()
        ]
        assert '"kind":"fence"' in records[-2]  # fence precedes B's event
        assert '"node":"b"' in records[-2]

    def test_recovery_and_status_never_claim(self, registration, tmp_path):
        node_a = LiveWorkflowManager(live_dir=tmp_path)
        wid = node_a.register(dict(registration))["workflow_id"]
        node_a.event(wid, {"seq": 1, "type": "topup", "amount": 1.0})
        before = (tmp_path / f"{wid}.jsonl").read_bytes()

        reader = LiveWorkflowManager(live_dir=tmp_path)
        reader.status(wid)
        assert (tmp_path / f"{wid}.jsonl").read_bytes() == before
        assert reader.stats()["epoch_claims"] == 0

    def test_stale_writer_is_fenced_then_catches_up(self, registration, tmp_path):
        """The acceptance scenario: a writer whose epoch went stale has
        its append rejected, folds in the peer's records, re-claims a
        higher epoch, and only then answers — with the peer's events
        applied exactly once."""
        node_a = LiveWorkflowManager(live_dir=tmp_path, node="a")
        wid = node_a.register(dict(registration))["workflow_id"]
        node_a.event(wid, {"seq": 1, "type": "topup", "amount": 1.0})

        node_b = LiveWorkflowManager(live_dir=tmp_path, node="b")
        node_b.event(wid, {"seq": 2, "type": "topup", "amount": 2.0})  # epoch 2

        # Node A is now the stale writer: its next append is fenced.
        ack = node_a.event(wid, {"seq": 3, "type": "topup", "amount": 3.0})
        assert ack["replayed"] is False and ack["seq"] == 3
        stats = node_a.stats()
        assert stats["fenced"] == 1  # the rejected (stale) append
        assert stats["resyncs"] == 1  # the forced catch-up applied seq 2
        assert stats["max_epoch"] == 3  # fenced -> re-claimed observed+1

        # Both nodes converge on one history; the budget topups applied
        # exactly once each despite the epoch ping-pong.
        assert dumps(node_a.status(wid)) == dumps(node_b.status(wid))
        fresh = LiveWorkflowManager(live_dir=tmp_path)
        status = fresh.status(wid)
        assert status["last_seq"] == 3
        assert status["budget"] == 57.0 + 1.0 + 2.0 + 3.0

    def test_epoch_ping_pong_monotonically_increases(self, registration, tmp_path):
        node_a = LiveWorkflowManager(live_dir=tmp_path, node="a")
        node_b = LiveWorkflowManager(live_dir=tmp_path, node="b")
        wid = node_a.register(dict(registration))["workflow_id"]
        for seq in range(1, 7):
            writer = node_a if seq % 2 else node_b
            writer.event(wid, {"seq": seq, "type": "topup", "amount": 0.5})
        # Every alternation fenced the other side and bumped the epoch.
        assert node_a.stats()["fenced"] + node_b.stats()["fenced"] >= 4
        peak = max(node_a.stats()["max_epoch"], node_b.stats()["max_epoch"])
        assert peak >= 6
        fresh = LiveWorkflowManager(live_dir=tmp_path)
        status = fresh.status(wid)
        assert status["last_seq"] == 6
        assert status["budget"] == 57.0 + 6 * 0.5

    def test_concurrent_two_writer_stream_applies_each_seq_once(
        self, registration, tmp_path
    ):
        """Two writers race the *same* events through one log.  Fencing
        plus seq-idempotent folding must apply every event exactly once
        (budget arithmetic is the witness) and leave a log that recovers
        to the same history."""
        node_a = LiveWorkflowManager(live_dir=tmp_path, node="a")
        node_b = LiveWorkflowManager(live_dir=tmp_path, node="b")
        wid = node_a.register(dict(registration))["workflow_id"]
        errors: list[Exception] = []

        for seq in range(1, 6):
            event = {"seq": seq, "type": "topup", "amount": 1.0}
            barrier = threading.Barrier(2)

            def send(manager, event=event, barrier=barrier):
                barrier.wait()
                try:
                    manager.event(wid, dict(event))
                except Exception as exc:  # noqa: BLE001 - recorded for assert
                    errors.append(exc)

            threads = [
                threading.Thread(target=send, args=(node,))
                for node in (node_a, node_b)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert not errors
        fresh = LiveWorkflowManager(live_dir=tmp_path)
        status = fresh.status(wid)
        assert status["last_seq"] == 5
        # Exactly once: five 1.0 topups, no double application.
        assert status["budget"] == 57.0 + 5.0
        assert dumps(node_a.status(wid)) == dumps(node_b.status(wid))
