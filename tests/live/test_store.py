"""LiveWorkflowManager: registration, durability, lazy recovery."""

import threading

import pytest

from repro.core.serialize import problem_to_dict
from repro.exceptions import (
    EventConflictError,
    LiveLogCorruptionError,
    LiveWorkflowError,
    UnknownWorkflowError,
)
from repro.live.store import LiveWorkflowManager
from repro.service.codec import dumps


@pytest.fixture
def registration(example_problem):
    return {"problem": problem_to_dict(example_problem), "budget": 57.0}


class TestRegistration:
    def test_register_returns_plan(self, registration):
        manager = LiveWorkflowManager()
        body = manager.register(registration)
        assert body["status"] == "ok"
        assert body["revision"] == 0 and body["seq"] == 0
        assert body["result"]["engine"] == "live"
        assert body["result"]["schedule"]

    def test_register_derives_stable_id(self, registration):
        first = LiveWorkflowManager().register(dict(registration))
        second = LiveWorkflowManager().register(dict(registration))
        assert first["workflow_id"] == second["workflow_id"]

    def test_reregistration_replays(self, registration):
        manager = LiveWorkflowManager()
        first = manager.register(dict(registration))
        again = manager.register(dict(registration))
        assert again["replayed"] is True
        assert again["workflow_id"] == first["workflow_id"]
        assert manager.stats()["registered"] == 1

    def test_same_id_different_budget_conflicts(self, registration):
        manager = LiveWorkflowManager()
        wid = manager.register(dict(registration))["workflow_id"]
        with pytest.raises(EventConflictError):
            manager.register(
                {**registration, "workflow_id": wid, "budget": 60.0}
            )

    @pytest.mark.parametrize(
        "mutation",
        [
            {"problem": 42},
            {"budget": "lots"},
            {"budget": None},
            {"algorithm": "genetic"},
            {"params": {"nope": 1}},
            {"params": "fast"},
            {"workflow_id": "../escape"},
            {"workflow_id": ""},
        ],
    )
    def test_malformed_registration_is_400_class(self, registration, mutation):
        manager = LiveWorkflowManager()
        with pytest.raises(LiveWorkflowError):
            manager.register({**registration, **mutation})

    def test_infeasible_budget_is_400_class(self, registration):
        manager = LiveWorkflowManager()
        with pytest.raises(Exception) as info:
            manager.register({**registration, "budget": 0.01})
        # InfeasibleBudgetError maps to 400 via the service error table.
        assert "budget" in str(info.value).lower()

    def test_unknown_workflow_is_404_class(self):
        manager = LiveWorkflowManager()
        with pytest.raises(UnknownWorkflowError):
            manager.status("missing")
        with pytest.raises(UnknownWorkflowError):
            manager.event("missing", {"seq": 1, "type": "topup", "amount": 1.0})

    def test_racing_registrations_log_one_record(self, registration, tmp_path):
        """Concurrent identical registrations must converge on one entry
        and exactly one logged registration record."""
        manager = LiveWorkflowManager(live_dir=tmp_path)
        barrier = threading.Barrier(8)
        results: list[dict] = []
        errors: list[Exception] = []

        def race():
            barrier.wait()
            try:
                results.append(manager.register(dict(registration)))
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        threads = [threading.Thread(target=race) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert len({body["workflow_id"] for body in results}) == 1
        assert sum(1 for body in results if not body["replayed"]) == 1
        assert manager.stats()["registered"] == 1
        wid = results[0]["workflow_id"]
        lines = (tmp_path / f"{wid}.jsonl").read_text().splitlines()
        assert len(lines) == 1  # exactly one registration record
        # ... and the log recovers cleanly on a fresh node.
        fresh = LiveWorkflowManager(live_dir=tmp_path)
        assert fresh.status(wid)["last_seq"] == 0


class TestDurability:
    def test_log_and_recover(self, registration, tmp_path):
        manager = LiveWorkflowManager(live_dir=tmp_path)
        wid = manager.register(dict(registration))["workflow_id"]
        manager.event(wid, {"seq": 1, "type": "topup", "amount": 2.0})
        manager.event(wid, {"seq": 2, "type": "topup", "amount": 3.0})
        log = tmp_path / f"{wid}.jsonl"
        assert log.exists()
        lines = log.read_text().splitlines()
        assert len(lines) == 3  # registration + 2 events

        fresh = LiveWorkflowManager(live_dir=tmp_path)
        status = fresh.status(wid)
        assert status["last_seq"] == 2
        assert status["total_budget"] == pytest.approx(62.0)
        assert fresh.stats()["recovered"] == 1
        # Identical state: same status body as the original node's.
        assert dumps(status) == dumps(manager.status(wid))

    def test_recovered_history_replays_idempotently(
        self, registration, tmp_path
    ):
        manager = LiveWorkflowManager(live_dir=tmp_path)
        wid = manager.register(dict(registration))["workflow_id"]
        payload = {"seq": 1, "type": "topup", "amount": 2.0}
        manager.event(wid, dict(payload))

        fresh = LiveWorkflowManager(live_dir=tmp_path)
        replay = fresh.event(wid, dict(payload))
        assert replay["replayed"] is True
        assert fresh.status(wid)["total_budget"] == pytest.approx(59.0)
        with pytest.raises(EventConflictError):
            fresh.event(wid, {"seq": 1, "type": "topup", "amount": 9.0})

    def test_torn_tail_is_dropped(self, registration, tmp_path):
        manager = LiveWorkflowManager(live_dir=tmp_path)
        wid = manager.register(dict(registration))["workflow_id"]
        manager.event(wid, {"seq": 1, "type": "topup", "amount": 2.0})
        log = tmp_path / f"{wid}.jsonl"
        with open(log, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "event", "payl')  # crash mid-append

        fresh = LiveWorkflowManager(live_dir=tmp_path)
        assert fresh.status(wid)["last_seq"] == 1

    def test_append_after_torn_tail_preserves_acked_events(
        self, registration, tmp_path
    ):
        """The active writer must truncate a torn tail before its next
        append — otherwise the new (acknowledged) record fuses with the
        partial line and is lost or poisons the log."""
        manager = LiveWorkflowManager(live_dir=tmp_path)
        wid = manager.register(dict(registration))["workflow_id"]
        manager.event(wid, {"seq": 1, "type": "topup", "amount": 2.0})
        log = tmp_path / f"{wid}.jsonl"
        with open(log, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "event", "payl')  # crash mid-append

        manager.event(wid, {"seq": 2, "type": "topup", "amount": 3.0})
        lines = log.read_text().splitlines()
        assert len(lines) == 3  # registration + 2 complete events

        fresh = LiveWorkflowManager(live_dir=tmp_path)
        status = fresh.status(wid)
        assert status["last_seq"] == 2
        assert status["total_budget"] == pytest.approx(62.0)

    def test_fully_torn_log_is_unknown_workflow(self, tmp_path):
        """A log holding only a torn registration line never acked
        anything: the workflow does not exist (404), not a 500."""
        (tmp_path / "only-torn.jsonl").write_text('{"kind": "registr')
        manager = LiveWorkflowManager(live_dir=tmp_path)
        with pytest.raises(UnknownWorkflowError):
            manager.status("only-torn")

    def test_duplicate_registration_record_is_tolerated(
        self, registration, tmp_path
    ):
        """Two nodes racing one registration through a shared live_dir
        can both append the record; identical copies must not poison
        recovery or catch-up."""
        manager = LiveWorkflowManager(live_dir=tmp_path)
        wid = manager.register(dict(registration))["workflow_id"]
        manager.event(wid, {"seq": 1, "type": "topup", "amount": 2.0})
        log = tmp_path / f"{wid}.jsonl"
        registration_line = log.read_text().splitlines()[0]
        with open(log, "a", encoding="utf-8") as handle:
            handle.write(registration_line + "\n")  # peer's racing copy
        manager.event(wid, {"seq": 2, "type": "topup", "amount": 1.0})

        fresh = LiveWorkflowManager(live_dir=tmp_path)
        status = fresh.status(wid)
        assert status["last_seq"] == 2
        assert status["total_budget"] == pytest.approx(60.0)
        assert dumps(status) == dumps(manager.status(wid))

    def test_divergent_second_registration_is_corruption(
        self, registration, tmp_path
    ):
        manager = LiveWorkflowManager(live_dir=tmp_path)
        wid = manager.register(dict(registration))["workflow_id"]
        log = tmp_path / f"{wid}.jsonl"
        divergent = {**registration, "workflow_id": wid, "budget": 99.0}
        with open(log, "a", encoding="utf-8") as handle:
            handle.write(
                dumps({"kind": "registration", "payload": divergent}) + "\n"
            )
        fresh = LiveWorkflowManager(live_dir=tmp_path)
        with pytest.raises(LiveLogCorruptionError):
            fresh.status(wid)

    def test_mid_file_corruption_raises(self, registration, tmp_path):
        manager = LiveWorkflowManager(live_dir=tmp_path)
        wid = manager.register(dict(registration))["workflow_id"]
        log = tmp_path / f"{wid}.jsonl"
        content = log.read_text()
        log.write_text("garbage\n" + content)

        fresh = LiveWorkflowManager(live_dir=tmp_path)
        # Server-side log damage, not a client error: 500-class.
        with pytest.raises(LiveLogCorruptionError):
            fresh.status(wid)

    def test_stale_node_catches_up_from_peer_log(self, registration, tmp_path):
        """Split-brain heal: after a failover window, the original node's
        stale in-memory copy must fold in the peer's logged events
        instead of wedging the stream on 409s."""
        node_a = LiveWorkflowManager(live_dir=tmp_path)
        wid = node_a.register(dict(registration))["workflow_id"]
        node_a.event(wid, {"seq": 1, "type": "topup", "amount": 1.0})

        # The router fails over: node B recovers and applies event 2.
        node_b = LiveWorkflowManager(live_dir=tmp_path)
        node_b.event(wid, {"seq": 2, "type": "topup", "amount": 2.0})

        # ... then routes event 3 back to node A, whose copy is stale.
        ack = node_a.event(wid, {"seq": 3, "type": "topup", "amount": 3.0})
        assert ack["replayed"] is False and ack["seq"] == 3
        assert node_a.stats()["resyncs"] == 1
        assert node_a.status(wid)["total_budget"] == pytest.approx(63.0)
        # Node B's status read also folds in event 3 from the log.
        assert node_b.status(wid)["total_budget"] == pytest.approx(63.0)
        assert dumps(node_a.status(wid)) == dumps(node_b.status(wid))
        # A true gap is still a conflict, even after a catch-up attempt.
        with pytest.raises(EventConflictError):
            node_a.event(wid, {"seq": 9, "type": "topup", "amount": 1.0})

    def test_no_live_dir_means_no_recovery(self, registration):
        manager = LiveWorkflowManager()
        wid = manager.register(dict(registration))["workflow_id"]
        fresh = LiveWorkflowManager()
        with pytest.raises(UnknownWorkflowError):
            fresh.status(wid)
