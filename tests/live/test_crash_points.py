"""Crash-point ladder as a test: a short prefix of the CI sweep.

CI runs ``python -m repro.live.crashharness`` over the full scenario;
here a truncated event stream keeps the ladder fast while still
covering every boundary *kind* (append pre/partial/pre-fsync/post,
checkpoint write, compaction rename).
"""

import pytest

from repro.live.crashharness import (
    build_scenario,
    main,
    run_flaky_fsync,
    run_harness,
    run_ladder,
)

MAX_EVENTS = 6  # registration + topup + a few started/completed pairs


def test_scenario_is_deterministic_and_adversarial():
    registration, events = build_scenario()
    assert registration["workflow_id"] == "crash-harness"
    again = build_scenario()
    assert again == (registration, events)
    kinds = {event["type"] for event in events}
    assert kinds == {"started", "completed", "failed", "topup"}
    assert [event["seq"] for event in events] == list(range(1, len(events) + 1))


@pytest.mark.parametrize("interval", [0, 2])
def test_ladder_has_no_violations(tmp_path, interval):
    report = run_ladder(
        checkpoint_interval=interval, workdir=tmp_path, max_events=MAX_EVENTS
    )
    assert report["violations"] == []
    assert report["boundaries"] > 0
    assert report["crashes"] == report["boundaries"]
    assert report["events"] == MAX_EVENTS


def test_checkpointing_adds_compaction_boundaries(tmp_path):
    plain = run_ladder(
        checkpoint_interval=0, workdir=tmp_path / "p", max_events=MAX_EVENTS
    )
    compacting = run_ladder(
        checkpoint_interval=2, workdir=tmp_path / "c", max_events=MAX_EVENTS
    )
    # The checkpoint write + atomic replace are extra crash points.
    assert compacting["boundaries"] > plain["boundaries"]
    assert compacting["violations"] == []


def test_flaky_fsync_phase_converges(tmp_path):
    report = run_flaky_fsync(
        workdir=tmp_path, seed=20260808, max_events=MAX_EVENTS
    )
    assert report["violations"] == []
    assert report["injected_fsync_errors"] > 0


def test_run_harness_aggregates(tmp_path):
    report = run_harness(
        workdir=tmp_path, checkpoint_intervals=(0, 2), max_events=MAX_EVENTS
    )
    assert report["ok"] is True and report["violations"] == []
    assert report["total_boundaries"] == sum(
        ladder["boundaries"] for ladder in report["ladders"]
    )
    assert report["total_crashes"] == report["total_boundaries"]


def test_cli_writes_report_and_exits_zero(tmp_path, capsys):
    out = tmp_path / "report.json"
    code = main(
        [
            "--out",
            str(out),
            "--checkpoint-intervals",
            "0",
            "--max-events",
            "4",
        ]
    )
    assert code == 0
    assert out.exists() and '"ok": true' in out.read_text()
    assert "crashharness: ok" in capsys.readouterr().out
