"""Checkpoints: snapshot/restore identity, compaction, retention."""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialize import problem_to_dict
from repro.exceptions import LiveLogCorruptionError
from repro.live.checkpoint import build_checkpoint, verify_checkpoint
from repro.live.iofault import FaultyLogIO
from repro.live.store import LiveWorkflowManager
from repro.service.codec import dumps, loads

from tests.conftest import problems_with_budgets


@pytest.fixture
def registration(example_problem):
    return {"problem": problem_to_dict(example_problem), "budget": 57.0}


def _drive(manager, registration, events):
    wid = manager.register(dict(registration))["workflow_id"]
    for event in events:
        manager.event(wid, dict(event))
    return wid


def _topups(n):
    return [
        {"seq": seq, "type": "topup", "amount": 0.5 * seq}
        for seq in range(1, n + 1)
    ]


class TestCheckpointRecord:
    def test_build_then_verify_roundtrips(self, registration, tmp_path):
        manager = LiveWorkflowManager(live_dir=tmp_path)
        wid = _drive(manager, registration, _topups(2))
        entry = manager._find_entry(wid)
        record = build_checkpoint(entry.workflow, epoch=4)
        assert record["kind"] == "checkpoint"
        assert record["seq"] == 2 and record["epoch"] == 4
        seq, state = verify_checkpoint(record, workflow_id=wid)
        assert seq == 2 and state == record["state"]

    def test_tampered_state_fails_digest(self, registration, tmp_path):
        manager = LiveWorkflowManager(live_dir=tmp_path)
        wid = _drive(manager, registration, _topups(1))
        record = build_checkpoint(manager._find_entry(wid).workflow, epoch=1)
        record["state"] = {**record["state"], "budget": 1e9}
        with pytest.raises(LiveLogCorruptionError):
            verify_checkpoint(record, workflow_id=wid)

    @pytest.mark.parametrize(
        "mutation",
        [{"seq": -1}, {"seq": True}, {"state": None}, {"digest": 42}],
    )
    def test_malformed_checkpoint_is_corruption(
        self, registration, tmp_path, mutation
    ):
        manager = LiveWorkflowManager(live_dir=tmp_path)
        wid = _drive(manager, registration, _topups(1))
        record = build_checkpoint(manager._find_entry(wid).workflow, epoch=1)
        record.update(mutation)
        with pytest.raises(LiveLogCorruptionError):
            verify_checkpoint(record, workflow_id=wid)


class TestCompaction:
    def test_interval_compacts_log_to_registration_plus_checkpoint(
        self, registration, tmp_path
    ):
        manager = LiveWorkflowManager(
            live_dir=tmp_path, checkpoint_interval=3
        )
        wid = _drive(manager, registration, _topups(7))
        lines = (tmp_path / f"{wid}.jsonl").read_text().splitlines()
        # Two compactions (at seq 3 and 6) + one tail event: the log is
        # registration + checkpoint + seq-7 event, not eight records.
        kinds = [loads(line)["kind"] for line in lines]
        assert kinds == ["registration", "checkpoint", "event"]
        stats = manager.stats()
        assert stats["checkpoints"] == 2 and stats["compactions"] == 2
        assert stats["last_checkpoint_seq"] == 6

    def test_recovery_from_checkpoint_is_byte_identical(
        self, registration, tmp_path
    ):
        reference = LiveWorkflowManager(live_dir=tmp_path / "full")
        wid = _drive(reference, registration, _topups(7))
        expected = dumps(reference.status(wid))

        compacted = LiveWorkflowManager(
            live_dir=tmp_path / "ck", checkpoint_interval=3
        )
        _drive(compacted, registration, _topups(7))
        assert dumps(compacted.status(wid)) == expected
        # A cold recovery replays checkpoint + tail, not events 1..7 —
        # and must land on the exact same bytes.
        recovered = LiveWorkflowManager(live_dir=tmp_path / "ck")
        assert dumps(recovered.status(wid)) == expected

    def test_compaction_preserves_epoch_high_water_mark(
        self, registration, tmp_path
    ):
        node_a = LiveWorkflowManager(live_dir=tmp_path, node="a")
        wid = node_a.register(dict(registration))["workflow_id"]
        node_a.event(wid, {"seq": 1, "type": "topup", "amount": 1.0})
        # B takes over (epoch 2) and compacts the log down to two records.
        node_b = LiveWorkflowManager(
            live_dir=tmp_path, node="b", checkpoint_interval=1
        )
        node_b.event(wid, {"seq": 2, "type": "topup", "amount": 1.0})
        kinds = [
            loads(line)["kind"]
            for line in (tmp_path / f"{wid}.jsonl").read_text().splitlines()
        ]
        assert kinds == ["registration", "checkpoint"]
        # The fence record is gone, but the checkpoint carries epoch 2:
        # a third writer must claim 3, not 2.
        node_c = LiveWorkflowManager(live_dir=tmp_path, node="c")
        node_c.event(wid, {"seq": 3, "type": "topup", "amount": 1.0})
        assert node_c.stats()["max_epoch"] == 3

    def test_failed_compaction_falls_back_to_appended_checkpoint(
        self, registration, tmp_path
    ):
        io = FaultyLogIO(seed=3, replace_error_prob=1.0)
        manager = LiveWorkflowManager(
            live_dir=tmp_path, io=io, checkpoint_interval=2
        )
        wid = _drive(manager, registration, _topups(4))
        stats = manager.stats()
        # The snapshot still landed (appended), the rewrite did not.
        assert stats["checkpoints"] == 2 and stats["compactions"] == 0
        assert io.injected_replace_errors >= 2
        kinds = [
            loads(line)["kind"]
            for line in (tmp_path / f"{wid}.jsonl").read_text().splitlines()
        ]
        assert kinds.count("checkpoint") == 2 and kinds[0] == "registration"
        # Mid-log checkpoints replay fine on a cold recovery.
        recovered = LiveWorkflowManager(live_dir=tmp_path)
        assert dumps(recovered.status(wid)) == dumps(manager.status(wid))

    def test_corrupt_checkpoint_digest_is_corruption(
        self, registration, tmp_path
    ):
        manager = LiveWorkflowManager(live_dir=tmp_path, checkpoint_interval=1)
        wid = _drive(manager, registration, _topups(1))
        path = tmp_path / f"{wid}.jsonl"
        reg_line, ckpt_line = path.read_text().splitlines()
        record = loads(ckpt_line)
        record["state"]["budget"] = 99999.0  # bit rot
        path.write_text(reg_line + "\n" + dumps(record) + "\n")
        with pytest.raises(LiveLogCorruptionError):
            LiveWorkflowManager(live_dir=tmp_path).status(wid)


class TestRetention:
    def _complete(self, manager, registration, example_problem):
        wid = manager.register(dict(registration))["workflow_id"]
        seq = 0
        for name in example_problem.workflow.topological_order():
            seq += 1
            manager.event(
                wid,
                {"seq": seq, "type": "completed", "module": name, "duration": 1.0},
            )
        return wid

    def test_completed_workflow_archives_then_expires(
        self, registration, tmp_path, example_problem
    ):
        manager = LiveWorkflowManager(live_dir=tmp_path, retention=60.0)
        wid = self._complete(manager, registration, example_problem)
        log = tmp_path / f"{wid}.jsonl"
        assert log.exists()

        # Within the window: nothing moves.
        assert manager.enforce_retention(now=time.time() + 30) == 0
        assert log.exists()

        # Past the window: archived out of live_dir and out of memory.
        assert manager.enforce_retention(now=time.time() + 120) == 1
        assert not log.exists()
        archived = tmp_path / "archive" / f"{wid}.jsonl"
        assert archived.exists()
        assert manager.stats()["archived"] == 1
        assert manager.stats()["workflows"] == 0

        # Another full window later the archive expires too.
        assert manager.enforce_retention(now=time.time() + 300) == 1
        assert not archived.exists()
        assert manager.stats()["expired"] == 1

    def test_incomplete_workflow_is_never_archived(self, registration, tmp_path):
        manager = LiveWorkflowManager(live_dir=tmp_path, retention=1.0)
        wid = _drive(manager, registration, _topups(1))
        assert manager.enforce_retention(now=time.time() + 3600) == 0
        assert (tmp_path / f"{wid}.jsonl").exists()

    def test_retention_disabled_by_default(self, registration, tmp_path):
        manager = LiveWorkflowManager(live_dir=tmp_path)
        assert manager.enforce_retention(now=time.time() + 1e9) == 0


def _event_stream(problem, data):
    """A drawn, always-valid event stream covering every module."""
    events = []
    seq = 0

    def emit(payload):
        nonlocal seq
        seq += 1
        events.append({"seq": seq, **payload})

    failed = False
    for index, name in enumerate(problem.workflow.topological_order()):
        module = problem.workflow.module(name)
        duration = data.draw(
            st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
            label=f"duration:{name}",
        )
        if data.draw(st.booleans(), label=f"topup-before:{name}"):
            amount = data.draw(
                st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
                label=f"amount:{name}",
            )
            emit({"type": "topup", "amount": amount})
        emit({"type": "started", "module": name})
        if (
            module.is_schedulable
            and not failed
            and index >= 1
            and data.draw(st.booleans(), label=f"fail:{name}")
        ):
            failed = True
            emit({"type": "failed", "module": name, "elapsed": 0.2})
            emit({"type": "started", "module": name})
        emit({"type": "completed", "module": name, "duration": duration})
    return events


@settings(max_examples=12, deadline=None)
@given(
    pb=problems_with_budgets(max_modules=5, max_types=3),
    transfer_aware=st.booleans(),
    interval=st.integers(min_value=1, max_value=4),
    data=st.data(),
)
def test_snapshot_restore_replay_tail_is_byte_identical(
    pb, transfer_aware, interval, data, tmp_path_factory
):
    """The satellite property: recovery through a checkpoint (snapshot →
    restore → replay tail) must be byte-identical — revision, schedule,
    billed cost — to replaying the full event history, including
    transfer-aware plans and mid-stream top-ups."""
    problem, budget = pb
    registration = {
        "problem": problem_to_dict(problem),
        "budget": budget,
        "params": {"transfer_aware": transfer_aware},
    }
    events = _event_stream(problem, data)
    base = tmp_path_factory.mktemp("ckprop")

    full = LiveWorkflowManager(live_dir=base / "full")
    wid = full.register(dict(registration))["workflow_id"]
    for event in events:
        full.event(wid, dict(event))
    expected = dumps(full.status(wid))

    compacted = LiveWorkflowManager(
        live_dir=base / "ck", checkpoint_interval=interval
    )
    compacted.register(dict(registration))
    for event in events:
        compacted.event(wid, dict(event))
    assert dumps(compacted.status(wid)) == expected

    # Cold recovery over the compacted log: checkpoint restore + tail.
    recovered = LiveWorkflowManager(live_dir=base / "ck")
    assert dumps(recovered.status(wid)) == expected
    # And over the full log, for symmetry.
    replayed = LiveWorkflowManager(live_dir=base / "full")
    assert dumps(replayed.status(wid)) == expected
