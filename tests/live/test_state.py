"""Unit tests for the LiveWorkflow state machine."""

import pytest

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.exceptions import EventConflictError, LiveWorkflowError
from repro.live.state import DONE, PENDING, RUNNING, LiveEvent, LiveWorkflow
from repro.service.codec import dumps


def make_live(problem, budget, **kwargs) -> LiveWorkflow:
    plan = CriticalGreedyScheduler().solve(problem, budget)
    return LiveWorkflow("wf-test", problem, budget, plan, **kwargs)


def topo_order(problem):
    """Module names in a precedence-respecting order."""
    workflow = problem.workflow
    done: set[str] = set()
    order: list[str] = []
    names = list(workflow.module_names)
    while len(order) < len(names):
        for name in names:
            if name in done:
                continue
            if all(p in done for p in workflow.predecessors(name)):
                order.append(name)
                done.add(name)
    return order


def planned_duration(live: LiveWorkflow, module: str) -> float:
    mod = live.problem.workflow.module(module)
    if not mod.is_schedulable:
        return float(mod.fixed_time or 0.0)
    row = live.problem.matrices.row_index[module]
    return float(live._current_te[row])


def first_schedulable(live: LiveWorkflow):
    """Complete leading fixed modules; returns (module, next_seq) with the
    first schedulable module ready to start."""
    seq = 1
    for name in topo_order(live.problem):
        if live.problem.workflow.module(name).is_schedulable:
            return name, seq
        live.handle_event({"seq": seq, "type": "started", "module": name})
        live.handle_event(
            {
                "seq": seq + 1,
                "type": "completed",
                "module": name,
                "duration": planned_duration(live, name),
            }
        )
        seq += 2
    raise AssertionError("no schedulable module")


def run_to_completion(live: LiveWorkflow, drift=None, seq_start=1):
    """Feed started/completed pairs for every module, in topo order."""
    drift = drift or {}
    seq = seq_start
    last = None
    for name in topo_order(live.problem):
        last = live.handle_event({"seq": seq, "type": "started", "module": name})
        seq += 1
        duration = drift.get(name, planned_duration(live, name))
        last = live.handle_event(
            {"seq": seq, "type": "completed", "module": name, "duration": duration}
        )
        seq += 1
    return last


class TestEventParsing:
    def test_rejects_non_mapping(self):
        with pytest.raises(LiveWorkflowError):
            LiveEvent.parse([1, 2, 3])

    @pytest.mark.parametrize("seq", [0, -1, 1.5, "1", True, None])
    def test_rejects_bad_seq(self, seq):
        with pytest.raises(LiveWorkflowError):
            LiveEvent.parse({"seq": seq, "type": "topup", "amount": 1.0})

    def test_rejects_unknown_kind(self):
        with pytest.raises(LiveWorkflowError):
            LiveEvent.parse({"seq": 1, "type": "paused", "module": "a"})

    def test_module_kinds_require_module(self):
        for kind in ("started", "completed", "failed"):
            with pytest.raises(LiveWorkflowError):
                LiveEvent.parse({"seq": 1, "type": kind})

    def test_completed_requires_nonnegative_duration(self):
        with pytest.raises(LiveWorkflowError):
            LiveEvent.parse(
                {"seq": 1, "type": "completed", "module": "a", "duration": -0.5}
            )
        with pytest.raises(LiveWorkflowError):
            LiveEvent.parse({"seq": 1, "type": "completed", "module": "a"})

    def test_topup_requires_positive_amount(self):
        with pytest.raises(LiveWorkflowError):
            LiveEvent.parse({"seq": 1, "type": "topup", "amount": 0.0})
        with pytest.raises(LiveWorkflowError):
            LiveEvent.parse({"seq": 1, "type": "topup", "amount": float("nan")})

    def test_accepts_minimal_events(self):
        event = LiveEvent.parse({"seq": 3, "type": "topup", "amount": 2.5})
        assert event.seq == 3 and event.amount == 2.5
        event = LiveEvent.parse(
            {"seq": 1, "type": "started", "module": "a", "vm_type": "m1"}
        )
        assert event.vm_type == "m1"


class TestTransitions:
    def test_unknown_module_is_400(self, example_problem):
        live = make_live(example_problem, 57.0)
        with pytest.raises(LiveWorkflowError):
            live.handle_event({"seq": 1, "type": "started", "module": "nope"})

    def test_unknown_vm_type_is_400(self, example_problem):
        live = make_live(example_problem, 57.0)
        module, seq = first_schedulable(live)
        with pytest.raises(LiveWorkflowError):
            live.handle_event(
                {"seq": seq, "type": "started", "module": module, "vm_type": "z9"}
            )

    def test_start_before_predecessors_is_409(self, example_problem):
        last = topo_order(example_problem)[-1]
        live = make_live(example_problem, 57.0)
        with pytest.raises(EventConflictError):
            live.handle_event({"seq": 1, "type": "started", "module": last})

    def test_double_start_is_409(self, example_problem):
        live = make_live(example_problem, 57.0)
        first = topo_order(example_problem)[0]
        live.handle_event({"seq": 1, "type": "started", "module": first})
        with pytest.raises(EventConflictError):
            live.handle_event({"seq": 2, "type": "started", "module": first})

    def test_fail_without_running_is_409(self, example_problem):
        live = make_live(example_problem, 57.0)
        first = topo_order(example_problem)[0]
        with pytest.raises(EventConflictError):
            live.handle_event(
                {"seq": 1, "type": "failed", "module": first, "elapsed": 1.0}
            )

    def test_status_lifecycle(self, example_problem):
        live = make_live(example_problem, 57.0)
        first = topo_order(example_problem)[0]
        assert live._status[first] == PENDING
        live.handle_event({"seq": 1, "type": "started", "module": first})
        assert live._status[first] == RUNNING
        live.handle_event(
            {
                "seq": 2,
                "type": "completed",
                "module": first,
                "duration": planned_duration(live, first),
            }
        )
        assert live._status[first] == DONE


class TestIdempotency:
    def test_sequence_gap_is_409(self, example_problem):
        live = make_live(example_problem, 57.0)
        with pytest.raises(EventConflictError):
            live.handle_event({"seq": 5, "type": "topup", "amount": 1.0})

    def test_identical_replay_returns_stored_response(self, example_problem):
        live = make_live(example_problem, 57.0)
        payload = {"seq": 1, "type": "topup", "amount": 3.0}
        first = live.handle_event(dict(payload))
        replay = live.handle_event(dict(payload))
        assert replay["replayed"] is True
        assert live.budget == pytest.approx(60.0)  # applied exactly once
        body = {k: v for k, v in first.items() if k != "replayed"}
        replay_body = {k: v for k, v in replay.items() if k != "replayed"}
        assert dumps(body) == dumps(replay_body)

    def test_divergent_replay_is_409(self, example_problem):
        live = make_live(example_problem, 57.0)
        live.handle_event({"seq": 1, "type": "topup", "amount": 3.0})
        with pytest.raises(EventConflictError):
            live.handle_event({"seq": 1, "type": "topup", "amount": 4.0})

    def test_replay_window_is_bounded(self, example_problem):
        """_history keeps only the last _REPLAY_WINDOW seqs; older
        retries get a generic replayed ack instead of growing memory
        (or wedging the stream) for the workflow's lifetime."""
        from repro.live.state import _REPLAY_WINDOW

        live = make_live(example_problem, 57.0)
        total = _REPLAY_WINDOW + 5
        for seq in range(1, total + 1):
            live.handle_event({"seq": seq, "type": "topup", "amount": 0.25})
        assert len(live._history) == _REPLAY_WINDOW
        assert min(live._history) == total - _REPLAY_WINDOW + 1

        # Inside the window, replays stay digest-verified.
        recent = live.handle_event(
            {"seq": total, "type": "topup", "amount": 0.25}
        )
        assert recent["replayed"] is True
        with pytest.raises(EventConflictError):
            live.handle_event({"seq": total, "type": "topup", "amount": 9.0})

        # Beyond the window, an ancient retry gets a generic ack built
        # from current state (its digest can no longer be checked).
        budget_before = live.budget
        ancient = live.handle_event(
            {"seq": 1, "type": "topup", "amount": 0.25}
        )
        assert ancient["replayed"] is True
        assert ancient["seq"] == 1
        assert ancient["revision"] == live.revision
        assert live.budget == pytest.approx(budget_before)  # not re-applied
        assert live.last_seq == total

    def test_revision_is_monotonic(self, example_problem):
        live = make_live(example_problem, 52.0)
        seen = [live.revision]
        seq = 1
        for name in topo_order(example_problem):
            live.handle_event({"seq": seq, "type": "started", "module": name})
            seen.append(live.revision)
            seq += 1
            live.handle_event(
                {
                    "seq": seq,
                    "type": "completed",
                    "module": name,
                    "duration": 1.25 * planned_duration(live, name),
                }
            )
            seen.append(live.revision)
            seq += 1
        assert seen == sorted(seen)


class TestZeroDrift:
    def test_zero_drift_keeps_revision_zero(self, example_problem):
        for budget in (48.0, 52.0, 57.0, 64.0):
            live = make_live(example_problem, budget)
            offline = dumps(live._result_fragment(0)["schedule"])
            last = run_to_completion(live)
            assert live.revision == 0
            assert live.is_complete()
            assert last["result"]["schedule"] is not None
            assert dumps(last["result"]["schedule"]) == offline
            # Actuals equal planned bitwise, so spend == planned done cost.
            assert live.spend == live._planned_done_cost
            assert live.planning_budget == budget

    def test_zero_drift_wrf(self, wrf_problem):
        live = make_live(wrf_problem, 174.9)
        run_to_completion(live)
        assert live.revision == 0 and live.is_complete()


class TestReoptimization:
    def test_topup_triggers_upgrade(self, example_problem):
        # Start from a tight budget; a top-up to a known level must let
        # the residual re-optimizer spend it (example: 48 -> 57 budget).
        tight = make_live(example_problem, 48.0)
        baseline = tight.projected_makespan
        response = tight.handle_event({"seq": 1, "type": "topup", "amount": 9.0})
        assert response["changed"] is True
        assert tight.revision == 1
        assert tight.projected_makespan < baseline
        assert tight.projected_cost <= 57.0 + 1e-9
        # The re-optimized plan matches the offline solve at 57.
        offline = make_live(example_problem, 57.0)
        assert tight.projected_makespan == pytest.approx(
            offline.projected_makespan
        )

    def test_late_completion_charges_drift(self, example_problem):
        live = make_live(example_problem, 57.0)
        first, seq = first_schedulable(live)
        live.handle_event({"seq": seq, "type": "started", "module": first})
        planned = planned_duration(live, first)
        live.handle_event(
            {
                "seq": seq + 1,
                "type": "completed",
                "module": first,
                "duration": planned * 3.0,
            }
        )
        assert live.spend > 0.0
        assert live.projected_cost <= live.budget + 1e-9
        status = live.status_payload()
        assert status["ledger"]["cost_drift"] >= 0.0

    def test_failure_bills_sunk_cost_and_repends(self, example_problem):
        live = make_live(example_problem, 57.0)
        first, seq = first_schedulable(live)
        live.handle_event({"seq": seq, "type": "started", "module": first})
        live.handle_event(
            {"seq": seq + 1, "type": "failed", "module": first, "elapsed": 2.0}
        )
        assert live.failures == 1
        assert live.spend > 0.0
        assert live._status[first] == PENDING
        # The module can start again (the retry).
        live.handle_event({"seq": seq + 2, "type": "started", "module": first})
        assert live._status[first] == RUNNING

    def test_reconciliation_on_divergent_start(self, example_problem):
        live = make_live(example_problem, 57.0)
        first, seq = first_schedulable(live)
        row = live.problem.matrices.row_index[first]
        current = live._columns[row]
        other = (current + 1) % len(live.problem.catalog.names)
        response = live.handle_event(
            {
                "seq": seq,
                "type": "started",
                "module": first,
                "vm_type": live.problem.catalog.names[other],
            }
        )
        assert live.reconciliations == 1
        assert response["revision"] >= 1
        assert live._columns[row] == other

    def test_over_budget_flag_when_unrepairable(self, example_problem):
        live = make_live(example_problem, 48.0)
        first, seq = first_schedulable(live)
        live.handle_event({"seq": seq, "type": "started", "module": first})
        # A catastrophic failure bill no repair can absorb.
        response = live.handle_event(
            {"seq": seq + 1, "type": "failed", "module": first, "elapsed": 1000.0}
        )
        assert response["over_budget"] is True
        assert live.projected_cost > live.budget
        # A big enough top-up clears the flag.
        response = live.handle_event(
            {"seq": seq + 2, "type": "topup", "amount": live.projected_cost}
        )
        assert response["over_budget"] is False
