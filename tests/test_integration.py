"""End-to-end integration tests crossing every subsystem boundary."""

import numpy as np
import pytest

from repro import (
    CriticalGreedyScheduler,
    ExhaustiveScheduler,
    Gain3Scheduler,
    MedCCProblem,
    TransferModel,
    available_schedulers,
    get_scheduler,
)
from repro.analysis.frontier import exact_frontier, frontier_regret, heuristic_frontier
from repro.core.serialize import problem_from_dict, problem_to_dict
from repro.sim import (
    Datacenter,
    RandomFaults,
    WorkflowBroker,
    pack_schedule,
)
from repro.workloads import (
    generate_problem,
    parse_dax,
    paper_catalog,
    write_dax,
)
from repro.workloads.synthetic import montage_like_workflow


class TestFullPipelineOnGeneratedInstance:
    """generate → schedule → serialize → reload → simulate → pack → audit."""

    @pytest.fixture
    def problem(self, rng):
        return generate_problem((12, 25, 4), rng)

    def test_schedule_survives_serialization_and_simulation(self, problem):
        budget = problem.median_budget()
        result = CriticalGreedyScheduler().solve(problem, budget)
        reloaded = problem_from_dict(problem_to_dict(problem))
        again = CriticalGreedyScheduler().solve(reloaded, budget)
        assert again.schedule.assignment == result.schedule.assignment

        sim = WorkflowBroker(problem=reloaded, schedule=again.schedule).run()
        assert sim.makespan == pytest.approx(result.med)
        assert sim.total_cost == pytest.approx(result.total_cost)

    def test_packed_execution_on_finite_testbed(self, problem):
        budget = problem.median_budget()
        result = CriticalGreedyScheduler().solve(problem, budget)
        plan = pack_schedule(problem, result.schedule, mode="adjacent")
        dc = Datacenter.testbed(vmm_nodes=8, capacity_per_node=16.0)
        sim = WorkflowBroker(
            problem=problem,
            schedule=result.schedule,
            vm_plan=plan,
            datacenter=dc,
        ).run()
        assert sim.makespan == pytest.approx(result.med)
        assert sim.total_cost <= result.total_cost + 1e-9

    def test_faulty_execution_completes_and_costs_more(self, rng):
        # Uniform workloads keep module durations well under the mean
        # time-to-failure; a module longer than the MTTF can livelock
        # (realistically: it needs checkpointing, which the model lacks).
        problem = generate_problem(
            (12, 25, 4), rng, workload_distribution="uniform"
        )
        budget = problem.median_budget()
        result = CriticalGreedyScheduler().solve(problem, budget)
        clean = WorkflowBroker(problem=problem, schedule=result.schedule).run()
        faulty = WorkflowBroker(
            problem=problem,
            schedule=result.schedule,
            faults=RandomFaults(rate=0.02, seed=9),
        ).run()
        assert faulty.makespan >= clean.makespan - 1e-9
        assert faulty.total_cost >= clean.total_cost - 1e-9


class TestDaxToScheduleToSimulation:
    def test_montage_roundtrip_through_dax(self):
        workflow = montage_like_workflow(5)
        reparsed = parse_dax(write_dax(workflow))
        problem = MedCCProblem(workflow=reparsed, catalog=paper_catalog(4))
        result = CriticalGreedyScheduler().solve(
            problem, problem.median_budget()
        )
        sim = WorkflowBroker(problem=problem, schedule=result.schedule).run()
        assert sim.makespan == pytest.approx(result.med)


class TestAllRegisteredSchedulersEndToEnd:
    def test_every_scheduler_solves_the_example(self, example_problem):
        skip_feasibility = {"fastest", "heft"}  # budget-oblivious by design
        for name in available_schedulers():
            if name == "pipeline-dp":
                continue  # requires a chain workflow
            scheduler = get_scheduler(name)
            result = scheduler.solve(example_problem, 57.0)
            if name == "reuse-reinvest":
                # Feasible in the lease-billed sense, by design.
                assert result.extras["packed_cost"] <= 57.0 + 1e-9
            elif name not in skip_feasibility:
                result.assert_feasible()
            # Every result simulates to its analytical values.
            sim = WorkflowBroker(
                problem=example_problem, schedule=result.schedule
            ).run()
            assert sim.makespan == pytest.approx(result.med)

    def test_optimal_dominates_all_on_small_instance(self, diamond_problem):
        budget = diamond_problem.median_budget()
        opt = ExhaustiveScheduler().solve(diamond_problem, budget).med
        for name in available_schedulers():
            if name in ("fastest", "heft", "pipeline-dp"):
                continue
            assert get_scheduler(name).solve(diamond_problem, budget).med >= (
                opt - 1e-9
            )


class TestFrontierConsistencyWithSweeps:
    def test_cg_frontier_regret_small_on_example(self, example_problem):
        exact = exact_frontier(example_problem)
        cg = heuristic_frontier(
            example_problem, CriticalGreedyScheduler(), levels=32
        )
        gain = heuristic_frontier(example_problem, Gain3Scheduler(), levels=32)
        assert frontier_regret(cg, exact) <= 0.10
        assert frontier_regret(cg, exact) <= frontier_regret(gain, exact) + 1e-9


class TestMulticloudEndToEnd:
    def test_transfer_model_consistency_between_planner_and_simulator(self, rng):
        problem = generate_problem((10, 20, 3), rng)
        slow = MedCCProblem(
            workflow=problem.workflow,
            catalog=problem.catalog,
            transfers=TransferModel(bandwidth=1.5, latency=0.25, unit_cost=0.2),
        )
        result = CriticalGreedyScheduler().solve(slow, slow.median_budget())
        result.assert_feasible()
        sim = WorkflowBroker(problem=slow, schedule=result.schedule).run()
        assert sim.makespan == pytest.approx(result.med)
        assert sim.total_cost == pytest.approx(result.total_cost)
