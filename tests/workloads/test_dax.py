"""Tests for Pegasus DAX workflow I/O."""

import pytest

from repro.exceptions import WorkflowValidationError
from repro.workloads.dax import parse_dax, parse_dax_file, write_dax, write_dax_file
from repro.workloads.synthetic import montage_like_workflow

SAMPLE_DAX = """<?xml version="1.0" encoding="UTF-8"?>
<adag xmlns="http://pegasus.isi.edu/schema/DAX" version="2.1"
      name="mini-montage" jobCount="4">
  <job id="ID1" namespace="montage" name="mProject" runtime="30.5">
    <uses file="img1.fits" link="input" size="100"/>
    <uses file="proj1.fits" link="output" size="250"/>
  </job>
  <job id="ID2" namespace="montage" name="mProject" runtime="28.0">
    <uses file="img2.fits" link="input" size="100"/>
    <uses file="proj2.fits" link="output" size="240"/>
  </job>
  <job id="ID3" namespace="montage" name="mDiffFit" runtime="5.0">
    <uses file="proj1.fits" link="input" size="250"/>
    <uses file="proj2.fits" link="input" size="240"/>
    <uses file="diff.fits" link="output" size="60"/>
  </job>
  <job id="ID4" namespace="montage" name="mAdd">
    <uses file="diff.fits" link="input" size="60"/>
  </job>
  <child ref="ID3">
    <parent ref="ID1"/>
    <parent ref="ID2"/>
  </child>
  <child ref="ID4">
    <parent ref="ID3"/>
  </child>
</adag>
"""


class TestParse:
    def test_jobs_become_modules(self):
        wf = parse_dax(SAMPLE_DAX)
        assert set(wf.schedulable_names) == {"ID1", "ID2", "ID3", "ID4"}
        assert wf.module("ID1").workload == pytest.approx(30.5)

    def test_reference_power_scales_workloads(self):
        wf = parse_dax(SAMPLE_DAX, reference_power=4.0)
        assert wf.module("ID2").workload == pytest.approx(112.0)

    def test_default_runtime_for_missing_attribute(self):
        wf = parse_dax(SAMPLE_DAX, default_runtime=7.5)
        assert wf.module("ID4").workload == pytest.approx(7.5)

    def test_edges_and_data_sizes(self):
        wf = parse_dax(SAMPLE_DAX)
        assert wf.dependency("ID1", "ID3").data_size == pytest.approx(250.0)
        assert wf.dependency("ID2", "ID3").data_size == pytest.approx(240.0)
        assert wf.dependency("ID3", "ID4").data_size == pytest.approx(60.0)

    def test_normalized_entry_exit(self):
        wf = parse_dax(SAMPLE_DAX)
        # Two sources (ID1, ID2) -> a virtual entry is added.
        assert not wf.module(wf.entry).is_schedulable

    def test_invalid_xml_rejected(self):
        with pytest.raises(WorkflowValidationError, match="invalid DAX"):
            parse_dax("<adag><job")

    def test_non_adag_root_rejected(self):
        with pytest.raises(WorkflowValidationError, match="adag"):
            parse_dax("<workflow/>")

    def test_unknown_refs_rejected(self):
        bad = SAMPLE_DAX.replace('ref="ID3">', 'ref="GHOST">', 1)
        with pytest.raises(WorkflowValidationError, match="not a job"):
            parse_dax(bad)

    def test_bad_runtime_rejected(self):
        bad = SAMPLE_DAX.replace('runtime="30.5"', 'runtime="fast"')
        with pytest.raises(WorkflowValidationError, match="invalid runtime"):
            parse_dax(bad)

    def test_namespace_less_document_accepted(self):
        plain = SAMPLE_DAX.replace(
            '<adag xmlns="http://pegasus.isi.edu/schema/DAX" version="2.1"\n      ',
            "<adag ",
        )
        wf = parse_dax(plain)
        assert len(wf.schedulable_names) == 4


class TestWriteRoundtrip:
    def test_roundtrip_preserves_structure(self):
        original = montage_like_workflow(4)
        clone = parse_dax(write_dax(original))
        assert set(clone.schedulable_names) == set(original.schedulable_names)
        original_edges = {
            e.key
            for e in original.edges()
            if original.module(e.src).is_schedulable
            and original.module(e.dst).is_schedulable
        }
        clone_edges = {
            e.key
            for e in clone.edges()
            if clone.module(e.src).is_schedulable
            and clone.module(e.dst).is_schedulable
        }
        assert clone_edges == original_edges
        for name in original.schedulable_names:
            assert clone.module(name).workload == pytest.approx(
                original.module(name).workload
            )

    def test_roundtrip_preserves_edge_sizes(self):
        original = montage_like_workflow(3)
        clone = parse_dax(write_dax(original))
        for edge in original.edges():
            if (
                original.module(edge.src).is_schedulable
                and original.module(edge.dst).is_schedulable
            ):
                assert clone.dependency(edge.src, edge.dst).data_size == (
                    pytest.approx(edge.data_size)
                )

    def test_file_io(self, tmp_path):
        original = montage_like_workflow(3)
        path = write_dax_file(original, tmp_path / "montage.dax")
        clone = parse_dax_file(path)
        assert set(clone.schedulable_names) == set(original.schedulable_names)

    def test_parsed_workflow_is_schedulable(self):
        from repro.algorithms.critical_greedy import CriticalGreedyScheduler
        from repro.core.problem import MedCCProblem
        from repro.workloads.generator import paper_catalog

        wf = parse_dax(SAMPLE_DAX)
        problem = MedCCProblem(workflow=wf, catalog=paper_catalog(3))
        result = CriticalGreedyScheduler().solve(problem, problem.cmax)
        result.assert_feasible()


from hypothesis import given, settings

from tests.conftest import medcc_problems


@settings(max_examples=25, deadline=None)
@given(problem=medcc_problems(max_modules=6, max_types=3))
def test_dax_roundtrip_property(problem):
    """Property: DAX write/parse preserves schedulable structure exactly."""
    original = problem.workflow
    clone = parse_dax(write_dax(original))
    assert set(clone.schedulable_names) == set(original.schedulable_names)
    for name in original.schedulable_names:
        assert clone.module(name).workload == pytest.approx(
            original.module(name).workload
        )
    schedulable = set(original.schedulable_names)
    original_edges = {
        e.key for e in original.edges() if set(e.key) <= schedulable
    }
    clone_edges = {e.key for e in clone.edges() if set(e.key) <= schedulable}
    assert clone_edges == original_edges
