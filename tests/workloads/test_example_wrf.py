"""Tests pinning the reconstructed example and WRF instances to the paper."""

import pytest

from repro.workloads.example import (
    EXAMPLE_BUDGET_BANDS,
    EXAMPLE_WORKLOADS,
    example_catalog,
    example_problem,
    example_workflow,
)
from repro.workloads.wrf import (
    WRF_BUDGETS,
    WRF_RATES,
    WRF_TE,
    wrf_catalog,
    wrf_problem,
    wrf_workflow,
)


class TestExampleInstance:
    def test_catalog_matches_table1(self):
        cat = example_catalog()
        assert cat.powers == (3.0, 15.0, 30.0)
        assert cat.rates == (1.0, 4.0, 8.0)

    def test_workload_cost_structure(self):
        # The derivation constraints from the paper's text (see module doc):
        # least-cost picks VT2 for w1/w2/w5 and VT1 for w3/w4/w6 with
        # Cmin=48, and the per-module upgrade costs to VT3 are
        # w4:+1, w3:+1, w6:+2, w2:+4, w5:+4.
        problem = example_problem()
        matrices = problem.matrices
        lc = problem.least_cost_schedule()
        deltas = {
            m: matrices.cost(m, 2) - matrices.cost(m, lc[m])
            for m in matrices.module_names
        }
        assert deltas == {
            "w1": pytest.approx(4.0),
            "w2": pytest.approx(4.0),
            "w3": pytest.approx(1.0),
            "w4": pytest.approx(1.0),
            "w5": pytest.approx(4.0),
            "w6": pytest.approx(2.0),
        }

    def test_entry_exit_fixed_one_hour(self):
        wf = example_workflow()
        assert wf.module("w0").fixed_time == 1.0
        assert wf.module("w7").fixed_time == 1.0

    def test_six_computing_modules(self):
        wf = example_workflow()
        assert wf.schedulable_names == ("w1", "w2", "w3", "w4", "w5", "w6")
        assert EXAMPLE_WORKLOADS == (15.0, 40.0, 20.0, 20.0, 40.0, 17.0)

    def test_fastest_schedule_cost_64(self):
        problem = example_problem()
        assert problem.cmax == pytest.approx(64.0)

    def test_band_table_covers_full_range(self):
        lowers = [b[0] for b in EXAMPLE_BUDGET_BANDS]
        assert lowers == [48.0, 49.0, 50.0, 52.0, 56.0, 60.0]
        assert EXAMPLE_BUDGET_BANDS[-1][1] is None


class TestWRFInstance:
    def test_te_matrix_matches_table6(self):
        assert WRF_TE["w5"] == (752.6, 241.6, 143.2)
        assert WRF_TE["w1"] == (43.8, 19.2, 12.0)
        matrices = wrf_problem().matrices
        assert matrices.time("w6", 1) == pytest.approx(123.1)

    def test_rates_match_table5(self):
        assert WRF_RATES == (0.1, 0.4, 0.8)
        assert wrf_catalog().rates == WRF_RATES

    def test_rate_per_power_near_constant(self):
        # Proportional pricing as published: 0.1/0.73 ~ 0.4/2.93 ~ 0.8/5.86
        # (equal to within the rounding of the published CPU clocks).
        cat = wrf_catalog()
        ratios = [t.rate / t.power for t in cat]
        assert max(ratios) / min(ratios) == pytest.approx(1.0, abs=0.01)

    def test_cost_range_exact(self):
        problem = wrf_problem()
        assert problem.cmin == pytest.approx(125.9)
        assert problem.cmax == pytest.approx(243.6)

    def test_budgets_inside_range(self):
        problem = wrf_problem()
        for budget in WRF_BUDGETS:
            assert problem.cmin < budget < problem.cmax

    def test_topology_realizes_pinned_paths(self):
        # The Table VII MED decompositions pin w1->w4->w6, w2->w4->w5 and
        # w4 -> {w5, w6} (see repro.workloads.wrf docstring).
        wf = wrf_workflow()
        assert "w4" in wf.successors("w1")
        assert "w4" in wf.successors("w2")
        assert set(wf.successors("w4")) == {"w5", "w6"}

    def test_six_aggregate_modules(self):
        wf = wrf_workflow()
        assert len(wf.schedulable_names) == 6
        assert wf.entry == "w0"
        assert wf.exit == "w7"

    def test_least_cost_schedule_is_all_vt1(self):
        problem = wrf_problem()
        lc = problem.least_cost_schedule()
        assert all(lc[m] == 0 for m in problem.matrices.module_names)
