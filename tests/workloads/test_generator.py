"""Tests for the paper's random workflow generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import WorkflowValidationError
from repro.workloads.generator import (
    PAPER_PROBLEM_SIZES,
    SMALL_PROBLEM_SIZES,
    RandomWorkflowSpec,
    generate_problem,
    generate_workflow,
    paper_catalog,
)


class TestSpecValidation:
    def test_valid_spec(self):
        RandomWorkflowSpec(num_modules=5, num_edges=6)

    def test_edge_count_bounds(self):
        with pytest.raises(WorkflowValidationError):
            RandomWorkflowSpec(num_modules=5, num_edges=11)  # > 10 max
        with pytest.raises(WorkflowValidationError):
            RandomWorkflowSpec(num_modules=5, num_edges=-1)

    def test_zero_modules_rejected(self):
        with pytest.raises(WorkflowValidationError):
            RandomWorkflowSpec(num_modules=0, num_edges=0)

    def test_invalid_distribution(self):
        with pytest.raises(WorkflowValidationError):
            RandomWorkflowSpec(num_modules=3, num_edges=2, workload_distribution="zipf")

    def test_invalid_workload_range(self):
        with pytest.raises(WorkflowValidationError):
            RandomWorkflowSpec(num_modules=3, num_edges=2, workload_range=(0.0, 5.0))
        with pytest.raises(WorkflowValidationError):
            RandomWorkflowSpec(num_modules=3, num_edges=2, workload_range=(5.0, 1.0))

    def test_invalid_sigma(self):
        with pytest.raises(WorkflowValidationError):
            RandomWorkflowSpec(num_modules=3, num_edges=2, workload_sigma=0.0)

    def test_draw_uniform_within_range(self):
        spec = RandomWorkflowSpec(
            num_modules=50,
            num_edges=100,
            workload_distribution="uniform",
            workload_range=(10.0, 20.0),
        )
        draws = spec.draw_workloads(np.random.default_rng(0))
        assert draws.shape == (48,)
        assert (draws >= 10.0).all() and (draws <= 20.0).all()

    def test_draw_lognormal_positive(self):
        spec = RandomWorkflowSpec(num_modules=100, num_edges=200)
        draws = spec.draw_workloads(np.random.default_rng(0))
        assert (draws > 0).all()


class TestGeneratedStructure:
    @pytest.mark.parametrize("size", SMALL_PROBLEM_SIZES + PAPER_PROBLEM_SIZES[:8])
    def test_exact_problem_size(self, size, rng):
        m, edges, n = size
        problem = generate_problem(size, rng)
        assert problem.problem_size == size
        assert len(problem.workflow.schedulable_names) == m - 2
        assert len(problem.catalog) == n

    def test_single_entry_and_exit(self, rng):
        wf = generate_workflow(RandomWorkflowSpec(num_modules=10, num_edges=20), rng)
        assert wf.entry == "w0"
        assert wf.exit == "w9"
        assert not wf.module(wf.entry).is_schedulable
        assert not wf.module(wf.exit).is_schedulable

    def test_determinism_given_seed(self):
        spec = RandomWorkflowSpec(num_modules=8, num_edges=15)
        a = generate_workflow(spec, np.random.default_rng(5))
        b = generate_workflow(spec, np.random.default_rng(5))
        assert a.to_dict() == b.to_dict()

    def test_different_seeds_differ(self):
        spec = RandomWorkflowSpec(num_modules=8, num_edges=15)
        a = generate_workflow(spec, np.random.default_rng(1))
        b = generate_workflow(spec, np.random.default_rng(2))
        assert a.to_dict() != b.to_dict()

    def test_minimum_edge_count_reachable(self, rng):
        # m-1 edges is the minimum keeping every module connected.
        wf = generate_workflow(RandomWorkflowSpec(num_modules=6, num_edges=5), rng)
        assert wf.problem_size(1)[1] == 5

    def test_maximum_edge_count(self, rng):
        wf = generate_workflow(RandomWorkflowSpec(num_modules=5, num_edges=10), rng)
        assert wf.problem_size(1)[1] == 10

    def test_below_minimum_edge_count_rejected(self):
        with pytest.raises(WorkflowValidationError):
            RandomWorkflowSpec(num_modules=6, num_edges=4)

    def test_tiny_m_rejected(self):
        with pytest.raises(WorkflowValidationError):
            RandomWorkflowSpec(num_modules=2, num_edges=1)


class TestPaperCatalog:
    def test_arithmetic_default(self):
        cat = paper_catalog(4)
        assert cat.powers == (1.0, 2.0, 3.0, 4.0)
        assert cat.rates == (1.0, 2.0, 3.0, 4.0)

    def test_doubling(self):
        cat = paper_catalog(4, scaling="doubling")
        assert cat.powers == (1.0, 2.0, 4.0, 8.0)

    def test_unknown_scaling_rejected(self):
        with pytest.raises(WorkflowValidationError):
            paper_catalog(3, scaling="fib")

    def test_price_proportional_to_power(self):
        cat = paper_catalog(5, base_power=2.0, base_price=0.3)
        for vt in cat:
            assert vt.rate / vt.power == pytest.approx(0.15)


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(min_value=3, max_value=20),
    extra=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_generator_property(m, extra, seed):
    """Property: requested (m, |Ew|) honoured, DAG invariants hold."""
    lo = m - 1
    hi = m * (m - 1) // 2
    edges = int(round(lo + extra * (hi - lo)))
    spec = RandomWorkflowSpec(num_modules=m, num_edges=edges)
    wf = generate_workflow(spec, np.random.default_rng(seed))
    assert len(wf.schedulable_names) == m - 2
    assert wf.problem_size(3) == (m, edges, 3)
    # All schedulable workloads positive.
    assert all(wf.module(n).workload > 0 for n in wf.schedulable_names)
