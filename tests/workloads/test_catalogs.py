"""Tests for the real-world catalog presets."""

import pytest

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.core.problem import MedCCProblem
from repro.workloads.catalogs import (
    ec2_2013_catalog,
    ec2_free_tier_catalog,
    paper_example_catalog,
)
from repro.workloads.synthetic import fork_join_workflow


class TestEC2Catalog:
    def test_full_catalog_contents(self):
        cat = ec2_2013_catalog()
        assert len(cat) == 6
        assert cat["m1.small"].rate == pytest.approx(0.060)
        assert cat["c1.xlarge"].power == pytest.approx(20.0)

    def test_family_filter(self):
        m1 = ec2_2013_catalog(families=("m1",))
        assert m1.names == ("m1.small", "m1.medium", "m1.large", "m1.xlarge")
        c1 = ec2_2013_catalog(families=("c1",))
        assert len(c1) == 2

    def test_m1_family_prices_linearly_per_ecu(self):
        m1 = ec2_2013_catalog(families=("m1",))
        ratios = {round(t.rate / t.power, 6) for t in m1}
        assert ratios == {0.06}

    def test_c1_family_is_better_value(self):
        cat = ec2_2013_catalog()
        m1_value = cat["m1.small"].rate / cat["m1.small"].power
        c1_value = cat["c1.xlarge"].rate / cat["c1.xlarge"].power
        assert c1_value < m1_value

    def test_startup_time_applied(self):
        cat = ec2_2013_catalog(startup_time=45.0)
        assert all(t.startup_time == 45.0 for t in cat)

    def test_schedulable_end_to_end(self):
        problem = MedCCProblem(
            workflow=fork_join_workflow(4, base_workload=12.0),
            catalog=ec2_2013_catalog(),
        )
        result = CriticalGreedyScheduler().solve(
            problem, problem.median_budget()
        )
        result.assert_feasible()
        # With c1.xlarge dominating on value, the fastest type shows up in
        # well-funded schedules.
        fastest = CriticalGreedyScheduler().solve(problem, problem.cmax)
        names = set(
            fastest.schedule.as_type_names(problem.catalog.names).values()
        )
        assert "c1.xlarge" in names


class TestOtherPresets:
    def test_free_tier(self):
        cat = ec2_free_tier_catalog()
        assert cat.cheapest() == cat.index_of("t1.micro")
        assert cat.fastest() == cat.index_of("m1.small")

    def test_paper_example_alias(self):
        assert paper_example_catalog().powers == (3.0, 15.0, 30.0)
