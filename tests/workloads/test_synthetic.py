"""Tests for the synthetic workflow topology templates."""

import pytest

from repro.core.problem import MedCCProblem
from repro.exceptions import WorkflowValidationError
from repro.workloads.generator import paper_catalog
from repro.workloads.synthetic import (
    cybershake_like_workflow,
    diamond_workflow,
    epigenomics_like_workflow,
    fork_join_workflow,
    layered_workflow,
    montage_like_workflow,
    pipeline_workflow,
)


class TestPipeline:
    def test_shape(self):
        wf = pipeline_workflow(5)
        assert len(wf.schedulable_names) == 5
        # Chain: every schedulable module has at most one succ/pred.
        for name in wf.schedulable_names:
            assert len(wf.successors(name)) <= 1

    def test_single_module(self):
        wf = pipeline_workflow(1)
        assert len(wf.schedulable_names) == 1

    def test_invalid_length(self):
        with pytest.raises(WorkflowValidationError):
            pipeline_workflow(0)

    def test_deterministic(self):
        assert pipeline_workflow(4).to_dict() == pipeline_workflow(4).to_dict()


class TestForkJoin:
    def test_width(self):
        wf = fork_join_workflow(6)
        assert len(wf.successors("split")) == 6
        assert len(wf.predecessors("join")) == 6

    def test_invalid_width(self):
        with pytest.raises(WorkflowValidationError):
            fork_join_workflow(0)


class TestDiamond:
    def test_structure(self):
        wf = diamond_workflow()
        assert set(wf.successors("a")) == {"b", "c"}
        assert set(wf.predecessors("d")) == {"b", "c"}


class TestLayered:
    def test_sparse_layers(self):
        wf = layered_workflow(3, 4)
        assert len(wf.schedulable_names) == 12

    def test_dense_layers_edge_count(self):
        wf = layered_workflow(2, 3, dense=True)
        # 3x3 inter-layer edges + entry/exit attachments (3 each).
        assert wf.num_edges == 9 + 6

    def test_invalid_dimensions(self):
        with pytest.raises(WorkflowValidationError):
            layered_workflow(0, 3)
        with pytest.raises(WorkflowValidationError):
            layered_workflow(3, 0)


class TestPegasusShapes:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: montage_like_workflow(6),
            lambda: epigenomics_like_workflow(4),
            lambda: cybershake_like_workflow(5),
        ],
    )
    def test_valid_and_schedulable(self, factory):
        wf = factory()
        problem = MedCCProblem(workflow=wf, catalog=paper_catalog(3))
        assert problem.cmin <= problem.cmax
        # Full stack exercise: CG runs end to end.
        from repro.algorithms.critical_greedy import CriticalGreedyScheduler

        result = CriticalGreedyScheduler().solve(problem, problem.cmax)
        result.assert_feasible()

    def test_montage_degree_validation(self):
        with pytest.raises(WorkflowValidationError):
            montage_like_workflow(1)

    def test_epigenomics_lane_count(self):
        wf = epigenomics_like_workflow(3)
        # 3 lanes x 4 stages + merge + qc.
        assert len(wf.schedulable_names) == 14

    def test_cybershake_width(self):
        wf = cybershake_like_workflow(4)
        # 2 SGT + 8 seis + 8 peak + hazard.
        assert len(wf.schedulable_names) == 19

    def test_cybershake_validation(self):
        with pytest.raises(WorkflowValidationError):
            cybershake_like_workflow(0)


class TestLigo:
    def test_structure(self):
        from repro.workloads.synthetic import ligo_like_workflow

        wf = ligo_like_workflow(3)
        # 4 modules per segment + the coincidence stage.
        assert len(wf.schedulable_names) == 13
        assert len(wf.predecessors("coincidence")) == 3
        # Each segment is a 4-stage chain into the coincidence test.
        assert wf.successors("tmpltbank0") == ("inspiral1_0",)
        assert wf.successors("inspiral2_1") == ("coincidence",)

    def test_validation(self):
        from repro.workloads.synthetic import ligo_like_workflow

        with pytest.raises(WorkflowValidationError):
            ligo_like_workflow(0)

    def test_schedulable_end_to_end(self):
        from repro.algorithms.critical_greedy import CriticalGreedyScheduler
        from repro.workloads.synthetic import ligo_like_workflow

        problem = MedCCProblem(
            workflow=ligo_like_workflow(4), catalog=paper_catalog(4)
        )
        result = CriticalGreedyScheduler().solve(
            problem, problem.median_budget()
        )
        result.assert_feasible()

    def test_linear_clustering_collapses_segment_chains(self):
        from repro.clustering import apply_linear_clustering
        from repro.workloads.synthetic import ligo_like_workflow

        wf = ligo_like_workflow(3)
        clustered = apply_linear_clustering(wf)
        # Each segment chain collapses to one aggregate; coincidence stays.
        assert len(clustered.schedulable_names) == 4
