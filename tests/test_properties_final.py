"""Cross-cutting property tests tying the subsystems together."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialize import problem_from_dict, problem_to_dict

from tests.conftest import medcc_problems, problems_with_budgets


@settings(max_examples=30, deadline=None)
@given(problem=medcc_problems())
def test_serialization_roundtrip_property(problem):
    """Property: serialize/deserialize preserves all scheduling behaviour."""
    clone = problem_from_dict(problem_to_dict(problem))
    assert clone.cmin == pytest.approx(problem.cmin)
    assert clone.cmax == pytest.approx(problem.cmax)
    lc = problem.least_cost_schedule()
    lc_clone = clone.least_cost_schedule()
    assert lc_clone.assignment == lc.assignment
    assert clone.makespan_of(lc_clone) == pytest.approx(
        problem.makespan_of(lc)
    )


@settings(max_examples=30, deadline=None)
@given(pb=problems_with_budgets(max_modules=6, max_types=3))
def test_cost_accounting_is_consistent_everywhere(pb):
    """Property: cost_of == evaluate().total_cost == simulated bill."""
    from repro.algorithms.critical_greedy import CriticalGreedyScheduler
    from repro.sim.broker import WorkflowBroker

    problem, budget = pb
    result = CriticalGreedyScheduler().solve(problem, budget)
    assert problem.cost_of(result.schedule) == pytest.approx(
        result.evaluation.total_cost
    )
    sim = WorkflowBroker(problem=problem, schedule=result.schedule).run()
    assert sim.total_cost == pytest.approx(result.evaluation.total_cost)


@settings(max_examples=25, deadline=None)
@given(
    pb=problems_with_budgets(max_modules=5, max_types=3),
    extra=st.floats(min_value=0.0, max_value=100.0),
)
def test_exhaustive_is_monotone_in_budget(pb, extra):
    """Property: the exact optimum never worsens when the budget grows.

    (Greedy heuristics do not have this property — see the robustness
    experiment notes — but the exhaustive optimum must.)
    """
    from repro.algorithms.exhaustive import ExhaustiveScheduler

    problem, budget = pb
    opt = ExhaustiveScheduler()
    assert (
        opt.solve(problem, budget + extra).med
        <= opt.solve(problem, budget).med + 1e-9
    )


@settings(max_examples=25, deadline=None)
@given(pb=problems_with_budgets(max_modules=6, max_types=3))
def test_clustered_problem_remains_schedulable(pb):
    """Property: clustering composes with scheduling and simulation."""
    from repro.algorithms.critical_greedy import CriticalGreedyScheduler
    from repro.clustering import apply_linear_clustering
    from repro.core.problem import MedCCProblem
    from repro.sim.broker import WorkflowBroker

    problem, _ = pb
    clustered = MedCCProblem(
        workflow=apply_linear_clustering(problem.workflow),
        catalog=problem.catalog,
        billing=problem.billing,
    )
    result = CriticalGreedyScheduler().solve(
        clustered, clustered.median_budget()
    )
    result.assert_feasible()
    sim = WorkflowBroker(problem=clustered, schedule=result.schedule).run()
    assert sim.makespan == pytest.approx(result.med)


@settings(max_examples=20, deadline=None)
@given(pb=problems_with_budgets(max_modules=5, max_types=3))
def test_dax_roundtrip_preserves_optimal_med(pb):
    """Property: DAX export/import does not change the exact optimum."""
    from repro.algorithms.exhaustive import ExhaustiveScheduler
    from repro.core.problem import MedCCProblem
    from repro.workloads.dax import parse_dax, write_dax

    problem, budget = pb
    reparsed = MedCCProblem(
        workflow=parse_dax(write_dax(problem.workflow)),
        catalog=problem.catalog,
        billing=problem.billing,
    )
    opt = ExhaustiveScheduler()
    # Budget ranges coincide (same workloads/catalog), so compare at the
    # original's budget clamped into the clone's range.
    budget = max(budget, reparsed.cmin)
    assert opt.solve(reparsed, budget).med == pytest.approx(
        opt.solve(problem, budget).med
    )