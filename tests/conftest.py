"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.module import DataDependency, Module
from repro.core.problem import MedCCProblem
from repro.core.vm import VMType, VMTypeCatalog
from repro.core.workflow import Workflow
from repro.workloads.example import example_problem as _example_problem
from repro.workloads.wrf import wrf_problem as _wrf_problem


@pytest.fixture(autouse=True, scope="session")
def _lint_validate_scheduler_results():
    """Lint-check every registered scheduler's output for the whole suite.

    This is the repro.lint debug hook (docs/static_analysis.md): any
    solve() returning an over-budget, ill-covered or inconsistently-costed
    schedule raises LintError instead of silently corrupting a test.
    """
    from repro.algorithms.base import set_result_validation

    previous = set_result_validation(True)
    yield
    set_result_validation(previous)


@pytest.fixture
def example_problem() -> MedCCProblem:
    """The paper's reconstructed numerical example (Section V-B)."""
    return _example_problem()


@pytest.fixture
def wrf_problem() -> MedCCProblem:
    """The WRF testbed instance (Tables V/VI)."""
    return _wrf_problem()


@pytest.fixture
def tiny_catalog() -> VMTypeCatalog:
    """A 3-type catalog with simple numbers for hand calculations."""
    return VMTypeCatalog(
        [
            VMType(name="S", power=1.0, rate=1.0),
            VMType(name="M", power=2.0, rate=2.5),
            VMType(name="L", power=4.0, rate=6.0),
        ]
    )


@pytest.fixture
def chain_workflow() -> Workflow:
    """a -> b -> c with fixed entry/exit staging modules."""
    return Workflow(
        [
            Module("in", fixed_time=0.0),
            Module("a", workload=4.0),
            Module("b", workload=8.0),
            Module("c", workload=2.0),
            Module("out", fixed_time=0.0),
        ],
        [
            DataDependency("in", "a", data_size=1.0),
            DataDependency("a", "b", data_size=2.0),
            DataDependency("b", "c", data_size=3.0),
            DataDependency("c", "out", data_size=1.0),
        ],
        name="chain",
    )


@pytest.fixture
def diamond_problem(tiny_catalog: VMTypeCatalog) -> MedCCProblem:
    """A 4-module diamond instance on the tiny catalog."""
    workflow = Workflow(
        [
            Module("a", workload=4.0),
            Module("b", workload=8.0),
            Module("c", workload=2.0),
            Module("d", workload=4.0),
        ],
        [
            DataDependency("a", "b"),
            DataDependency("a", "c"),
            DataDependency("b", "d"),
            DataDependency("c", "d"),
        ],
        name="diamond",
    )
    return MedCCProblem(workflow=workflow, catalog=tiny_catalog)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for test reproducibility."""
    return np.random.default_rng(12345)


# --------------------------------------------------------------------- #
# Hypothesis strategies (shared by the property-based tests)
# --------------------------------------------------------------------- #


def random_dag_problem(
    draw,
    *,
    max_modules: int = 7,
    max_types: int = 4,
) -> MedCCProblem:
    """Draw a small random MED-CC instance (hypothesis composite body)."""
    m = draw(st.integers(min_value=1, max_value=max_modules))
    n = draw(st.integers(min_value=1, max_value=max_types))
    workloads = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=60.0, allow_nan=False),
            min_size=m,
            max_size=m,
        )
    )
    # Forward edges over a random order: each pair included by a coin flip.
    edge_flags = draw(
        st.lists(st.booleans(), min_size=m * (m - 1) // 2, max_size=m * (m - 1) // 2)
    )
    powers = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=16.0, allow_nan=False),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    rates = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )

    modules = [Module("src", fixed_time=0.0)]
    modules += [Module(f"m{i}", workload=workloads[i]) for i in range(m)]
    modules.append(Module("dst", fixed_time=0.0))
    edges = []
    flag_idx = 0
    has_pred = [False] * m
    has_succ = [False] * m
    for i in range(m):
        for j in range(i + 1, m):
            if edge_flags[flag_idx]:
                edges.append(DataDependency(f"m{i}", f"m{j}"))
                has_pred[j] = True
                has_succ[i] = True
            flag_idx += 1
    for i in range(m):
        if not has_pred[i]:
            edges.append(DataDependency("src", f"m{i}"))
        if not has_succ[i]:
            edges.append(DataDependency(f"m{i}", "dst"))
    workflow = Workflow(modules, edges, name="hypothesis-dag")
    catalog = VMTypeCatalog(
        [
            VMType(name=f"T{k}", power=powers[k], rate=rates[k])
            for k in range(n)
        ]
    )
    return MedCCProblem(workflow=workflow, catalog=catalog)


@st.composite
def medcc_problems(draw, max_modules: int = 7, max_types: int = 4):
    """Strategy: small random MED-CC instances."""
    return random_dag_problem(draw, max_modules=max_modules, max_types=max_types)


@st.composite
def problems_with_budgets(draw, max_modules: int = 7, max_types: int = 4):
    """Strategy: (problem, feasible budget) pairs."""
    problem = random_dag_problem(draw, max_modules=max_modules, max_types=max_types)
    frac = draw(st.floats(min_value=0.0, max_value=1.2))
    lo, hi = problem.budget_range()
    return problem, lo + frac * (hi - lo)
