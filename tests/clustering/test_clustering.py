"""Tests for workflow clustering (merge + strategies + WRF grouping)."""

import pytest
from hypothesis import given, settings

from repro.clustering import (
    apply_horizontal_clustering,
    apply_linear_clustering,
    horizontal_clusters,
    linear_clusters,
    merge_modules,
)
from repro.core.module import DataDependency, Module
from repro.core.workflow import Workflow
from repro.exceptions import WorkflowValidationError
from repro.workloads.synthetic import (
    cybershake_like_workflow,
    epigenomics_like_workflow,
    pipeline_workflow,
)
from repro.workloads.wrf import (
    WRF_GROUPING,
    wrf_ungrouped_workflow,
    wrf_workflow,
)

from tests.conftest import medcc_problems


def _chain(*workloads: float) -> Workflow:
    modules = [Module(f"m{i}", workload=w) for i, w in enumerate(workloads)]
    edges = [
        DataDependency(f"m{i}", f"m{i + 1}", data_size=1.0)
        for i in range(len(workloads) - 1)
    ]
    return Workflow(modules, edges, name="chain")


class TestMergeModules:
    def test_basic_contraction(self):
        wf = _chain(1.0, 2.0, 3.0)
        merged = merge_modules(wf, {"head": ["m0", "m1"]})
        assert set(merged.module_names) == {"head", "m2"}
        assert merged.module("head").workload == pytest.approx(3.0)
        assert merged.dependency("head", "m2").data_size == pytest.approx(1.0)

    def test_parallel_edge_sizes_summed(self):
        wf = Workflow(
            [Module(n, workload=1.0) for n in ("a", "b", "c", "d")],
            [
                DataDependency("a", "b", data_size=1.0),
                DataDependency("a", "c", data_size=2.0),
                DataDependency("b", "d", data_size=4.0),
                DataDependency("c", "d", data_size=8.0),
            ],
        )
        merged = merge_modules(wf, {"mid": ["b", "c"]})
        assert merged.dependency("a", "mid").data_size == pytest.approx(3.0)
        assert merged.dependency("mid", "d").data_size == pytest.approx(12.0)

    def test_cycle_creating_merge_rejected(self):
        wf = Workflow(
            [Module(n, workload=1.0) for n in ("a", "b", "c")],
            [DataDependency("a", "b"), DataDependency("b", "c")],
        )
        # Merging a and c puts b both after and before the aggregate.
        with pytest.raises(WorkflowValidationError, match="cycle"):
            merge_modules(wf, {"ends": ["a", "c"]})

    def test_unknown_member_rejected(self):
        with pytest.raises(WorkflowValidationError, match="unknown"):
            merge_modules(_chain(1.0, 2.0), {"g": ["ghost"]})

    def test_overlapping_groups_rejected(self):
        wf = _chain(1.0, 2.0, 3.0)
        with pytest.raises(WorkflowValidationError, match="appears in groups"):
            merge_modules(wf, {"g1": ["m0", "m1"], "g2": ["m1", "m2"]})

    def test_empty_group_rejected(self):
        with pytest.raises(WorkflowValidationError, match="empty"):
            merge_modules(_chain(1.0), {"g": []})

    def test_name_collision_rejected(self):
        wf = _chain(1.0, 2.0, 3.0)
        with pytest.raises(WorkflowValidationError, match="collides"):
            merge_modules(wf, {"m2": ["m0", "m1"]})

    def test_mixed_fixed_and_computing_rejected(self):
        wf = Workflow(
            [Module("in", fixed_time=1.0), Module("a", workload=2.0)],
            [DataDependency("in", "a")],
        )
        with pytest.raises(WorkflowValidationError, match="mixes"):
            merge_modules(wf, {"g": ["in", "a"]})

    def test_fixed_group_sums_durations(self):
        wf = Workflow(
            [
                Module("in1", fixed_time=1.0),
                Module("in2", fixed_time=2.0),
                Module("a", workload=1.0),
            ],
            [DataDependency("in1", "in2"), DataDependency("in2", "a")],
        )
        merged = merge_modules(wf, {"staging": ["in1", "in2"]})
        assert merged.module("staging").fixed_time == pytest.approx(3.0)

    def test_members_recorded_in_metadata(self):
        merged = merge_modules(_chain(1.0, 2.0), {"g": ["m0", "m1"]})
        assert dict(merged.module("g").metadata)["members"] == ("m0", "m1")


class TestWRFGrouping:
    """The Fig. 13 -> Fig. 14 transformation, reproduced by contraction."""

    def test_grouping_reproduces_grouped_topology(self):
        grouped = merge_modules(
            wrf_ungrouped_workflow(), WRF_GROUPING, name="wrf-grouped"
        )
        reference = wrf_workflow()
        assert set(grouped.module_names) == set(reference.module_names)
        assert {e.key for e in grouped.edges()} == {
            e.key for e in reference.edges()
        }

    def test_aggregate_workloads_match_table6_vt1_column(self):
        from repro.workloads.wrf import WRF_TE

        grouped = merge_modules(wrf_ungrouped_workflow(), WRF_GROUPING)
        for name, times in WRF_TE.items():
            assert grouped.module(name).workload == pytest.approx(times[0])

    def test_ungrouped_is_bigger(self):
        assert (
            wrf_ungrouped_workflow().num_modules > wrf_workflow().num_modules
        )


class TestLinearClustering:
    def test_pipeline_collapses_to_one_module(self):
        wf = pipeline_workflow(5)
        clustered = apply_linear_clustering(wf)
        assert len(clustered.schedulable_names) == 1
        assert clustered.total_workload() == pytest.approx(wf.total_workload())

    def test_epigenomics_lanes_collapse(self):
        wf = epigenomics_like_workflow(lanes=3)
        clusters = linear_clusters(wf)
        # Each 4-stage lane is a maximal chain.
        assert len(clusters) >= 3
        clustered = apply_linear_clustering(wf)
        assert len(clustered.schedulable_names) < len(wf.schedulable_names)

    def test_no_chains_is_identity(self):
        wf = cybershake_like_workflow(2)
        # seis->peak chains exist here, so build a chainless graph instead.
        diamond = Workflow(
            [Module(n, workload=1.0) for n in ("a", "b", "c", "d")],
            [
                DataDependency("a", "b"),
                DataDependency("a", "c"),
                DataDependency("b", "d"),
                DataDependency("c", "d"),
            ],
        )
        assert linear_clusters(diamond) == {}
        assert apply_linear_clustering(diamond) is diamond
        assert linear_clusters(wf)  # sanity: cybershake does have chains


class TestHorizontalClustering:
    def test_wide_level_bundled(self):
        from repro.workloads.synthetic import fork_join_workflow

        wf = fork_join_workflow(8)
        clustered = apply_horizontal_clustering(wf, max_groups_per_level=2)
        # The 8 parallel branches become at most 2 aggregates.
        branch_level = [
            n
            for n in clustered.schedulable_names
            if n.startswith("L") or n.startswith("b")
        ]
        assert len(clustered.schedulable_names) < len(wf.schedulable_names)
        assert len(branch_level) <= 4

    def test_groups_balance_workloads(self):
        from repro.workloads.synthetic import fork_join_workflow

        wf = fork_join_workflow(6)
        groups = horizontal_clusters(wf, max_groups_per_level=2)
        level_groups = [g for name, g in groups.items() if len(g) > 1]
        assert level_groups
        loads = [
            sum(wf.module(n).workload for n in group) for group in level_groups
        ]
        assert max(loads) <= 2.5 * min(loads)

    def test_invalid_k_rejected(self):
        with pytest.raises(WorkflowValidationError):
            horizontal_clusters(pipeline_workflow(3), max_groups_per_level=0)


@settings(max_examples=30, deadline=None)
@given(problem=medcc_problems(max_modules=7, max_types=3))
def test_clustering_invariants(problem):
    """Properties: clustering preserves total workload and acyclicity, and
    never increases the module count."""
    wf = problem.workflow
    for clustered in (
        apply_linear_clustering(wf),
        apply_horizontal_clustering(wf, max_groups_per_level=2),
    ):
        assert clustered.total_workload() == pytest.approx(wf.total_workload())
        assert len(clustered.schedulable_names) <= len(wf.schedulable_names)
        # Still a valid workflow: topological order exists (constructor
        # validated the DAG) and entry/exit survive.
        assert clustered.entry in clustered
        assert clustered.exit in clustered
