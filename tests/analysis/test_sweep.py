"""Tests for the budget-sweep and instance-comparison harness."""

import pytest

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.algorithms.gain import Gain3Scheduler
from repro.analysis.sweep import (
    compare_on_instances,
    effective_cpu_count,
    resolve_n_jobs,
    sweep_budgets,
)
from repro.exceptions import ExperimentError
from repro.workloads.generator import generate_problem


class TestSweepBudgets:
    def test_sweep_structure(self, example_problem):
        sweep = sweep_budgets(
            example_problem,
            [CriticalGreedyScheduler(), Gain3Scheduler()],
            levels=5,
        )
        assert len(sweep.points) == 5
        assert sweep.cmin == pytest.approx(48.0)
        assert sweep.cmax == pytest.approx(64.0)
        assert sweep.points[-1].budget == pytest.approx(64.0)
        for point in sweep.points:
            assert set(point.med) == {"critical-greedy", "gain3"}
            assert point.cost["critical-greedy"] <= point.budget + 1e-9

    def test_explicit_budgets(self, wrf_problem):
        sweep = sweep_budgets(
            wrf_problem,
            [CriticalGreedyScheduler()],
            budgets=[147.5, 186.2],
        )
        assert [p.budget for p in sweep.points] == [147.5, 186.2]

    def test_average_and_ratio(self, example_problem):
        sweep = sweep_budgets(
            example_problem,
            [CriticalGreedyScheduler(), Gain3Scheduler()],
            levels=4,
        )
        cg_avg = sweep.average_med("critical-greedy")
        gain_avg = sweep.average_med("gain3")
        assert sweep.med_ratio("critical-greedy", "gain3") == pytest.approx(
            cg_avg / gain_avg
        )
        imp = sweep.average_improvement("critical-greedy", "gain3")
        assert imp == pytest.approx(
            sum(
                (p.med["gain3"] - p.med["critical-greedy"]) / p.med["gain3"] * 100
                for p in sweep.points
            )
            / 4
        )

    def test_no_schedulers_rejected(self, example_problem):
        with pytest.raises(ExperimentError):
            sweep_budgets(example_problem, [])

    def test_med_nonincreasing_over_levels_for_cg(self, example_problem):
        sweep = sweep_budgets(example_problem, [CriticalGreedyScheduler()], levels=10)
        meds = [p.med["critical-greedy"] for p in sweep.points]
        assert all(b <= a + 1e-9 for a, b in zip(meds, meds[1:]))


class TestBatchedSerialPath:
    """The serial sweep batches the budget axis; results must not move."""

    def test_serial_sweep_matches_per_point_solves(self, example_problem):
        scheduler = CriticalGreedyScheduler()
        sweep = sweep_budgets(example_problem, [scheduler], levels=6)
        for point in sweep.points:
            result = scheduler.solve(example_problem, point.budget)
            # Exact equality: the batched path is bit-identical, not close.
            assert point.med["critical-greedy"] == result.med
            assert point.cost["critical-greedy"] == result.total_cost

    def test_scheduler_without_solve_batch_agrees(self, example_problem):
        class PlainCG:
            """Critical-Greedy stripped of its batch entry point."""

            name = "plain-cg"

            def __init__(self):
                self._inner = CriticalGreedyScheduler()

            def solve(self, problem, budget):
                return self._inner.solve(problem, budget)

        sweep = sweep_budgets(
            example_problem, [CriticalGreedyScheduler(), PlainCG()], levels=6
        )
        for point in sweep.points:
            assert point.med["plain-cg"] == point.med["critical-greedy"]
            assert point.cost["plain-cg"] == point.cost["critical-greedy"]


class TestCompareOnInstances:
    def test_deterministic_given_seed(self):
        def make(rng):
            return generate_problem((6, 8, 3), rng)

        schedulers = [CriticalGreedyScheduler(), Gain3Scheduler()]
        a = compare_on_instances(make, schedulers, instances=3, levels=4, seed=9)
        b = compare_on_instances(make, schedulers, instances=3, levels=4, seed=9)
        assert a.average_med("critical-greedy") == pytest.approx(
            b.average_med("critical-greedy")
        )

    def test_aggregations(self):
        def make(rng):
            return generate_problem((6, 8, 3), rng)

        cmp = compare_on_instances(
            make,
            [CriticalGreedyScheduler(), Gain3Scheduler()],
            instances=3,
            levels=4,
            seed=1,
        )
        assert len(cmp.sweeps) == 3
        by_level = cmp.improvement_by_level("critical-greedy", "gain3")
        assert len(by_level) == 4
        overall = cmp.average_improvement("critical-greedy", "gain3")
        assert overall == pytest.approx(
            sum(
                s.average_improvement("critical-greedy", "gain3")
                for s in cmp.sweeps
            )
            / 3
        )

    def test_zero_instances_rejected(self):
        with pytest.raises(ExperimentError):
            compare_on_instances(lambda rng: None, [], instances=0)


class TestParallelSweeps:
    """n_jobs > 1 must return results equal to the serial path."""

    def test_sweep_budgets_n_jobs_parity(self, example_problem):
        schedulers = [CriticalGreedyScheduler(), Gain3Scheduler()]
        serial = sweep_budgets(example_problem, schedulers, levels=6)
        parallel = sweep_budgets(example_problem, schedulers, levels=6, n_jobs=2)
        assert parallel == serial

    def test_sweep_budgets_explicit_budgets_n_jobs(self, example_problem):
        budgets = [50.0, 55.0, 60.0]
        serial = sweep_budgets(example_problem, [CriticalGreedyScheduler()], budgets=budgets)
        parallel = sweep_budgets(
            example_problem, [CriticalGreedyScheduler()], budgets=budgets, n_jobs=3
        )
        assert parallel == serial

    def test_compare_on_instances_n_jobs_parity(self):
        def make(rng):
            return generate_problem((5, 7, 3), rng)

        kwargs = dict(instances=3, levels=3, seed=42)
        serial = compare_on_instances(make, [CriticalGreedyScheduler()], **kwargs)
        parallel = compare_on_instances(
            make, [CriticalGreedyScheduler()], n_jobs=2, **kwargs
        )
        assert parallel == serial

    def test_more_jobs_than_work_is_fine(self, example_problem):
        serial = sweep_budgets(example_problem, [CriticalGreedyScheduler()], levels=2)
        parallel = sweep_budgets(
            example_problem, [CriticalGreedyScheduler()], levels=2, n_jobs=8
        )
        assert parallel == serial

    def test_invalid_n_jobs_rejected(self, example_problem):
        with pytest.raises(ExperimentError):
            sweep_budgets(example_problem, [CriticalGreedyScheduler()], n_jobs=0)
        with pytest.raises(ExperimentError):
            compare_on_instances(
                lambda rng: example_problem, [CriticalGreedyScheduler()],
                instances=1, n_jobs=-1,
            )


class TestResolveNJobs:
    """'auto' sizing: affinity-aware, serial for small grids."""

    def test_explicit_int_passes_through(self):
        assert resolve_n_jobs(1, 100) == 1
        assert resolve_n_jobs(7, 2) == 7  # the caller asked; no clamping

    @pytest.mark.parametrize("bad", [0, -3, True, False, 2.0, "many", None])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ExperimentError):
            resolve_n_jobs(bad, 10)

    def test_auto_serial_on_single_cpu(self, monkeypatch):
        monkeypatch.setattr(
            "repro.analysis.sweep.effective_cpu_count", lambda: 1
        )
        assert resolve_n_jobs("auto", 1000) == 1

    def test_auto_serial_below_min_units(self, monkeypatch):
        monkeypatch.setattr(
            "repro.analysis.sweep.effective_cpu_count", lambda: 16
        )
        assert resolve_n_jobs("auto", 7) == 1

    def test_auto_caps_at_affinity_and_units(self, monkeypatch):
        monkeypatch.setattr(
            "repro.analysis.sweep.effective_cpu_count", lambda: 4
        )
        # Plenty of units: use every effective CPU.
        assert resolve_n_jobs("auto", 100) == 4
        # 8 units: at least two units per worker caps the pool at 4.
        assert resolve_n_jobs("auto", 8) == 4
        monkeypatch.setattr(
            "repro.analysis.sweep.effective_cpu_count", lambda: 64
        )
        # Never more workers than units // 2, regardless of CPUs.
        assert resolve_n_jobs("auto", 10) == 5

    def test_effective_cpu_count_positive(self):
        cpus = effective_cpu_count()
        assert cpus >= 1
        import os

        assert cpus <= (os.cpu_count() or cpus)

    def test_auto_sweep_matches_serial(self, example_problem):
        schedulers = [CriticalGreedyScheduler(), Gain3Scheduler()]
        serial = sweep_budgets(example_problem, schedulers, levels=8)
        auto = sweep_budgets(example_problem, schedulers, levels=8, n_jobs="auto")
        assert auto == serial

    def test_auto_compare_matches_serial(self):
        def make(rng):
            return generate_problem((5, 7, 3), rng)

        kwargs = dict(instances=2, levels=3, seed=11)
        serial = compare_on_instances(make, [CriticalGreedyScheduler()], **kwargs)
        auto = compare_on_instances(
            make, [CriticalGreedyScheduler()], n_jobs="auto", **kwargs
        )
        assert auto == serial
