"""Tests for the bootstrap and paired-comparison statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    bootstrap_mean_ci,
    paired_comparison,
)
from repro.exceptions import ExperimentError


class TestBootstrap:
    def test_point_estimate_is_sample_mean(self):
        ci = bootstrap_mean_ci([1.0, 2.0, 3.0, 4.0])
        assert ci.mean == pytest.approx(2.5)
        assert ci.low <= 2.5 <= ci.high

    def test_deterministic_under_seed(self):
        data = [3.0, 1.0, 4.0, 1.5, 9.2, 2.6]
        a = bootstrap_mean_ci(data, seed=5)
        b = bootstrap_mean_ci(data, seed=5)
        assert (a.low, a.high) == (b.low, b.high)

    def test_degenerate_sample(self):
        ci = bootstrap_mean_ci([7.0, 7.0, 7.0])
        assert ci.low == ci.high == 7.0

    def test_wider_confidence_wider_interval(self):
        data = list(range(30))
        narrow = bootstrap_mean_ci(data, confidence=0.5, seed=1)
        wide = bootstrap_mean_ci(data, confidence=0.99, seed=1)
        assert wide.high - wide.low >= narrow.high - narrow.low

    def test_contains_operator(self):
        ci = bootstrap_mean_ci([1.0, 2.0, 3.0])
        assert ci.mean in ci
        assert 1000.0 not in ci

    def test_describe(self):
        text = bootstrap_mean_ci([1.0, 2.0]).describe()
        assert "@95%" in text

    def test_validation(self):
        with pytest.raises(ExperimentError):
            bootstrap_mean_ci([])
        with pytest.raises(ExperimentError):
            bootstrap_mean_ci([1.0], confidence=1.5)


class TestPairedComparison:
    def test_clear_winner(self):
        ours = [1.0, 2.0, 3.0, 1.0, 2.0, 1.5, 2.5, 1.0]
        baseline = [2.0, 3.0, 4.0, 2.0, 3.0, 2.5, 3.5, 2.0]
        cmp = paired_comparison(ours, baseline)
        assert cmp.wins == 8 and cmp.losses == 0 and cmp.ties == 0
        assert cmp.mean_difference.mean == pytest.approx(1.0)
        assert cmp.p_value < 0.01
        assert cmp.n == 8

    def test_all_ties(self):
        cmp = paired_comparison([1.0, 2.0], [1.0, 2.0])
        assert cmp.ties == 2
        assert cmp.p_value == 1.0

    def test_mixed(self):
        cmp = paired_comparison([1.0, 3.0], [2.0, 2.0])
        assert cmp.wins == 1 and cmp.losses == 1
        assert cmp.p_value == 1.0

    def test_describe(self):
        text = paired_comparison([1.0], [2.0]).describe("CG", "GAIN3")
        assert "CG vs GAIN3" in text and "W/T/L 1/0/0" in text

    def test_misaligned_rejected(self):
        with pytest.raises(ExperimentError):
            paired_comparison([1.0], [1.0, 2.0])


@settings(max_examples=40, deadline=None)
@given(
    data=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=2,
        max_size=40,
    )
)
def test_bootstrap_interval_brackets_the_mean(data):
    ci = bootstrap_mean_ci(data, seed=0)
    assert ci.low - 1e-9 <= ci.mean <= ci.high + 1e-9
    assert min(data) - 1e-9 <= ci.low
    assert ci.high <= max(data) + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    diffs=st.lists(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_sign_test_p_value_valid(diffs):
    baseline = [d for d in diffs]
    ours = [0.0] * len(diffs)
    cmp = paired_comparison(ours, baseline)
    assert 0.0 <= cmp.p_value <= 1.0
    assert cmp.n == len(diffs)
