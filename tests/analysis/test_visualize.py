"""Tests for DOT export and the ASCII Gantt renderer."""

import pytest

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.analysis.visualize import gantt, workflow_to_dot
from repro.exceptions import ExperimentError
from repro.sim.broker import WorkflowBroker
from repro.sim.faults import ScriptedFaults
from repro.sim.trace import SimulationTrace


class TestDot:
    def test_plain_workflow(self, example_problem):
        dot = workflow_to_dot(example_problem.workflow)
        assert dot.startswith('digraph "paper-example"')
        assert '"w4"' in dot
        assert '"w0" -> "w1"' in dot
        assert "WL=20" in dot
        assert "fixed 1" in dot
        assert dot.rstrip().endswith("}")

    def test_schedule_coloring(self, example_problem):
        result = CriticalGreedyScheduler().solve(example_problem, 57.0)
        dot = workflow_to_dot(
            example_problem.workflow,
            schedule=result.schedule,
            type_names=example_problem.catalog.names,
        )
        assert "fillcolor=" in dot
        assert "VT3" in dot

    def test_schedule_requires_type_names(self, example_problem):
        result = CriticalGreedyScheduler().solve(example_problem, 57.0)
        with pytest.raises(ExperimentError, match="type_names"):
            workflow_to_dot(example_problem.workflow, schedule=result.schedule)

    def test_edge_labels_carry_data_sizes(self, example_problem):
        dot = workflow_to_dot(example_problem.workflow)
        assert 'label="3"' in dot


class TestGantt:
    def test_timeline_rows(self, example_problem):
        schedule = example_problem.least_cost_schedule()
        sim = WorkflowBroker(problem=example_problem, schedule=schedule).run()
        chart = gantt(sim.trace)
        lines = chart.splitlines()
        # Header + one row per module.
        assert len(lines) == 1 + example_problem.workflow.num_modules
        assert all("|" in line for line in lines)
        assert "#" in chart

    def test_failures_marked(self):
        from repro.core.module import DataDependency, Module
        from repro.core.problem import MedCCProblem
        from repro.core.vm import VMType, VMTypeCatalog
        from repro.core.workflow import Workflow

        problem = MedCCProblem(
            workflow=Workflow(
                [Module("a", workload=4.0), Module("b", workload=4.0)],
                [DataDependency("a", "b")],
            ),
            catalog=VMTypeCatalog([VMType(name="T", power=2.0, rate=1.0)]),
        )
        sim = WorkflowBroker(
            problem=problem,
            schedule=problem.least_cost_schedule(),
            faults=ScriptedFaults({("a", 0): 1.0}),
        ).run()
        chart = gantt(sim.trace)
        assert "a!" in chart
        assert "x" in chart

    def test_empty_trace_rejected(self):
        with pytest.raises(ExperimentError):
            gantt(SimulationTrace())
