"""Tests for the operator budgeting helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.budgeting import budget_for_deadline, deadline_for_budget
from repro.exceptions import ExperimentError, InfeasibleBudgetError

from tests.conftest import medcc_problems


class TestDeadlineForBudget:
    def test_running_best_is_monotone(self, example_problem):
        budgets = example_problem.budget_levels(8)
        meds = [deadline_for_budget(example_problem, b) for b in budgets]
        assert all(b <= a + 1e-9 for a, b in zip(meds, meds[1:]))

    def test_extremes(self, example_problem):
        lc_med = example_problem.makespan_of(
            example_problem.least_cost_schedule()
        )
        fast_med = example_problem.makespan_of(
            example_problem.fastest_schedule()
        )
        assert deadline_for_budget(example_problem, 48.0) == pytest.approx(
            lc_med
        )
        assert deadline_for_budget(example_problem, 64.0) == pytest.approx(
            fast_med
        )

    def test_infeasible_budget_raises(self, example_problem):
        with pytest.raises(InfeasibleBudgetError):
            deadline_for_budget(example_problem, 40.0)


class TestBudgetForDeadline:
    def test_loose_deadline_costs_cmin(self, example_problem):
        lc_med = example_problem.makespan_of(
            example_problem.least_cost_schedule()
        )
        assert budget_for_deadline(
            example_problem, lc_med + 1.0
        ) == pytest.approx(example_problem.cmin)

    def test_impossible_deadline_raises(self, example_problem):
        fast_med = example_problem.makespan_of(
            example_problem.fastest_schedule()
        )
        with pytest.raises(InfeasibleBudgetError):
            budget_for_deadline(example_problem, fast_med - 0.5)

    def test_returned_budget_actually_meets_deadline(self, example_problem):
        deadline = 8.0
        budget = budget_for_deadline(example_problem, deadline)
        assert deadline_for_budget(example_problem, budget) <= deadline + 1e-6
        assert example_problem.cmin <= budget <= example_problem.cmax

    def test_tighter_deadline_needs_more_budget(self, example_problem):
        loose = budget_for_deadline(example_problem, 10.0)
        tight = budget_for_deadline(example_problem, 6.0)
        assert tight >= loose - 1e-6

    def test_bad_tolerance_rejected(self, example_problem):
        with pytest.raises(ExperimentError):
            budget_for_deadline(example_problem, 10.0, tolerance=0.0)

    def test_wrf_known_point(self, wrf_problem):
        # Meeting 470 s is possible from ~147.4 (the Table VII row).
        budget = budget_for_deadline(wrf_problem, 470.0, tolerance=0.5)
        assert budget <= 150.0
        assert deadline_for_budget(wrf_problem, budget) <= 470.0 + 1e-6


@settings(max_examples=20, deadline=None)
@given(
    problem=medcc_problems(max_modules=5, max_types=3),
    frac=st.floats(min_value=0.05, max_value=1.0),
)
def test_budgeting_round_trip(problem, frac):
    """Property: budget_for_deadline(deadline_for_budget(B)) <= B-ish."""
    lo, hi = problem.budget_range()
    budget = lo + frac * (hi - lo)
    med = deadline_for_budget(problem, budget, levels=8)
    needed = budget_for_deadline(problem, med, tolerance=0.05, levels=8)
    assert needed <= budget + 0.1
    assert deadline_for_budget(problem, needed, levels=8) <= med + 1e-6
