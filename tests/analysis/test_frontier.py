"""Tests for the cost-delay frontier analysis."""

import pytest
from hypothesis import given, settings

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.algorithms.gain import Gain3Scheduler
from repro.analysis.frontier import (
    Frontier,
    FrontierPoint,
    exact_frontier,
    frontier_regret,
    heuristic_frontier,
)
from repro.core.schedule import Schedule
from repro.exceptions import ExperimentError

from tests.conftest import medcc_problems


class TestFrontierObject:
    def test_rejects_dominated_sequences(self):
        s = Schedule({"a": 0})
        with pytest.raises(ExperimentError):
            Frontier(
                points=(
                    FrontierPoint(cost=1.0, med=5.0, schedule=s),
                    FrontierPoint(cost=2.0, med=6.0, schedule=s),  # dominated
                )
            )

    def test_med_at_budget(self):
        s = Schedule({"a": 0})
        frontier = Frontier(
            points=(
                FrontierPoint(cost=1.0, med=5.0, schedule=s),
                FrontierPoint(cost=3.0, med=2.0, schedule=s),
            )
        )
        assert frontier.med_at_budget(1.0) == 5.0
        assert frontier.med_at_budget(2.9) == 5.0
        assert frontier.med_at_budget(3.0) == 2.0
        with pytest.raises(ExperimentError):
            frontier.med_at_budget(0.5)
        assert frontier.cost_range == (1.0, 3.0)


class TestExampleFrontiers:
    def test_exact_frontier_spans_cost_range(self, example_problem):
        frontier = exact_frontier(example_problem)
        lo, hi = frontier.cost_range
        assert lo == pytest.approx(example_problem.cmin)
        # The most expensive non-dominated point never exceeds Cmax: any
        # costlier schedule is dominated by the fastest schedule.
        assert hi <= example_problem.cmax + 1e-9

    def test_cg_frontier_sits_on_or_above_exact(self, example_problem):
        exact = exact_frontier(example_problem)
        cg = heuristic_frontier(
            example_problem, CriticalGreedyScheduler(), levels=16
        )
        regret = frontier_regret(cg, exact)
        assert regret >= -1e-9

    def test_cg_regret_leq_gain3_regret_on_example(self, example_problem):
        exact = exact_frontier(example_problem)
        cg = heuristic_frontier(example_problem, CriticalGreedyScheduler())
        gain = heuristic_frontier(example_problem, Gain3Scheduler())
        assert frontier_regret(cg, exact) <= frontier_regret(gain, exact) + 1e-9

    def test_guard_on_large_instances(self, example_problem):
        with pytest.raises(ExperimentError, match="max_assignments"):
            exact_frontier(example_problem, max_assignments=10)


@settings(max_examples=25, deadline=None)
@given(problem=medcc_problems(max_modules=4, max_types=3))
def test_frontier_invariants(problem):
    """Properties: frontiers are monotone; CG's dominates no exact point."""
    exact = exact_frontier(problem)
    costs = [p.cost for p in exact.points]
    meds = [p.med for p in exact.points]
    assert costs == sorted(costs)
    assert meds == sorted(meds, reverse=True)

    cg = heuristic_frontier(problem, CriticalGreedyScheduler(), levels=8)
    # At every exact cost the heuristic can afford, it is no better than
    # the optimum (it cannot be) and finite.
    assert frontier_regret(cg, exact) >= -1e-9
