"""Tests for metrics, table and figure rendering."""

import pytest

from repro.analysis.figures import ascii_bars, ascii_heatmap, ascii_line
from repro.analysis.metrics import (
    improvement_percent,
    mean,
    med_ratio,
    optimality_gap,
    reached_optimal,
)
from repro.analysis.tables import format_number, format_table
from repro.exceptions import ExperimentError


class TestMetrics:
    def test_improvement_percent(self):
        assert improvement_percent(100.0, 65.0) == pytest.approx(35.0)
        assert improvement_percent(100.0, 100.0) == 0.0
        assert improvement_percent(100.0, 120.0) == pytest.approx(-20.0)

    def test_improvement_requires_positive_baseline(self):
        with pytest.raises(ExperimentError):
            improvement_percent(0.0, 1.0)

    def test_med_ratio(self):
        assert med_ratio(8.0, 10.0) == pytest.approx(0.8)
        with pytest.raises(ExperimentError):
            med_ratio(1.0, 0.0)

    def test_optimality_gap(self):
        assert optimality_gap(11.0, 10.0) == pytest.approx(0.1)
        with pytest.raises(ExperimentError):
            optimality_gap(1.0, 0.0)

    def test_reached_optimal(self):
        assert reached_optimal(10.0, 10.0)
        assert reached_optimal(10.0 + 1e-12, 10.0)
        assert not reached_optimal(10.1, 10.0)

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ExperimentError):
            mean([])


class TestTables:
    def test_format_number(self):
        assert format_number(1.23456) == "1.23"
        assert format_number(1.23456, precision=4) == "1.2346"
        assert format_number(7) == "7"
        assert format_number(True) == "yes"
        assert format_number("text") == "text"

    def test_format_table_alignment(self):
        text = format_table(
            ("name", "value"),
            [("alpha", 1.5), ("b", 22.25)],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert "-" in lines[2]
        assert len(lines) == 5

    def test_format_table_row_width_mismatch(self):
        with pytest.raises(ExperimentError):
            format_table(("a", "b"), [(1,)])

    def test_format_table_needs_headers(self):
        with pytest.raises(ExperimentError):
            format_table((), [])

    def test_empty_rows_ok(self):
        text = format_table(("a",), [])
        assert "a" in text


class TestFigures:
    def test_ascii_line_contains_series(self):
        text = ascii_line(
            [1, 2, 3], {"medcg": [3.0, 2.0, 1.0]}, title="t", y_label="MED"
        )
        assert "t" in text
        assert "medcg" in text
        assert "*" in text

    def test_ascii_line_validates_lengths(self):
        with pytest.raises(ExperimentError):
            ascii_line([1, 2], {"s": [1.0]})
        with pytest.raises(ExperimentError):
            ascii_line([], {})

    def test_ascii_line_constant_series(self):
        # Degenerate y-span must not divide by zero.
        text = ascii_line([1, 2], {"flat": [5.0, 5.0]})
        assert "flat" in text

    def test_ascii_bars(self):
        text = ascii_bars(["a", "b"], {"CG": [1.0, 2.0], "GAIN": [2.0, 4.0]})
        assert "CG" in text and "GAIN" in text
        assert "#" in text

    def test_ascii_bars_validates(self):
        with pytest.raises(ExperimentError):
            ascii_bars(["a"], {"s": [1.0, 2.0]})
        with pytest.raises(ExperimentError):
            ascii_bars([], {})

    def test_ascii_heatmap(self):
        text = ascii_heatmap(
            [[0.0, 1.0], [2.0, 3.0]],
            row_labels=["r0", "r1"],
            col_labels=["c0", "c1"],
            title="surface",
        )
        assert "surface" in text
        assert "r0" in text

    def test_ascii_heatmap_constant(self):
        text = ascii_heatmap([[1.0, 1.0]])
        assert "|" in text

    def test_ascii_heatmap_validates(self):
        with pytest.raises(ExperimentError):
            ascii_heatmap([])
