"""Reduced-scale runs of every registered experiment, checking the shapes
the paper reports (see DESIGN.md's per-experiment index)."""

import pytest

from repro.experiments import (
    available_experiments,
    get_experiment,
    run_complexity,
    run_example_schedules,
    run_fig7,
    run_fig9,
    run_fig10,
    run_fig11,
    run_table3,
    run_table4,
    run_wrf,
)
from repro.exceptions import ExperimentError

QUICK_SIZES = ((5, 6, 3), (10, 17, 4), (15, 65, 5))


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        paper_artifacts = {
            "table2",
            "table3",
            "fig7",
            "table4",
            "fig9",
            "fig10",
            "fig11",
            "wrf",
            "complexity",
        }
        extensions = {"leaderboard", "sensitivity", "robustness", "frontier"}
        assert set(available_experiments()) == paper_artifacts | extensions

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")


class TestTable2:
    def test_bands_match_paper(self):
        report = run_example_schedules()
        assert report.data["bands_match_paper"] is True
        assert len(report.data["bands"]) == 6

    def test_med_staircase_monotone(self):
        report = run_example_schedules()
        meds = report.data["meds"]
        assert all(b <= a + 1e-9 for a, b in zip(meds, meds[1:]))

    def test_render_contains_figure(self):
        text = run_example_schedules().render()
        assert "Fig. 6" in text
        assert "budget" in text


class TestTable3:
    def test_cg_never_beats_optimal_and_often_matches(self):
        report = run_table3(instances_per_size=3, seed=1)
        for row in report.rows:
            _, _, cg_med, opt_med, hit = row
            assert cg_med >= opt_med - 1e-9
        assert report.data["matches"] >= report.data["total"] // 2


class TestFig7:
    def test_cg_dominates_gain3(self):
        report = run_fig7(instances_per_size=8, sizes=((5, 6, 3), (6, 11, 3)))
        for _, cg_pct, gain_pct in report.rows:
            assert cg_pct >= gain_pct


class TestTable4:
    def test_cg_wins_on_average_and_improvement_grows(self):
        # Four sizes, one (seeded, deterministic) instance each: the
        # single-instance noise is real, so assert the robust shape —
        # CG never loses meaningfully, the overall improvement is
        # positive, and the largest size improves more than the smallest.
        report = run_table4(
            sizes=QUICK_SIZES + ((20, 80, 5),), levels=10, seed=4
        )
        improvements = report.data["improvements"]
        assert all(imp >= -2.0 for imp in improvements)  # never loses much
        assert improvements[-1] > improvements[0]  # grows with size
        assert report.data["overall_improvement"] > 0


class TestImprovementGrid:
    def test_fig9_10_11_consistent(self):
        kwargs = dict(sizes=QUICK_SIZES, instances=2, levels=5, seed=3)
        fig9 = run_fig9(**kwargs)
        fig10 = run_fig10(**kwargs)
        fig11 = run_fig11(**kwargs)
        # All three are views of one grid: grand means agree.
        assert fig9.data["overall"] == pytest.approx(fig10.data["overall"])
        assert fig9.data["overall"] == pytest.approx(fig11.data["overall"])
        surface = fig11.data["surface"]
        assert len(surface) == len(QUICK_SIZES)
        assert len(surface[0]) == 5
        # fig9's per-size values are the row means of the surface.
        row_mean = sum(surface[0]) / len(surface[0])
        assert fig9.data["per_size"][0] == pytest.approx(row_mean)

    def test_improvement_positive_overall(self):
        report = run_fig9(sizes=QUICK_SIZES, instances=2, levels=5, seed=3)
        assert report.data["overall"] > 0


class TestWRF:
    def test_cg_never_loses_to_gain3(self):
        report = run_wrf(simulate=True)
        for cg_med, gain_med in zip(
            report.data["cg_meds"], report.data["gain_meds"]
        ):
            assert cg_med <= gain_med + 1e-9

    def test_published_row_at_147_5(self):
        report = run_wrf(simulate=False)
        row = report.rows[0]
        assert row[0] == 147.5
        assert row[1] == "111121"  # CG schedule, paper Table VII
        assert row[2] == pytest.approx(468.6)  # CG MED matches published

    def test_reuse_notes_generated(self):
        report = run_wrf(simulate=True)
        assert report.data["reuse"]


class TestComplexity:
    def test_all_reduction_trials_pass(self):
        report = run_complexity(trials=5, seed=2)
        assert report.data["all_ok"] is True


class TestLeaderboard:
    def test_ordering_sane(self):
        from repro.experiments.leaderboard import run_leaderboard

        report = run_leaderboard(
            sizes=((10, 17, 4),), instances=2, levels=4
        )
        avg = {row[0]: row[1] for row in report.rows}
        # The sanity floor and ceiling hold.
        assert avg["least-cost"] >= avg["critical-greedy"] - 1e-9
        assert avg["random"] >= avg["critical-greedy-lookahead"] - 1e-9
        # The portfolio never loses to plain CG.
        assert avg["critical-greedy-lookahead"] <= avg["critical-greedy"] + 1e-9
        # Rows are sorted by average MED.
        values = [row[1] for row in report.rows]
        assert values == sorted(values)


class TestSensitivity:
    def test_default_regime_is_the_favourable_cell(self):
        from repro.experiments.sensitivity import run_sensitivity

        report = run_sensitivity(size=(10, 17, 4), instances=2, levels=4)
        cells = report.data["cells"]
        headline = cells[("lognormal s=2", "arithmetic", "gain3 (relative)")]
        uniform = cells[("uniform", "arithmetic", "gain3 (relative)")]
        # Heavy tails + relative GAIN3 produce the paper's positive margin;
        # uniform workloads erase (or invert) it.
        assert headline > uniform
        assert headline > 0


class TestRobustness:
    def test_margin_reduces_budget_violations(self):
        from repro.experiments.robustness import run_robustness

        report = run_robustness(runs=10, margins=(0.0, 0.15), noises=(0.05,))
        cells = report.data["cells"]
        no_margin = cells[(0.0, 0.05)]["busted_fraction"]
        with_margin = cells[(0.15, 0.05)]["busted_fraction"]
        assert with_margin <= no_margin
        # Zero margin under noise busts the budget in some runs (the
        # round-up flips whole billing units).
        assert no_margin > 0


class TestFrontierQuality:
    def test_regret_ordering(self):
        from repro.experiments.frontier_quality import run_frontier_quality

        report = run_frontier_quality(
            sizes=((5, 6, 3), (6, 11, 3)), instances_per_size=5
        )
        overall = report.data["overall"]
        assert overall["CG-lookahead"] <= overall["CG"] + 1e-9
        assert overall["CG"] <= overall["GAIN3"] + 1e-9
        assert all(v >= -1e-9 for v in overall.values())
