"""Tests for the ExperimentReport container and the registry mechanics."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.report import (
    ExperimentReport,
    get_experiment,
    register_experiment,
)


def _report(**overrides) -> ExperimentReport:
    base = dict(
        experiment_id="demo",
        title="A demo report",
        headers=("name", "value"),
        rows=(("pi", 3.14159), ("e", 2.71828)),
    )
    base.update(overrides)
    return ExperimentReport(**base)


class TestRender:
    def test_contains_title_and_rows(self):
        text = _report().render()
        assert "== demo: A demo report ==" in text
        assert "pi" in text and "3.14" in text

    def test_precision_control(self):
        text = _report().render(precision=4)
        assert "3.1416" in text

    def test_figures_and_notes_appended(self):
        text = _report(
            figures=("FIGURE-BLOCK",), notes=("first note", "second note")
        ).render()
        assert "FIGURE-BLOCK" in text
        assert "  - first note" in text
        assert text.index("FIGURE-BLOCK") < text.index("first note")

    def test_empty_rows_render(self):
        text = _report(rows=()).render()
        assert "demo" in text


class TestRegistry:
    def test_double_registration_rejected(self):
        @register_experiment("only-once-xyz")
        def runner():
            return _report()

        with pytest.raises(ExperimentError, match="twice"):
            register_experiment("only-once-xyz")(runner)

    def test_registered_id_attached(self):
        assert get_experiment("table2").experiment_id == "table2"
