"""Targeted tests for behaviours not covered elsewhere."""

import pytest

from repro.core.serialize import load_problem, save_problem


class TestGridCache:
    def test_same_parameters_hit_the_cache(self):
        from repro.experiments.grid import compute_improvement_grid

        sizes = ((5, 6, 3),)
        a = compute_improvement_grid(sizes, instances=1, levels=3, seed=1)
        b = compute_improvement_grid(sizes, instances=1, levels=3, seed=1)
        assert a is b  # lru_cache hit
        c = compute_improvement_grid(sizes, instances=1, levels=3, seed=2)
        assert c is not a


class TestSweepRatio:
    def test_med_ratio_matches_averages(self, example_problem):
        from repro.algorithms.critical_greedy import CriticalGreedyScheduler
        from repro.algorithms.gain import Gain3Scheduler
        from repro.analysis.sweep import sweep_budgets

        sweep = sweep_budgets(
            example_problem,
            [CriticalGreedyScheduler(), Gain3Scheduler()],
            levels=4,
        )
        ratio = sweep.med_ratio("critical-greedy", "gain3")
        assert ratio == pytest.approx(
            sweep.average_med("critical-greedy") / sweep.average_med("gain3")
        )
        assert 0 < ratio <= 1.0 + 1e-9  # CG never loses on the example


class TestSerializeExtras:
    def test_startup_fields_roundtrip(self, tmp_path):
        from repro.core.module import Module
        from repro.core.problem import MedCCProblem
        from repro.core.vm import VMType, VMTypeCatalog
        from repro.core.workflow import Workflow

        problem = MedCCProblem(
            workflow=Workflow([Module("a", workload=1.0)]),
            catalog=VMTypeCatalog(
                [
                    VMType(
                        name="T",
                        power=1.0,
                        rate=1.0,
                        startup_time=7.0,
                        startup_cost=0.25,
                    )
                ]
            ),
        )
        clone = load_problem(save_problem(problem, tmp_path / "i.json"))
        assert clone.catalog["T"].startup_time == 7.0
        assert clone.catalog["T"].startup_cost == 0.25

    def test_module_metadata_is_not_serialized(self, wrf_problem, tmp_path):
        # Documented behaviour: metadata is free-form annotation, dropped
        # by Workflow.to_dict (it may contain non-JSON values).
        clone = load_problem(save_problem(wrf_problem, tmp_path / "w.json"))
        assert clone.workflow.module("w1").metadata == ()
        # The scheduling-relevant content survives regardless.
        assert clone.cmin == pytest.approx(wrf_problem.cmin)


class TestVMPlanBilling:
    def test_startup_cost_charged_per_allocation(self, example_problem):
        from repro.core.billing import HourlyBilling
        from repro.core.problem import MedCCProblem
        from repro.core.vm import VMType, VMTypeCatalog
        from repro.sim.packing import pack_schedule

        pricey_boot = MedCCProblem(
            workflow=example_problem.workflow,
            catalog=VMTypeCatalog(
                [
                    VMType(
                        name=t.name,
                        power=t.power,
                        rate=t.rate,
                        startup_cost=2.0,
                    )
                    for t in example_problem.catalog
                ]
            ),
        )
        schedule = pricey_boot.least_cost_schedule()
        plan = pack_schedule(pricey_boot, schedule, mode="adjacent")
        billed = plan.billed_cost(pricey_boot, HourlyBilling())
        bare = pack_schedule(
            pricey_boot, schedule, mode="adjacent"
        ).billed_cost(example_problem, HourlyBilling())
        # Exactly one 2.0 boot fee per provisioned VM.
        assert billed == pytest.approx(bare + 2.0 * plan.num_vms)


class TestTraceRendering:
    def test_render_includes_transfers_and_failures(self):
        from repro.core.module import DataDependency, Module
        from repro.core.problem import MedCCProblem, TransferModel
        from repro.core.vm import VMType, VMTypeCatalog
        from repro.core.workflow import Workflow
        from repro.sim.broker import WorkflowBroker
        from repro.sim.faults import ScriptedFaults

        problem = MedCCProblem(
            workflow=Workflow(
                [Module("a", workload=2.0), Module("b", workload=2.0)],
                [DataDependency("a", "b", data_size=4.0)],
            ),
            catalog=VMTypeCatalog([VMType(name="T", power=2.0, rate=1.0)]),
            transfers=TransferModel(bandwidth=2.0),
        )
        sim = WorkflowBroker(
            problem=problem,
            schedule=problem.least_cost_schedule(),
            faults=ScriptedFaults({("a", 0): 0.5}),
        ).run()
        text = sim.trace.render()
        assert "== transfers ==" in text
        assert "== failures ==" in text
        assert "crashed at" in text


class TestCLIFileVisualize:
    def test_visualize_from_saved_instance(self, tmp_path, capsys):
        from repro.cli import main
        from repro.workloads.example import example_problem as make

        path = save_problem(make(), tmp_path / "inst.json")
        code = main(
            [
                "visualize",
                "--file",
                str(path),
                "--budget",
                "57",
                "--format",
                "dot",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.startswith("digraph")
