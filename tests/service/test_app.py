"""SchedulingService tests: parsing, memoization, batching, stats."""

import json
import time

import pytest

from repro.core.serialize import problem_to_dict
from repro.exceptions import ServiceError
from repro.service.app import DEFAULT_ALGORITHM, SchedulingService, error_payload
from repro.service.codec import dumps


@pytest.fixture
def request_payload(example_problem):
    return {"problem": problem_to_dict(example_problem), "budget": 57.0}


@pytest.fixture
def service():
    with SchedulingService(max_workers=2, queue_size=8, cache_size=32) as svc:
        yield svc


class TestParseRequest:
    def test_defaults(self, service, request_payload):
        parsed = service.parse_request(request_payload)
        assert parsed.algorithm == DEFAULT_ALGORITHM
        assert parsed.budget == 57.0
        assert parsed.timeout is None

    def test_missing_problem_rejected(self, service):
        with pytest.raises(ServiceError, match="problem"):
            service.parse_request({"budget": 57.0})

    def test_missing_budget_rejected(self, service, request_payload):
        del request_payload["budget"]
        with pytest.raises(ServiceError, match="budget"):
            service.parse_request(request_payload)

    def test_non_numeric_budget_rejected(self, service, request_payload):
        request_payload["budget"] = "plenty"
        with pytest.raises(ServiceError, match="budget must be a number"):
            service.parse_request(request_payload)

    def test_unknown_param_rejected(self, service, request_payload):
        request_payload["params"] = {"warp_factor": 9}
        with pytest.raises(ServiceError, match="warp_factor"):
            service.parse_request(request_payload)

    def test_explicit_default_param_hits_same_key(self, service, request_payload):
        bare = service.parse_request(request_payload)
        request_payload["params"] = {"engine": "incremental"}
        explicit = service.parse_request(request_payload)
        assert bare.key == explicit.key

    def test_different_param_changes_key(self, service, request_payload):
        bare = service.parse_request(request_payload)
        request_payload["params"] = {"engine": "reference"}
        other = service.parse_request(request_payload)
        assert bare.key != other.key


class TestMemoization:
    def test_second_solve_is_cache_hit(self, service, request_payload):
        first = service.solve(request_payload)
        second = service.solve(request_payload)
        assert first["status"] == "ok" and first["cache_hit"] is False
        assert second["cache_hit"] is True
        assert dumps(first["result"]) == dumps(second["result"])

    def test_permuted_request_is_cache_hit(self, service, request_payload):
        first = service.solve(request_payload)
        permuted = json.loads(json.dumps(request_payload))
        permuted["problem"]["workflow"]["modules"].reverse()
        permuted["problem"]["workflow"]["edges"].reverse()
        permuted["problem"]["catalog"].reverse()
        second = service.solve(permuted)
        assert second["cache_hit"] is True
        assert dumps(first["result"]["schedule"]) == dumps(
            second["result"]["schedule"]
        )

    def test_different_budget_misses(self, service, request_payload):
        service.solve(request_payload)
        other = dict(request_payload, budget=100.0)
        assert service.solve(other)["cache_hit"] is False

    def test_result_respects_budget(self, service, request_payload):
        response = service.solve(request_payload)
        assert response["result"]["cost"] <= request_payload["budget"] + 1e-9

    def test_incremental_is_default_engine(self, service, request_payload):
        response = service.solve(request_payload)
        assert response["result"]["engine"] == "incremental"


class TestBatch:
    def test_batch_isolates_errors(self, service, request_payload):
        bad = {"budget": 57.0}  # missing problem
        infeasible = dict(request_payload, budget=0.01)
        responses = service.solve_batch([request_payload, bad, infeasible])
        assert [r["status"] for r in responses] == ["ok", "error", "error"]
        assert responses[1]["error"]["kind"] == "bad_request"
        assert responses[2]["error"]["kind"] == "infeasible_budget"

    def test_batch_requires_array(self, service):
        with pytest.raises(ServiceError, match="array"):
            service.solve_batch({"not": "a list"})


class TestBatchDedupeAndGrouping:
    """The two batch-only optimizations: dedupe and budget-axis grouping."""

    def test_duplicates_answered_once(self, service, request_payload):
        other = dict(request_payload, budget=64.0)
        responses = service.solve_batch(
            [request_payload, request_payload, other, request_payload]
        )
        assert [r["status"] for r in responses] == ["ok"] * 4
        assert "deduped" not in responses[0]
        for idx in (1, 3):
            copy = dict(responses[idx])
            assert copy.pop("deduped") is True
            assert copy == responses[0]
        assert service.stats()["batch"]["deduped"] == 2

    def test_grouped_budgets_run_as_one_job(self, service, request_payload):
        budgets = [48.0, 52.0, 57.0, 60.0, 64.0, 1000.0]
        responses = service.solve_batch(
            [dict(request_payload, budget=b) for b in budgets]
        )
        assert [r["status"] for r in responses] == ["ok"] * 6
        assert [r["budget"] for r in responses] == budgets
        stats = service.stats()
        assert stats["executor"]["submitted"] == 1
        assert stats["batch"] == {
            "deduped": 0,
            "grouped_items": 6,
            "grouped_runs": 1,
        }

    def test_grouped_responses_identical_to_serial_service(
        self, service, request_payload
    ):
        budgets = [48.0, 57.0, 64.0]
        batch = service.solve_batch(
            [dict(request_payload, budget=b) for b in budgets]
        )
        with SchedulingService(max_workers=2, queue_size=8, cache_size=32) as solo:
            serial = [solo.solve(dict(request_payload, budget=b)) for b in budgets]
        assert [dumps(b) for b in batch] == [dumps(s) for s in serial]

    def test_second_batch_is_all_cache_hits(self, service, request_payload):
        payloads = [dict(request_payload, budget=b) for b in (48.0, 57.0, 64.0)]
        service.solve_batch(payloads)
        submitted = service.stats()["executor"]["submitted"]
        again = service.solve_batch(payloads)
        assert all(r["cache_hit"] is True for r in again)
        assert service.stats()["executor"]["submitted"] == submitted
        # cache hits never count as grouped work
        assert service.stats()["batch"]["grouped_runs"] == 1

    def test_non_batching_algorithm_goes_through_singles(
        self, service, request_payload
    ):
        mixed = [
            dict(request_payload, budget=48.0),
            dict(request_payload, budget=57.0, algorithm="gain3"),
            dict(request_payload, budget=57.0),
            dict(request_payload, budget=64.0, algorithm="gain3"),
        ]
        responses = service.solve_batch(mixed)
        assert [r["status"] for r in responses] == ["ok"] * 4
        assert [r["algorithm"] for r in responses] == [
            "critical-greedy",
            "gain3",
            "critical-greedy",
            "gain3",
        ]
        stats = service.stats()["batch"]
        assert stats["grouped_items"] == 2
        assert stats["grouped_runs"] == 1

    def test_infeasible_member_cannot_fail_its_group(
        self, service, request_payload
    ):
        batch = [
            dict(request_payload, budget=57.0),
            dict(request_payload, budget=0.01),
            dict(request_payload, budget=64.0),
        ]
        responses = service.solve_batch(batch)
        assert [r["status"] for r in responses] == ["ok", "error", "ok"]
        assert responses[1]["error"]["kind"] == "infeasible_budget"

    def test_group_timeout_degrades_every_member(self, request_payload):
        with SchedulingService(
            max_workers=1, queue_size=8, cache_size=32, degrade_on_timeout=True
        ) as svc:
            original = svc.executor._fn

            def slowed(job):
                time.sleep(0.4)
                return original(job)

            svc.executor._fn = slowed
            batch = [
                dict(request_payload, budget=b, timeout=0.05)
                for b in (57.0, 60.0, 64.0)
            ]
            responses = svc.solve_batch(batch)
            assert all(r["status"] == "ok" for r in responses)
            assert all(r["degraded"] is True for r in responses)
            assert svc.stats()["degraded"] == 3


class TestStats:
    def test_stats_shape(self, service, request_payload):
        service.solve(request_payload)
        service.solve(request_payload)
        stats = service.stats()
        assert stats["requests"] == 2
        assert stats["cache"]["hits"] >= 1
        assert stats["cache"]["misses"] >= 1
        assert stats["request_latency_p50"] is not None
        assert stats["executor"]["queue_capacity"] == 8
        assert stats["uptime"] >= 0


class TestErrorPayload:
    def test_kinds(self):
        from repro.exceptions import (
            InfeasibleBudgetError,
            ServiceOverloadedError,
            ServiceTimeoutError,
        )

        assert error_payload(ServiceOverloadedError(4))["error"]["kind"] == (
            "overloaded"
        )
        assert error_payload(ServiceTimeoutError(1.0))["error"]["kind"] == "timeout"
        assert error_payload(InfeasibleBudgetError(1.0, 2.0))["error"]["kind"] == (
            "infeasible_budget"
        )
        assert error_payload(ServiceError("x"))["error"]["kind"] == "bad_request"
        assert error_payload(RuntimeError("x"))["error"]["kind"] == "internal"
