"""Property tests for the service layer (ISSUE satellites):

* ``problem_hash`` is invariant under any permutation of the module list
  and the VM-type catalog;
* codec round-trips hold: ``decode(encode(x)) == x`` for workflows,
  catalogs, problems and (given the catalog) schedules.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import Schedule
from repro.core.serialize import problem_to_dict
from repro.service.codec import (
    decode_catalog,
    decode_problem,
    decode_schedule,
    decode_workflow,
    dumps,
    encode_catalog,
    encode_problem,
    encode_schedule,
    encode_workflow,
)
from repro.service.keys import problem_hash
from tests.conftest import medcc_problems


@given(data=st.data(), problem=medcc_problems(max_modules=5, max_types=3))
@settings(max_examples=25, deadline=None)
def test_problem_hash_invariant_under_permutation(data, problem):
    payload = problem_to_dict(problem)
    permuted = dict(payload)
    permuted["workflow"] = dict(payload["workflow"])
    permuted["workflow"]["modules"] = data.draw(
        st.permutations(payload["workflow"]["modules"])
    )
    permuted["workflow"]["edges"] = data.draw(
        st.permutations(payload["workflow"]["edges"])
    )
    permuted["catalog"] = data.draw(st.permutations(payload["catalog"]))
    assert problem_hash(permuted) == problem_hash(payload)


@given(problem=medcc_problems(max_modules=5, max_types=3))
@settings(max_examples=25, deadline=None)
def test_workflow_round_trip(problem):
    assert decode_workflow(encode_workflow(problem.workflow)) == problem.workflow


@given(problem=medcc_problems(max_modules=5, max_types=3))
@settings(max_examples=25, deadline=None)
def test_catalog_round_trip(problem):
    assert decode_catalog(encode_catalog(problem.catalog)) == problem.catalog


@given(problem=medcc_problems(max_modules=5, max_types=3))
@settings(max_examples=25, deadline=None)
def test_problem_round_trip(problem):
    assert decode_problem(encode_problem(problem)) == problem


@given(data=st.data(), problem=medcc_problems(max_modules=5, max_types=3))
@settings(max_examples=25, deadline=None)
def test_schedule_round_trip(data, problem):
    names = sorted(problem.workflow.schedulable_names)
    indices = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=problem.num_types - 1),
            min_size=len(names),
            max_size=len(names),
        )
    )
    schedule = Schedule(dict(zip(names, indices)))
    payload = encode_schedule(schedule, problem.catalog)
    assert decode_schedule(payload, problem.catalog) == schedule
    # encoding is deterministic: same schedule, same bytes
    assert dumps(encode_schedule(schedule, problem.catalog)) == dumps(payload)
