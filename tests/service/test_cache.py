"""Result-cache tests: LRU semantics, counters, the atomic disk tier."""

import threading

import pytest

from repro.exceptions import ServiceError
from repro.service.cache import ResultCache
from repro.service.keys import RequestKey


def _key(i: int) -> RequestKey:
    return RequestKey(problem_hash=f"p{i}", algorithm="cg", params_hash=f"q{i}")


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get(_key(1)) is None
        cache.put(_key(1), {"cost": 1.0})
        assert cache.get(_key(1)) == {"cost": 1.0}
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_returns_copies(self):
        cache = ResultCache(capacity=4)
        cache.put(_key(1), {"cost": 1.0})
        cache.get(_key(1))["cost"] = 99.0
        assert cache.get(_key(1)) == {"cost": 1.0}

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put(_key(1), {"v": 1})
        cache.put(_key(2), {"v": 2})
        cache.get(_key(1))  # refresh 1 → 2 is now the LRU victim
        cache.put(_key(3), {"v": 3})
        assert cache.get(_key(2)) is None
        assert cache.get(_key(1)) == {"v": 1}
        assert cache.get(_key(3)) == {"v": 3}
        assert cache.stats().evictions == 1

    def test_overwrite_does_not_evict(self):
        cache = ResultCache(capacity=2)
        cache.put(_key(1), {"v": 1})
        cache.put(_key(1), {"v": 2})
        cache.put(_key(2), {"v": 3})
        assert len(cache) == 2
        assert cache.stats().evictions == 0
        assert cache.get(_key(1)) == {"v": 2}

    def test_clear(self):
        cache = ResultCache(capacity=2)
        cache.put(_key(1), {"v": 1})
        cache.clear()
        assert cache.get(_key(1)) is None

    def test_bad_capacity_rejected(self):
        with pytest.raises(ServiceError, match="capacity"):
            ResultCache(capacity=0)

    def test_thread_safety_smoke(self):
        cache = ResultCache(capacity=8)

        def worker(base: int) -> None:
            for i in range(200):
                cache.put(_key(base + i % 16), {"v": i})
                cache.get(_key(i % 16))

        threads = [threading.Thread(target=worker, args=(j,)) for j in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = cache.stats()
        assert stats.size <= 8
        assert stats.hits + stats.misses == 800


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        first = ResultCache(capacity=4, cache_dir=tmp_path)
        first.put(_key(1), {"cost": 2.0})
        second = ResultCache(capacity=4, cache_dir=tmp_path)
        assert second.get(_key(1)) == {"cost": 2.0}
        stats = second.stats()
        assert stats.disk_hits == 1
        assert stats.hits == 1

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        ResultCache(capacity=4, cache_dir=tmp_path).put(_key(1), {"v": 1})
        cache = ResultCache(capacity=4, cache_dir=tmp_path)
        cache.get(_key(1))
        cache.get(_key(1))
        stats = cache.stats()
        assert stats.hits == 2
        assert stats.disk_hits == 1  # second lookup served from memory

    def test_corrupt_file_is_plain_miss(self, tmp_path):
        cache = ResultCache(capacity=4, cache_dir=tmp_path)
        cache.put(_key(1), {"v": 1})
        path = tmp_path / f"{_key(1).digest()}.json"
        path.write_text("{torn write")
        cache.clear()
        assert cache.get(_key(1)) is None

    def test_stats_counts_disk_entries(self, tmp_path):
        cache = ResultCache(capacity=4, cache_dir=tmp_path)
        cache.put(_key(1), {"v": 1})
        cache.put(_key(2), {"v": 2})
        assert cache.stats().disk_entries == 2

    def test_memory_only_reports_no_disk(self):
        assert ResultCache(capacity=4).stats().disk_entries is None


class TestQuarantine:
    def test_startup_scan_quarantines_corrupt_entries(self, tmp_path):
        (tmp_path / "aa11.json").write_text("{torn write")
        (tmp_path / "bb22.json").write_text("[1, 2, 3]")  # valid JSON, wrong shape
        (tmp_path / "cc33.json").write_text('{"v": 3}')
        cache = ResultCache(capacity=4, cache_dir=tmp_path)
        assert cache.stats().quarantined == 2
        names = sorted(p.name for p in (tmp_path / "quarantine").iterdir())
        assert names == ["aa11.json", "bb22.json"]
        # the healthy entry stayed in place
        assert (tmp_path / "cc33.json").exists()

    def test_lookup_quarantines_lazily(self, tmp_path):
        cache = ResultCache(capacity=4, cache_dir=tmp_path)
        cache.put(_key(1), {"v": 1})
        # a sibling process corrupts the entry after our startup scan ran
        path = tmp_path / f"{_key(1).digest()}.json"
        path.write_text("{torn write")
        cache.clear()
        assert cache.get(_key(1)) is None
        assert cache.stats().quarantined == 1
        assert not path.exists()
        assert (tmp_path / "quarantine" / path.name).exists()

    def test_quarantine_excluded_from_disk_entries(self, tmp_path):
        (tmp_path / "bad.json").write_text("{torn write")
        cache = ResultCache(capacity=4, cache_dir=tmp_path)
        cache.put(_key(1), {"v": 1})
        assert cache.stats().disk_entries == 1

    def test_quarantined_entry_can_be_overwritten(self, tmp_path):
        cache = ResultCache(capacity=4, cache_dir=tmp_path)
        cache.put(_key(1), {"v": 1})
        path = tmp_path / f"{_key(1).digest()}.json"
        path.write_text("{torn write")
        cache.clear()
        assert cache.get(_key(1)) is None
        cache.put(_key(1), {"v": 2})
        fresh = ResultCache(capacity=4, cache_dir=tmp_path)
        assert fresh.get(_key(1)) == {"v": 2}
        assert fresh.stats().quarantined == 0


class TestFlush:
    def test_flush_rewrites_lost_entries(self, tmp_path):
        cache = ResultCache(capacity=4, cache_dir=tmp_path)
        cache.put(_key(1), {"v": 1})
        cache.put(_key(2), {"v": 2})
        (tmp_path / f"{_key(1).digest()}.json").unlink()
        assert cache.flush() == 1
        assert cache.stats().disk_entries == 2

    def test_flush_is_noop_when_disk_is_current(self, tmp_path):
        cache = ResultCache(capacity=4, cache_dir=tmp_path)
        cache.put(_key(1), {"v": 1})
        assert cache.flush() == 0

    def test_flush_without_disk_tier_returns_zero(self):
        cache = ResultCache(capacity=4)
        cache.put(_key(1), {"v": 1})
        assert cache.flush() == 0
