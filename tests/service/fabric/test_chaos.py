"""ChaosProxy tests: config validation, seeded determinism, fault injection
end-to-end against a real in-process service."""

from __future__ import annotations

import threading
from contextlib import contextmanager

import pytest

from repro.core.serialize import problem_to_dict
from repro.exceptions import ServiceError, TransientServiceError
from repro.service.app import SchedulingService
from repro.service.chaos import ChaosConfig, ChaosProxy
from repro.service.http import ServiceClient, make_server
from repro.service.resilience import CircuitBreaker, RetryPolicy
from repro.service.router import NodeHandle, ShardRouter
from repro.workloads import example_problem

REQUEST = {"problem": problem_to_dict(example_problem()), "budget": 57.0}


@contextmanager
def running_service(**kwargs):
    """An in-process SchedulingService behind a real HTTP server."""
    service = SchedulingService(**kwargs)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}", service
    finally:
        server.shutdown()
        server.server_close()
        service.drain()


class TestChaosConfig:
    def test_probabilities_validated(self):
        with pytest.raises(ServiceError, match="error_prob"):
            ChaosConfig(error_prob=1.5)
        with pytest.raises(ServiceError, match="drop_prob"):
            ChaosConfig(drop_prob=-0.1)

    def test_latency_bounds_validated(self):
        with pytest.raises(ServiceError, match="latency"):
            ChaosConfig(latency_min=0.5, latency_max=0.1)


class TestDeterminism:
    def _decisions(self, seed: int, n: int = 64) -> list[dict]:
        proxy = ChaosProxy(
            "http://unused",
            ChaosConfig(seed=seed, latency_prob=0.3, error_prob=0.2, drop_prob=0.2),
        )
        return [proxy._decide() for _ in range(n)]

    def test_same_seed_same_faults(self):
        assert self._decisions(42) == self._decisions(42)

    def test_different_seed_different_faults(self):
        assert self._decisions(1) != self._decisions(2)

    def test_zero_probabilities_inject_nothing(self):
        proxy = ChaosProxy("http://unused", ChaosConfig(seed=0))
        for _ in range(32):
            decision = proxy._decide()
            assert decision == {"latency": None, "error": False, "drop": False}
        stats = proxy.stats()
        assert stats["injected_errors"] == 0
        assert stats["injected_drops"] == 0


class TestFaultInjection:
    def test_transparent_relay_roundtrip(self):
        with running_service() as (url, _):
            with ChaosProxy(url, ChaosConfig(seed=0)) as proxy:
                client = ServiceClient(proxy.base_url)
                assert client.healthz() == {"status": "ok"}
                response = client.solve(REQUEST)
                assert response["status"] == "ok"
                assert proxy.stats()["forwarded"] == 2

    def test_injected_502_surfaces_as_bad_gateway_body(self):
        with running_service() as (url, _):
            with ChaosProxy(url, ChaosConfig(seed=0, error_prob=1.0)) as proxy:
                client = ServiceClient(proxy.base_url)
                body = client.solve(REQUEST)
                assert body["status"] == "error"
                assert body["error"]["kind"] == "bad_gateway"
                assert proxy.stats()["injected_errors"] == 1
                assert proxy.stats()["forwarded"] == 0

    def test_injected_drop_raises_transient_error(self):
        with running_service() as (url, _):
            with ChaosProxy(url, ChaosConfig(seed=0, drop_prob=1.0)) as proxy:
                client = ServiceClient(proxy.base_url)
                with pytest.raises(TransientServiceError):
                    client.solve(REQUEST)
                assert proxy.stats()["injected_drops"] == 1

    def test_injected_latency_uses_sleep_hook(self):
        sleeps: list[float] = []
        with running_service() as (url, _):
            proxy = ChaosProxy(
                url,
                ChaosConfig(
                    seed=0, latency_prob=1.0, latency_min=0.001, latency_max=0.002
                ),
                sleep=sleeps.append,
            )
            with proxy:
                client = ServiceClient(proxy.base_url)
                assert client.solve(REQUEST)["status"] == "ok"
        assert len(sleeps) == 1
        assert 0.001 <= sleeps[0] <= 0.002

    def test_unreachable_upstream_becomes_502(self):
        with ChaosProxy("http://127.0.0.1:1", ChaosConfig(seed=0)) as proxy:
            client = ServiceClient(proxy.base_url)
            body = client.solve(REQUEST)
            assert body["error"]["kind"] == "bad_gateway"
            assert proxy.stats()["upstream_unreachable"] == 1


class TestRouterThroughChaos:
    def test_router_absorbs_full_fault_storm_on_one_node(self):
        """Node A's proxy always faults; the router must still answer."""
        with running_service() as (url_a, _), running_service() as (url_b, _):
            chaos_a = ChaosProxy(url_a, ChaosConfig(seed=0, error_prob=1.0))
            chaos_b = ChaosProxy(url_b, ChaosConfig(seed=0))
            with chaos_a, chaos_b:
                router = ShardRouter(
                    [
                        NodeHandle(
                            chaos_a.base_url,
                            breaker=CircuitBreaker(failure_threshold=2),
                        ),
                        NodeHandle(
                            chaos_b.base_url,
                            breaker=CircuitBreaker(failure_threshold=2),
                        ),
                    ],
                    retry_policy=RetryPolicy(max_retries=4, base_delay=0.0, jitter=False),
                    sleep=lambda _: None,
                )
                for _ in range(4):
                    assert router.solve(dict(REQUEST))["status"] == "ok"
                stats = router.stats()
                # every response ultimately came from the healthy node
                assert stats["nodes"][chaos_b.base_url]["requests"] >= 4

    def test_router_retries_through_intermittent_drops(self):
        with running_service() as (url, _):
            chaos = ChaosProxy(url, ChaosConfig(seed=7, drop_prob=0.5))
            with chaos:
                router = ShardRouter(
                    [
                        NodeHandle(
                            chaos.base_url,
                            breaker=CircuitBreaker(failure_threshold=100),
                        )
                    ],
                    retry_policy=RetryPolicy(
                        max_retries=10, base_delay=0.0, jitter=False
                    ),
                    sleep=lambda _: None,
                )
                for _ in range(6):
                    assert router.solve(dict(REQUEST))["status"] == "ok"
