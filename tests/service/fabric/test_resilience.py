"""RetryPolicy and CircuitBreaker unit tests (deterministic clocks/rngs)."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import (
    ServiceError,
    TransientServiceError,
)
from repro.service.resilience import CircuitBreaker, RetryPolicy


class FakeClock:
    """Manually-advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRetryPolicyValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ServiceError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_negative_delays_rejected(self):
        with pytest.raises(ServiceError, match="delays"):
            RetryPolicy(base_delay=-0.1)

    def test_shrinking_multiplier_rejected(self):
        with pytest.raises(ServiceError, match="multiplier"):
            RetryPolicy(multiplier=0.5)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ServiceError, match="deadline"):
            RetryPolicy(deadline=0.0)


class TestBackoffDelay:
    def test_deterministic_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=1.0, jitter=False)
        assert policy.backoff_delay(0) == pytest.approx(0.1)
        assert policy.backoff_delay(1) == pytest.approx(0.2)
        assert policy.backoff_delay(2) == pytest.approx(0.4)

    def test_capped_by_max_delay(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=10.0, max_delay=0.5, jitter=False)
        assert policy.backoff_delay(5) == pytest.approx(0.5)

    def test_full_jitter_stays_in_range(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=1.0)
        rng = random.Random(7)
        for attempt in range(6):
            cap = min(1.0, 0.1 * 2.0**attempt)
            for _ in range(50):
                delay = policy.backoff_delay(attempt, rng=rng)
                assert 0.0 <= delay <= cap

    def test_retry_after_is_a_floor(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.01, jitter=False)
        assert policy.backoff_delay(0, retry_after=3.0) == pytest.approx(3.0)

    def test_retry_after_does_not_cap_larger_backoff(self):
        policy = RetryPolicy(base_delay=5.0, max_delay=5.0, jitter=False)
        assert policy.backoff_delay(0, retry_after=1.0) == pytest.approx(5.0)


class TestRetryPolicyRun:
    def test_first_attempt_success_no_sleep(self):
        sleeps: list[float] = []
        policy = RetryPolicy(max_retries=3)
        assert policy.run(lambda n: "ok", sleep=sleeps.append) == "ok"
        assert sleeps == []

    def test_retries_then_succeeds(self):
        sleeps: list[float] = []
        calls: list[int] = []

        def flaky(attempt: int) -> str:
            calls.append(attempt)
            if attempt < 2:
                raise TransientServiceError("boom")
            return "recovered"

        policy = RetryPolicy(max_retries=3, base_delay=0.1, jitter=False)
        assert policy.run(flaky, sleep=sleeps.append) == "recovered"
        assert calls == [0, 1, 2]
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_non_transient_error_not_retried(self):
        calls: list[int] = []

        def broken(attempt: int) -> None:
            calls.append(attempt)
            raise ServiceError("bad request")

        with pytest.raises(ServiceError, match="bad request"):
            RetryPolicy(max_retries=5).run(broken, sleep=lambda _: None)
        assert calls == [0]

    def test_exhaustion_reraises_last_error(self):
        def always(attempt: int) -> None:
            raise TransientServiceError(f"failure {attempt}")

        policy = RetryPolicy(max_retries=2, jitter=False, base_delay=0.0)
        with pytest.raises(TransientServiceError, match="failure 2"):
            policy.run(always, sleep=lambda _: None)

    def test_deadline_stops_retrying(self):
        clock = FakeClock()
        calls: list[int] = []

        def always(attempt: int) -> None:
            calls.append(attempt)
            clock.advance(0.6)
            raise TransientServiceError("down")

        policy = RetryPolicy(
            max_retries=10, base_delay=0.5, jitter=False, deadline=2.0
        )
        with pytest.raises(TransientServiceError):
            policy.run(always, sleep=lambda _: None, clock=clock)
        # attempt 0: elapsed 0.6 + backoff 0.5 fits the 2.0s budget, retry;
        # attempt 1: elapsed 1.2 + backoff 1.0 overruns it, so 2 calls total.
        assert len(calls) == 2

    def test_sleep_honours_retry_after_hint(self):
        sleeps: list[float] = []

        def flaky(attempt: int) -> str:
            if attempt == 0:
                raise TransientServiceError("busy", retry_after=2.5)
            return "ok"

        policy = RetryPolicy(max_retries=2, base_delay=0.01, jitter=False)
        assert policy.run(flaky, sleep=sleeps.append) == "ok"
        assert sleeps == [pytest.approx(2.5)]

    def test_on_retry_callback_fires(self):
        seen: list[tuple[int, str]] = []

        def flaky(attempt: int) -> str:
            if attempt == 0:
                raise TransientServiceError("first down")
            return "ok"

        RetryPolicy(max_retries=1, jitter=False, base_delay=0.0).run(
            flaky,
            sleep=lambda _: None,
            on_retry=lambda n, exc: seen.append((n, str(exc))),
        )
        assert seen == [(0, "first down")]


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ServiceError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ServiceError, match="reset_timeout"):
            CircuitBreaker(reset_timeout=0)
        with pytest.raises(ServiceError, match="half_open_probes"):
            CircuitBreaker(half_open_probes=0)

    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_opens_after_threshold_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.stats()["transitions"]["opened"] == 1

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_opens_after_reset_timeout(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.9)
        assert breaker.state == "open"
        clock.advance(0.2)
        assert breaker.state == "half_open"
        assert breaker.stats()["transitions"]["half_opened"] == 1

    def test_half_open_limits_probe_slots(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=1.0, half_open_probes=1, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()  # claims the single probe slot
        assert not breaker.allow()  # second caller rejected
        assert breaker.stats()["rejected"] >= 1

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.stats()["transitions"]["closed"] == 1

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.stats()["transitions"]["opened"] == 2
        # a fresh reset window is required again
        assert not breaker.allow()
        clock.advance(1.5)
        assert breaker.allow()

    def test_retry_after_hint_counts_down(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        assert breaker.retry_after_hint() is None
        breaker.record_failure()
        assert breaker.retry_after_hint() == pytest.approx(10.0)
        clock.advance(4.0)
        assert breaker.retry_after_hint() == pytest.approx(6.0)

    def test_stats_shape(self):
        breaker = CircuitBreaker()
        breaker.record_success()
        breaker.record_failure()
        stats = breaker.stats()
        assert stats["state"] == "closed"
        assert stats["successes"] == 1
        assert stats["failures"] == 1
        assert stats["consecutive_failures"] == 1
        assert set(stats["transitions"]) == {"opened", "half_opened", "closed"}
