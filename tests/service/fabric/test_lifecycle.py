"""Health/lifecycle tests: readiness split, graceful drain, degraded
fallback on deadline overrun, SIGTERM handling, crash-safe cache startup."""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import threading
import time
from contextlib import contextmanager

import pytest

from repro.core.serialize import problem_to_dict
from repro.exceptions import ServiceOverloadedError
from repro.service.app import SchedulingService
from repro.service.http import ServiceClient, make_server
from repro.workloads import example_problem

REQUEST = {"problem": problem_to_dict(example_problem()), "budget": 57.0}


@contextmanager
def running_service(**kwargs):
    service = SchedulingService(**kwargs)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}", service
    finally:
        server.shutdown()
        server.server_close()
        service.drain()


class TestReadiness:
    def test_live_service_is_ready(self):
        with running_service() as (url, service):
            client = ServiceClient(url)
            assert client.healthz() == {"status": "ok"}
            body = client._request("/v1/readyz")
            assert body["ready"] is True
            assert service.ready

    def test_draining_service_fails_readiness_but_stays_live(self):
        with running_service() as (url, service):
            service.drain()
            client = ServiceClient(url)
            # liveness unchanged: the process is up
            assert client.healthz() == {"status": "ok"}
            body = client._request("/v1/readyz")
            assert body["ready"] is False
            assert body["error"]["kind"] == "not_ready"

    def test_stats_reports_ready_flag(self):
        with running_service() as (url, service):
            client = ServiceClient(url)
            assert client.stats()["stats"]["ready"] is True
            service.drain()
            assert client.stats()["stats"]["ready"] is False


class TestGracefulDrain:
    def test_drain_rejects_new_work_with_503(self):
        with running_service() as (url, service):
            client = ServiceClient(url)
            assert client.solve(dict(REQUEST))["status"] == "ok"
            service.drain()
            body = client.solve(dict(REQUEST))
            assert body["status"] == "error"
            assert body["error"]["kind"] == "overloaded"
            assert "draining" in body["error"]["message"]

    def test_drain_is_idempotent(self):
        service = SchedulingService()
        service.drain()
        service.drain()
        assert not service.ready

    def test_drain_flushes_disk_cache(self, tmp_path):
        with running_service(cache_dir=tmp_path) as (url, service):
            client = ServiceClient(url)
            assert client.solve(dict(REQUEST))["status"] == "ok"
            # simulate a lost disk write, then drain: flush restores it
            for entry in tmp_path.glob("*.json"):
                entry.unlink()
            service.drain()
            assert list(tmp_path.glob("*.json")), "drain did not flush the cache"

    def test_direct_submit_after_drain_raises_typed_error(self):
        service = SchedulingService()
        service.drain()
        with pytest.raises(ServiceOverloadedError, match="draining"):
            service.solve(dict(REQUEST))


def _slow_jobs(service, delay: float = 0.5) -> None:
    """Make every executor job sleep before solving (deterministic timeouts)."""
    original = service.executor._fn

    def slowed(parsed):
        time.sleep(delay)
        return original(parsed)

    service.executor._fn = slowed


class TestDegradedFallback:
    def test_timeout_degrades_instead_of_504(self):
        with running_service(degrade_on_timeout=True) as (url, service):
            _slow_jobs(service)
            client = ServiceClient(url)
            request = dict(REQUEST, timeout=0.05)
            response = client.solve(request)
            assert response["status"] == "ok"
            assert response["degraded"] is True
            result = response["result"]
            assert result["degraded"] is True
            assert result["engine"] == "degraded"
            assert "degraded_reason" in result
            # the fallback is the least-cost schedule: within budget
            assert result["cost"] <= REQUEST["budget"] + 1e-9
            assert service.stats()["degraded"] == 1

    def test_degraded_responses_are_not_cached(self):
        with running_service(degrade_on_timeout=True) as (url, service):
            _slow_jobs(service)
            client = ServiceClient(url)
            request = dict(REQUEST, timeout=0.05)
            first = client.solve(request)
            second = client.solve(request)
            assert first["degraded"] and second["degraded"]
            assert second["cache_hit"] is False
            assert service.stats()["degraded"] == 2
            # an unconstrained request still computes the real schedule fresh
            real = client.solve(dict(REQUEST))
            assert real["status"] == "ok"
            assert "degraded" not in real["result"]
            assert real["cache_hit"] is False

    def test_without_flag_timeout_stays_an_error(self):
        with running_service() as (url, service):
            _slow_jobs(service)
            client = ServiceClient(url)
            body = client.solve(dict(REQUEST, timeout=0.05))
            assert body["status"] == "error"
            assert body["error"]["kind"] == "timeout"


class TestQuarantineStartup:
    def test_corrupt_entries_quarantined_on_startup(self, tmp_path):
        (tmp_path / "deadbeef.json").write_text("{torn write")
        (tmp_path / "cafebabe.json").write_text('["not", "a", "dict"]')
        with running_service(cache_dir=tmp_path) as (url, service):
            client = ServiceClient(url)
            stats = client.stats()["stats"]["cache"]
            assert stats["quarantined"] == 2
            quarantined = sorted(
                p.name for p in (tmp_path / "quarantine").iterdir()
            )
            assert quarantined == ["cafebabe.json", "deadbeef.json"]
            # the service still works
            assert client.solve(dict(REQUEST))["status"] == "ok"


_LISTEN_RE = re.compile(r"listening on http://([\w.\-]+):(\d+)")


class TestSigterm:
    def test_sigterm_drains_cleanly(self, tmp_path):
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--cache-dir",
                str(tmp_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            assert proc.stdout is not None
            line = proc.stdout.readline()
            match = _LISTEN_RE.search(line)
            assert match, f"no listen line: {line!r}"
            url = f"http://127.0.0.1:{match.group(2)}"
            client = ServiceClient(url)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                try:
                    client.healthz()
                    break
                except Exception:
                    time.sleep(0.1)
            assert client.solve(dict(REQUEST))["status"] == "ok"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0
            assert "drained cleanly" in out
            # the solved entry survived on disk through the drain flush
            entries = [
                json.loads(p.read_text()) for p in tmp_path.glob("*.json")
            ]
            assert entries, "no cache entry persisted before exit"
        finally:
            if proc.poll() is None:
                proc.kill()
