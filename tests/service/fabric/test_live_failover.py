"""Live-workflow failover: SIGKILL a node mid-stream, resume on a peer.

Two real ``repro serve`` subprocesses share a ``--live-dir``.  The event
stream starts against node A, which is SIGKILLed (no drain, no flush
hooks) halfway through; the producer then retries its last acknowledged
event against node B and continues.  Node B must lazily recover the
workflow from the append-before-apply event log: the retried event
replays (not re-applies), the remaining events land, and the final
state is byte-identical to an uninterrupted single-manager run — no
lost and no duplicated revisions.
"""

import re
import signal
import subprocess
import sys
import time

from repro.core.serialize import problem_to_dict
from repro.live.store import LiveWorkflowManager
from repro.service.codec import dumps
from repro.service.http import ServiceClient

_LISTEN_RE = re.compile(r"listening on http://([\w.\-]+):(\d+)")


def _start_node(live_dir) -> tuple[subprocess.Popen, ServiceClient]:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--live-dir",
            str(live_dir),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    match = _LISTEN_RE.search(line)
    assert match, f"no listen line: {line!r}"
    client = ServiceClient(f"http://127.0.0.1:{match.group(2)}", timeout=30.0)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            client.healthz()
            return proc, client
        except Exception:
            time.sleep(0.1)
    proc.kill()
    raise AssertionError("node never became healthy")


def _event_stream(problem, budget):
    """A deterministic full-run event list: one top-up, one late module."""
    from repro.algorithms.critical_greedy import CriticalGreedyScheduler

    plan = CriticalGreedyScheduler().solve(problem, budget)
    workflow = problem.workflow
    done: set[str] = set()
    order: list[str] = []
    names = list(workflow.module_names)
    while len(order) < len(names):
        for name in names:
            if name not in done and all(
                p in done for p in workflow.predecessors(name)
            ):
                order.append(name)
                done.add(name)
    events: list[dict] = [{"seq": 1, "type": "topup", "amount": 2.5}]
    seq = 2
    late = next(n for n in order if workflow.module(n).is_schedulable)
    for name in order:
        module = workflow.module(name)
        if module.is_schedulable:
            duration = problem.matrices.time(name, plan.schedule[name])
        else:
            duration = float(module.fixed_time or 0.0)
        if name == late:
            duration *= 1.5
        events.append({"seq": seq, "type": "started", "module": name})
        events.append(
            {
                "seq": seq + 1,
                "type": "completed",
                "module": name,
                "duration": duration,
            }
        )
        seq += 2
    return events


class TestSigkillFailover:
    def test_failover_resumes_without_losing_revisions(
        self, example_problem, tmp_path
    ):
        registration = {
            "problem": problem_to_dict(example_problem),
            "budget": 57.0,
        }
        events = _event_stream(example_problem, 57.0)

        # Reference: the same stream through one uninterrupted manager.
        reference = LiveWorkflowManager()
        wid = reference.register(dict(registration))["workflow_id"]
        acks = [reference.event(wid, dict(e)) for e in events]
        expected_status = reference.status(wid)
        assert expected_status["complete"]

        live_dir = tmp_path / "live"
        node_a = node_b = None
        try:
            node_a, client_a = _start_node(live_dir)
            node_b, client_b = _start_node(live_dir)

            body = client_a.register_workflow(dict(registration))
            assert body["workflow_id"] == wid

            split = len(events) // 2
            for event in events[:split]:
                ack = client_a.workflow_event(wid, dict(event))
                assert ack["status"] == "ok" and ack["replayed"] is False

            # Murder node A mid-stream: no drain, no atexit, nothing.
            node_a.send_signal(signal.SIGKILL)
            node_a.wait(timeout=10)

            # Producer retries its last acknowledged delivery on node B.
            retry = client_b.workflow_event(wid, dict(events[split - 1]))
            assert retry["replayed"] is True
            assert retry["seq"] == split
            assert retry["revision"] == acks[split - 1]["revision"]
            stored = {k: v for k, v in acks[split - 1].items() if k != "replayed"}
            replayed = {k: v for k, v in retry.items() if k != "replayed"}
            assert dumps(stored) == dumps(replayed)

            # ... and streams the rest of the run.
            for event in events[split:]:
                ack = client_b.workflow_event(wid, dict(event))
                assert ack["status"] == "ok" and ack["replayed"] is False

            status = client_b.workflow_status(wid)
            assert status["last_seq"] == len(events)
            assert status["revision"] == expected_status["revision"]
            assert status["complete"]
            # Byte-identical final state: nothing lost, nothing doubled.
            assert dumps(status) == dumps(expected_status)
        finally:
            for node in (node_a, node_b):
                if node is None or node.poll() is not None:
                    continue
                node.terminate()
                try:
                    node.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    node.kill()
