"""ShardRouter tests: sharding, failover, breakers, hedging, HTTP front-end."""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import (
    CircuitOpenError,
    ServiceError,
    TransientServiceError,
)
from repro.service.http import ServiceClient
from repro.service.keys import problem_hash
from repro.service.resilience import CircuitBreaker, RetryPolicy
from repro.service.router import (
    NodeHandle,
    ShardRouter,
    _body_status,
    make_router_server,
)

OK_BODY = {
    "status": "ok",
    "cache_hit": False,
    "result": {"algorithm": "critical-greedy", "cost": 1.0},
}


def problem_payload(tag: str) -> dict:
    """A hashable fake problem payload, distinct per tag."""
    return {
        "workflow": {"modules": [{"name": tag}], "edges": []},
        "catalog": [],
    }


def request_for(tag: str) -> dict:
    return {"problem": problem_payload(tag), "budget": 1.0}


def tag_for_shard(router: ShardRouter, shard: int) -> str:
    """Find a tag whose problem payload routes to the given shard."""
    for i in range(4096):
        tag = f"m{i}"
        if router.shard_of(problem_hash(problem_payload(tag))) == shard:
            return tag
    raise AssertionError(f"no tag found for shard {shard}")


class FakeClient:
    """Scripted stand-in for ServiceClient: pop one outcome per solve."""

    def __init__(self, outcomes=None, delay: float = 0.0):
        self.outcomes = list(outcomes or [])
        self.delay = delay
        self.calls: list[dict] = []

    def solve(self, payload: dict) -> dict:
        self.calls.append(payload)
        if self.delay:
            time.sleep(self.delay)
        outcome = self.outcomes.pop(0) if self.outcomes else OK_BODY
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    def stats(self) -> dict:
        return {
            "status": "ok",
            "stats": {
                "requests": len(self.calls),
                "degraded": 0,
                "cache": {"hits": 0, "misses": len(self.calls), "quarantined": 0},
            },
        }


def make_router(clients, *, hedge_delay=None, max_retries=3, breakers=None):
    nodes = [
        NodeHandle(
            f"http://node-{i}",
            client=client,
            breaker=(breakers[i] if breakers else CircuitBreaker()),
        )
        for i, client in enumerate(clients)
    ]
    return ShardRouter(
        nodes,
        retry_policy=RetryPolicy(max_retries=max_retries, base_delay=0.0, jitter=False),
        hedge_delay=hedge_delay,
        sleep=lambda _: None,
    )


class TestShardMap:
    def test_requires_nodes(self):
        with pytest.raises(ServiceError, match="at least one node"):
            ShardRouter([])

    def test_prefix_len_validated(self):
        node = NodeHandle("http://n", client=FakeClient())
        with pytest.raises(ServiceError, match="prefix_len"):
            ShardRouter([node], prefix_len=0)

    def test_shard_of_is_deterministic_and_in_range(self):
        router = make_router([FakeClient(), FakeClient(), FakeClient()])
        digest = problem_hash(problem_payload("a"))
        shard = router.shard_of(digest)
        assert 0 <= shard < 3
        assert router.shard_of(digest) == shard

    def test_malformed_digest_rejected(self):
        router = make_router([FakeClient()])
        with pytest.raises(ServiceError, match="malformed"):
            router.shard_of("zz-not-hex")

    def test_candidates_are_ring_ordered(self):
        router = make_router([FakeClient(), FakeClient(), FakeClient()])
        digest = problem_hash(problem_payload("a"))
        candidates = router.candidates(digest)
        assert len(candidates) == 3
        primary = router.shard_of(digest)
        assert candidates[0] is router.nodes[primary]
        assert candidates[1] is router.nodes[(primary + 1) % 3]


class TestRouting:
    def test_routes_to_shard_owner(self):
        a, b = FakeClient(), FakeClient()
        router = make_router([a, b])
        tag = tag_for_shard(router, 0)
        response = router.solve(request_for(tag))
        assert response["status"] == "ok"
        assert len(a.calls) == 1 and len(b.calls) == 0

    def test_missing_problem_rejected_without_retry(self):
        a = FakeClient()
        router = make_router([a])
        with pytest.raises(ServiceError, match="problem"):
            router.solve({"budget": 1.0})
        assert a.calls == []

    def test_failover_to_secondary_on_transport_error(self):
        a = FakeClient([TransientServiceError("connection refused")])
        b = FakeClient()
        router = make_router([a, b])
        tag = tag_for_shard(router, 0)
        response = router.solve(request_for(tag))
        assert response["status"] == "ok"
        assert len(a.calls) == 1 and len(b.calls) == 1
        assert router.stats()["failovers"] == 1

    def test_busy_node_retried_without_breaker_penalty(self):
        busy = {
            "status": "error",
            "error": {"kind": "overloaded", "message": "queue full"},
        }
        a = FakeClient([busy, busy])
        router = make_router([a])
        tag = tag_for_shard(router, 0)
        response = router.solve(request_for(tag))
        assert response["status"] == "ok"
        assert len(a.calls) == 3
        assert router.stats()["retries"] == 2
        assert router.nodes[0].breaker.stats()["failures"] == 0

    def test_node_fault_kind_trips_breaker(self):
        bad = {
            "status": "error",
            "error": {"kind": "bad_gateway", "message": "chaos"},
        }
        a = FakeClient([bad] * 10)
        b = FakeClient()
        breakers = [
            CircuitBreaker(failure_threshold=2),
            CircuitBreaker(failure_threshold=2),
        ]
        router = make_router([a, b], breakers=breakers)
        tag = tag_for_shard(router, 0)
        assert router.solve(request_for(tag))["status"] == "ok"
        assert breakers[0].stats()["failures"] == 1
        # a second request: one more failure opens node 0's breaker
        assert router.solve(request_for(tag))["status"] == "ok"
        assert breakers[0].state == "open"
        # now node 0 is skipped entirely
        calls_before = len(a.calls)
        assert router.solve(request_for(tag))["status"] == "ok"
        assert len(a.calls) == calls_before

    def test_client_errors_pass_through_untouched(self):
        infeasible = {
            "status": "error",
            "error": {"kind": "infeasible_budget", "message": "too poor"},
        }
        a = FakeClient([infeasible])
        b = FakeClient()
        router = make_router([a, b])
        tag = tag_for_shard(router, 0)
        response = router.solve(request_for(tag))
        assert response["error"]["kind"] == "infeasible_budget"
        assert len(b.calls) == 0  # no failover for the client's own error
        assert router.nodes[0].breaker.stats()["failures"] == 0

    def test_all_breakers_open_sheds_with_hint(self):
        breakers = [CircuitBreaker(failure_threshold=1, reset_timeout=30.0)]
        a = FakeClient()
        router = make_router([a], breakers=breakers, max_retries=0)
        breakers[0].record_failure()
        tag = tag_for_shard(router, 0)
        with pytest.raises(CircuitOpenError) as info:
            router.solve(request_for(tag))
        assert info.value.retry_after is not None
        assert info.value.retry_after <= 30.0
        assert router.stats()["shed"] == 1
        assert a.calls == []

    def test_exhausted_retries_reraise_last_transient(self):
        a = FakeClient([TransientServiceError("down")] * 10)
        router = make_router([a], max_retries=2)
        tag = tag_for_shard(router, 0)
        with pytest.raises(TransientServiceError, match="down"):
            router.solve(request_for(tag))
        assert len(a.calls) == 3  # initial + 2 retries

    def test_solve_batch_isolates_items(self):
        a = FakeClient()
        router = make_router([a])
        tag = tag_for_shard(router, 0)
        responses = router.solve_batch([request_for(tag), {"nope": True}])
        assert responses[0]["status"] == "ok"
        assert responses[1]["status"] == "error"
        assert responses[1]["error"]["kind"] == "bad_request"

    def test_solve_batch_requires_a_list(self):
        router = make_router([FakeClient()])
        with pytest.raises(ServiceError, match="array"):
            router.solve_batch({"not": "a list"})


class TestHedging:
    def test_unseen_key_is_not_hedged(self):
        a = FakeClient(delay=0.1)
        b = FakeClient()
        router = make_router([a, b], hedge_delay=0.01)
        tag = tag_for_shard(router, 0)
        assert router.solve(request_for(tag))["status"] == "ok"
        assert router.stats()["hedges"] == 0
        assert len(b.calls) == 0

    def test_seen_key_with_slow_primary_hedges(self):
        a = FakeClient(delay=0.3)
        b = FakeClient()
        router = make_router([a, b], hedge_delay=0.02)
        tag = tag_for_shard(router, 0)
        router.solve(request_for(tag))  # marks the key as seen
        response = router.solve(request_for(tag))
        assert response["status"] == "ok"
        stats = router.stats()
        assert stats["hedges"] == 1
        assert stats["hedge_wins"] == 1
        assert len(b.calls) == 1

    def test_fast_primary_wins_without_hedge(self):
        a = FakeClient()
        b = FakeClient()
        router = make_router([a, b], hedge_delay=0.5)
        tag = tag_for_shard(router, 0)
        router.solve(request_for(tag))
        router.solve(request_for(tag))
        assert router.stats()["hedges"] == 0
        assert len(b.calls) == 0

    def test_hedge_delay_validated(self):
        node = NodeHandle("http://n", client=FakeClient())
        with pytest.raises(ServiceError, match="hedge_delay"):
            ShardRouter([node], hedge_delay=-1.0)


class TestStats:
    def test_router_stats_shape(self):
        router = make_router([FakeClient(), FakeClient()])
        tag = tag_for_shard(router, 0)
        router.solve(request_for(tag))
        stats = router.stats()
        assert stats["routed"] == 1
        assert stats["seen_keys"] == 1
        assert set(stats["nodes"]) == {"http://node-0", "http://node-1"}
        node_stats = stats["nodes"]["http://node-0"]
        assert node_stats["requests"] == 1
        assert node_stats["breaker"]["state"] == "closed"

    def test_aggregated_stats_totals(self):
        router = make_router([FakeClient(), FakeClient()])
        tag = tag_for_shard(router, 0)
        router.solve(request_for(tag))
        aggregated = router.aggregated_stats()
        assert aggregated["totals"]["requests"] == 1
        assert aggregated["totals"]["cache_misses"] == 1
        assert "router" in aggregated and "nodes" in aggregated

    def test_aggregated_stats_survives_dead_node(self):
        class DeadClient(FakeClient):
            def stats(self):
                raise TransientServiceError("unreachable")

        router = make_router([DeadClient()])
        aggregated = router.aggregated_stats()
        assert "error" in aggregated["nodes"]["http://node-0"]

    def test_ready_reflects_breaker_states(self):
        breakers = [CircuitBreaker(failure_threshold=1, reset_timeout=30.0)]
        router = make_router([FakeClient()], breakers=breakers)
        assert router.ready
        breakers[0].record_failure()
        assert not router.ready


class TestBodyStatus:
    @pytest.mark.parametrize(
        "kind,status",
        [
            ("overloaded", 503),
            ("not_ready", 503),
            ("upstream_unavailable", 503),
            ("timeout", 504),
            ("internal", 500),
            ("not_found", 404),
            ("bad_request", 400),
            ("infeasible_budget", 400),
        ],
    )
    def test_error_kinds(self, kind, status):
        body = {"status": "error", "error": {"kind": kind}}
        assert _body_status(body) == status

    def test_ok_is_200(self):
        assert _body_status({"status": "ok"}) == 200


class TestRouterHTTP:
    @pytest.fixture()
    def served(self):
        a, b = FakeClient(), FakeClient()
        router = make_router([a, b])
        server = make_router_server(router)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            yield url, router, (a, b)
        finally:
            server.shutdown()
            server.server_close()

    def test_healthz_and_readyz(self, served):
        url, _, _ = served
        client = ServiceClient(url)
        assert client.healthz() == {"status": "ok"}
        ready = client._request("/v1/readyz")
        assert ready["ready"] is True

    def test_solve_roundtrip(self, served):
        url, router, _ = served
        client = ServiceClient(url)
        response = client.solve(request_for("anything"))
        assert response["status"] == "ok"
        assert router.stats()["routed"] == 1

    def test_solve_batch_roundtrip(self, served):
        url, _, _ = served
        client = ServiceClient(url)
        body = client.solve_batch([request_for("x"), {"bad": 1}])
        assert body["status"] == "ok"
        assert body["results"][0]["status"] == "ok"
        assert body["results"][1]["status"] == "error"

    def test_stats_endpoint_aggregates(self, served):
        url, _, _ = served
        client = ServiceClient(url)
        client.solve(request_for("y"))
        stats = client.stats()["stats"]
        assert stats["router"]["routed"] == 1
        assert "totals" in stats

    def test_unknown_route_404(self, served):
        url, _, _ = served
        client = ServiceClient(url)
        body = client._request("/v1/nope")
        assert body["error"]["kind"] == "not_found"

    def test_readyz_503_when_all_breakers_open(self):
        breakers = [CircuitBreaker(failure_threshold=1, reset_timeout=30.0)]
        router = make_router([FakeClient()], breakers=breakers)
        breakers[0].record_failure()
        server = make_router_server(router)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{server.server_address[1]}"
            )
            body = client._request("/v1/readyz")
            assert body["ready"] is False
            assert body["error"]["kind"] == "not_ready"
        finally:
            server.shutdown()
            server.server_close()
