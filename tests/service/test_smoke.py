"""End-to-end acceptance: the CI smoke module against a real subprocess.

Boots ``repro serve`` in a child process, replays the permuted example
workload, and checks the cache/stats assertions — the same run CI's
``service-smoke`` job performs.
"""

import json

from repro.service.smoke import main


def test_smoke_end_to_end(tmp_path):
    out = tmp_path / "service_stats.json"
    assert main(["--out", str(out)]) == 0
    stats = json.loads(out.read_text())
    assert stats["cache"]["hits"] >= 1
    assert stats["cache"]["misses"] >= 1
    assert stats["requests"] >= 2
