"""Content-hash tests: order invariance, sensitivity, key derivation."""

import json

import pytest

from repro.core.serialize import problem_to_dict
from repro.exceptions import ServiceError
from repro.service.keys import (
    RequestKey,
    canonical_problem_payload,
    params_hash,
    problem_hash,
    request_key,
)


def _reversed_payload(payload):
    permuted = json.loads(json.dumps(payload))
    permuted["workflow"]["modules"] = list(reversed(permuted["workflow"]["modules"]))
    permuted["workflow"]["edges"] = list(reversed(permuted["workflow"]["edges"]))
    permuted["catalog"] = list(reversed(permuted["catalog"]))
    # Measured execution-time vectors are indexed by catalog position, so
    # describing the same instance with a reversed catalog means the
    # vectors must be reversed in lockstep.
    if permuted.get("measured_te"):
        permuted["measured_te"] = {
            name: list(reversed(times))
            for name, times in permuted["measured_te"].items()
        }
    return permuted


class TestProblemHash:
    def test_stable_for_object_and_payload(self, example_problem):
        assert problem_hash(example_problem) == problem_hash(
            problem_to_dict(example_problem)
        )

    def test_invariant_under_listing_order(self, example_problem):
        payload = problem_to_dict(example_problem)
        assert problem_hash(payload) == problem_hash(_reversed_payload(payload))

    def test_invariant_under_display_name(self, example_problem):
        payload = problem_to_dict(example_problem)
        renamed = json.loads(json.dumps(payload))
        renamed["workflow"]["name"] = "something-else"
        assert problem_hash(payload) == problem_hash(renamed)

    def test_sensitive_to_workload_change(self, example_problem):
        payload = problem_to_dict(example_problem)
        changed = json.loads(json.dumps(payload))
        for mod in changed["workflow"]["modules"]:
            if mod.get("workload"):
                mod["workload"] = mod["workload"] + 1.0
                break
        assert problem_hash(payload) != problem_hash(changed)

    def test_measured_te_permuted_with_catalog(self, wrf_problem):
        """The WRF instance's measured-TE vectors follow the catalog order."""
        payload = problem_to_dict(wrf_problem)
        assert payload.get("measured_te"), "wrf instance should carry measured_te"
        assert problem_hash(payload) == problem_hash(_reversed_payload(payload))

    def test_malformed_payload_rejected(self):
        with pytest.raises(ServiceError, match="malformed problem payload"):
            problem_hash({"workflow": None, "catalog": []})


class TestCanonicalPayload:
    def test_modules_sorted_by_name(self, example_problem):
        canonical = canonical_problem_payload(example_problem)
        names = [m["name"] for m in canonical["workflow"]["modules"]]
        assert names == sorted(names)

    def test_catalog_sorted_by_name(self, example_problem):
        canonical = canonical_problem_payload(example_problem)
        names = [t["name"] for t in canonical["catalog"]]
        assert names == sorted(names)

    def test_display_name_dropped(self, example_problem):
        canonical = canonical_problem_payload(example_problem)
        assert "name" not in canonical["workflow"]


class TestParamsHash:
    def test_differs_by_budget(self):
        assert params_hash("cg", 10.0) != params_hash("cg", 20.0)

    def test_differs_by_params(self):
        assert params_hash("cg", 10.0, {"engine": "fast"}) != params_hash(
            "cg", 10.0, {"engine": "reference"}
        )

    def test_param_order_irrelevant(self):
        assert params_hash("cg", 10.0, {"a": 1, "b": 2}) == params_hash(
            "cg", 10.0, {"b": 2, "a": 1}
        )

    def test_unserializable_params_rejected(self):
        with pytest.raises(ServiceError, match="not JSON-serializable"):
            params_hash("cg", 10.0, {"fn": object()})


class TestRequestKey:
    def test_triple_and_digest(self, example_problem):
        key = request_key(example_problem, "critical-greedy", 57.0)
        assert isinstance(key, RequestKey)
        assert key.algorithm == "critical-greedy"
        assert len(key.digest()) == 64
        # digest is stable and sensitive to each component
        assert key.digest() == key.digest()
        other = request_key(example_problem, "critical-greedy", 58.0)
        assert key.digest() != other.digest()
