"""Live-workflow HTTP endpoints: status codes, error bodies, idempotency.

Mirrors ``test_http.py``'s error-mapping conventions: malformed and
out-of-order event payloads must answer 400/409 with structured error
bodies — never 500 — and retried deliveries must replay idempotently.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.serialize import problem_to_dict
from repro.service.app import SchedulingService
from repro.service.codec import dumps
from repro.service.http import HttpPeer, ServiceClient, make_server


@pytest.fixture
def served(tmp_path):
    service = SchedulingService(
        max_workers=2, queue_size=8, cache_size=32, live_dir=tmp_path / "live"
    )
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        yield service, client
    finally:
        server.shutdown()
        server.server_close()
        service.close()


@pytest.fixture
def registration(example_problem):
    return {"problem": problem_to_dict(example_problem), "budget": 57.0}


def raw_post(base_url: str, path: str, payload) -> tuple[int, dict]:
    request = urllib.request.Request(
        f"{base_url}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def raw_get(base_url: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(f"{base_url}{path}", timeout=30) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestLifecycle:
    def test_register_event_status_roundtrip(self, served, registration):
        _, client = served
        body = client.register_workflow(registration)
        assert body["status"] == "ok"
        wid = body["workflow_id"]

        code, event = raw_post(
            client.base_url,
            f"/v1/workflows/{wid}/events",
            {"seq": 1, "type": "topup", "amount": 3.0},
        )
        assert code == 200 and event["revision"] >= 0

        code, status = raw_get(client.base_url, f"/v1/workflows/{wid}")
        assert code == 200
        assert status["last_seq"] == 1
        assert status["total_budget"] == pytest.approx(60.0)
        assert "ledger" in status and "modules" in status

    def test_registration_replay_is_idempotent(self, served, registration):
        _, client = served
        first = client.register_workflow(registration)
        again = client.register_workflow(registration)
        assert again["replayed"] is True
        assert again["workflow_id"] == first["workflow_id"]

    def test_stats_exposes_live_section(self, served, registration):
        _, client = served
        client.register_workflow(registration)
        stats = client.stats()["stats"]
        assert stats["live"]["workflows"] == 1
        assert stats["live"]["registered"] == 1


class TestErrorMapping:
    def test_malformed_registration_is_400(self, served):
        _, client = served
        code, body = raw_post(client.base_url, "/v1/workflows", {"problem": 42})
        assert code == 400
        assert body["status"] == "error"
        assert body["error"]["kind"] == "bad_request"

    def test_unknown_workflow_is_404(self, served):
        _, client = served
        code, body = raw_get(client.base_url, "/v1/workflows/missing")
        assert code == 404
        assert body["error"]["kind"] == "not_found"
        code, body = raw_post(
            client.base_url,
            "/v1/workflows/missing/events",
            {"seq": 1, "type": "topup", "amount": 1.0},
        )
        assert code == 404
        assert body["error"]["kind"] == "not_found"

    def test_malformed_event_is_400(self, served, registration):
        _, client = served
        wid = client.register_workflow(registration)["workflow_id"]
        for payload in (
            {"seq": 0, "type": "topup", "amount": 1.0},
            {"seq": 1, "type": "paused"},
            {"seq": 1, "type": "completed", "module": "w1"},
            {"seq": 1, "type": "topup", "amount": -1.0},
            {"seq": 1, "type": "started", "module": "nope"},
        ):
            code, body = raw_post(
                client.base_url, f"/v1/workflows/{wid}/events", payload
            )
            assert code == 400, payload
            assert body["error"]["kind"] == "bad_request"

    def test_sequence_gap_is_409(self, served, registration):
        _, client = served
        wid = client.register_workflow(registration)["workflow_id"]
        code, body = raw_post(
            client.base_url,
            f"/v1/workflows/{wid}/events",
            {"seq": 7, "type": "topup", "amount": 1.0},
        )
        assert code == 409
        assert body["error"]["kind"] == "conflict"

    def test_divergent_replay_is_409_identical_is_200(
        self, served, registration
    ):
        _, client = served
        wid = client.register_workflow(registration)["workflow_id"]
        payload = {"seq": 1, "type": "topup", "amount": 2.0}
        code, first = raw_post(
            client.base_url, f"/v1/workflows/{wid}/events", payload
        )
        assert code == 200 and first["replayed"] is False

        # Router-style duplicate delivery: identical payload replays.
        code, replay = raw_post(
            client.base_url, f"/v1/workflows/{wid}/events", payload
        )
        assert code == 200 and replay["replayed"] is True
        body = {k: v for k, v in first.items() if k != "replayed"}
        replay_body = {k: v for k, v in replay.items() if k != "replayed"}
        assert dumps(body) == dumps(replay_body)

        # Same seq, different content: divergence, not a retry.
        code, body = raw_post(
            client.base_url,
            f"/v1/workflows/{wid}/events",
            {"seq": 1, "type": "topup", "amount": 9.0},
        )
        assert code == 409
        assert body["error"]["kind"] == "conflict"

    def test_conflicting_registration_is_409(self, served, registration):
        _, client = served
        wid = client.register_workflow(registration)["workflow_id"]
        code, body = raw_post(
            client.base_url,
            "/v1/workflows",
            {**registration, "workflow_id": wid, "budget": 64.0},
        )
        assert code == 409
        assert body["error"]["kind"] == "conflict"

    def test_infeasible_budget_is_400(self, served, registration):
        _, client = served
        code, body = raw_post(
            client.base_url, "/v1/workflows", {**registration, "budget": 0.01}
        )
        assert code == 400
        assert body["error"]["kind"] == "infeasible_budget"

    def test_corrupt_live_log_is_500_internal(
        self, served, registration, tmp_path
    ):
        """Server-side log corruption is a node fault (500/internal the
        router fails over on), never a 400 blamed on the client."""
        _, client = served
        wid = client.register_workflow(registration)["workflow_id"]
        log = tmp_path / "live" / f"{wid}.jsonl"
        log.write_text("garbage\n" + log.read_text())
        code, body = raw_get(client.base_url, f"/v1/workflows/{wid}")
        assert code == 500
        assert body["status"] == "error"
        assert body["error"]["kind"] == "internal"


class TestSync:
    def test_pull_unknown_is_404(self, served):
        _, client = served
        code, body = raw_get(client.base_url, "/v1/workflows/missing/sync")
        assert code == 404
        assert body["error"]["kind"] == "not_found"

    def test_pull_returns_raw_log_records(self, served, registration):
        _, client = served
        wid = client.register_workflow(registration)["workflow_id"]
        raw_post(
            client.base_url,
            f"/v1/workflows/{wid}/events",
            {"seq": 1, "type": "topup", "amount": 1.0},
        )
        code, body = raw_get(client.base_url, f"/v1/workflows/{wid}/sync")
        assert code == 200 and body["status"] == "ok"
        assert body["count"] == 2 and len(body["records"]) == 2
        assert all(isinstance(line, str) for line in body["records"])
        assert json.loads(body["records"][0])["kind"] == "registration"

    def test_push_reset_transplants_the_log(
        self, served, registration, tmp_path
    ):
        _, client = served
        wid = client.register_workflow(registration)["workflow_id"]
        raw_post(
            client.base_url,
            f"/v1/workflows/{wid}/events",
            {"seq": 1, "type": "topup", "amount": 2.0},
        )
        _, exported = raw_get(client.base_url, f"/v1/workflows/{wid}/sync")

        other = SchedulingService(live_dir=tmp_path / "other")
        server = make_server(other)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            code, body = raw_post(
                base,
                f"/v1/workflows/{wid}/sync",
                {"reset": True, "records": exported["records"]},
            )
            assert code == 200 and body["records"] == 2
            _, status = raw_get(base, f"/v1/workflows/{wid}")
            _, original = raw_get(client.base_url, f"/v1/workflows/{wid}")
            assert dumps(status) == dumps(original)
        finally:
            server.shutdown()
            server.server_close()
            other.close()

    def test_malformed_push_is_400(self, served):
        _, client = served
        code, body = raw_post(
            client.base_url, "/v1/workflows/wf/sync", {"records": "nope"}
        )
        assert code == 400
        assert body["error"]["kind"] == "bad_request"

    def test_base_mismatch_push_is_409(self, served, registration):
        _, client = served
        wid = client.register_workflow(registration)["workflow_id"]
        code, body = raw_post(
            client.base_url,
            f"/v1/workflows/{wid}/sync",
            {"base_records": 9, "records": ['{"kind":"fence","epoch":2}']},
        )
        assert code == 409
        assert body["error"]["kind"] == "conflict"

    def test_two_nodes_replicate_write_through(self, registration, tmp_path):
        """End-to-end federation over real HTTP: every write on B lands
        on A via HttpPeer push, and A serves the identical status."""
        node_a = SchedulingService(live_dir=tmp_path / "a")
        server_a = make_server(node_a)
        thread_a = threading.Thread(
            target=server_a.serve_forever, daemon=True
        )
        thread_a.start()
        url_a = f"http://127.0.0.1:{server_a.server_address[1]}"

        node_b = SchedulingService(
            live_dir=tmp_path / "b",
            live_node="b",
            live_peers=[HttpPeer(url_a)],
        )
        server_b = make_server(node_b)
        thread_b = threading.Thread(
            target=server_b.serve_forever, daemon=True
        )
        thread_b.start()
        url_b = f"http://127.0.0.1:{server_b.server_address[1]}"
        try:
            code, reg = raw_post(url_b, "/v1/workflows", registration)
            assert code == 200
            wid = reg["workflow_id"]
            for seq in (1, 2):
                code, _ = raw_post(
                    url_b,
                    f"/v1/workflows/{wid}/events",
                    {"seq": seq, "type": "topup", "amount": 1.0},
                )
                assert code == 200
            assert (tmp_path / "a" / f"{wid}.jsonl").read_bytes() == (
                tmp_path / "b" / f"{wid}.jsonl"
            ).read_bytes()
            _, from_a = raw_get(url_a, f"/v1/workflows/{wid}")
            _, from_b = raw_get(url_b, f"/v1/workflows/{wid}")
            assert dumps(from_a) == dumps(from_b)
            _, stats = raw_get(url_b, "/v1/stats")
            live = stats["stats"]["live"]
            assert live["peers"] == 1 and live["pushes"] == 3
            assert live["replication_lag"] == 0
        finally:
            for server, service in (
                (server_b, node_b),
                (server_a, node_a),
            ):
                server.shutdown()
                server.server_close()
                service.close()

    def test_stats_exposes_federation_health(self, served, registration):
        _, client = served
        client.register_workflow(registration)
        live = client.stats()["stats"]["live"]
        for key in (
            "fenced",
            "epoch_claims",
            "max_epoch",
            "last_checkpoint_seq",
            "checkpoints",
            "compactions",
            "pulls",
            "quarantined",
            "replication_lag",
            "peers",
            "fsync",
        ):
            assert key in live, key


class TestDraining:
    def test_draining_rejects_writes_allows_status(self, served, registration):
        service, client = served
        wid = client.register_workflow(registration)["workflow_id"]
        service.drain()
        code, body = raw_post(
            client.base_url,
            f"/v1/workflows/{wid}/events",
            {"seq": 1, "type": "topup", "amount": 1.0},
        )
        assert code == 503
        assert body["error"]["kind"] == "overloaded"
        code, body = raw_post(client.base_url, "/v1/workflows", registration)
        assert code == 503
        # Reads keep working so operators can inspect a draining node.
        code, status = raw_get(client.base_url, f"/v1/workflows/{wid}")
        assert code == 200 and status["workflow_id"] == wid
