"""HTTP front-end tests against an in-process threaded server."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.serialize import problem_to_dict
from repro.service.app import SchedulingService
from repro.service.codec import dumps
from repro.service.executor import JobExecutor
from repro.service.http import ServiceClient, make_server


@pytest.fixture
def served():
    """(service, client) around a live in-process HTTP server."""
    service = SchedulingService(max_workers=2, queue_size=8, cache_size=32)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        yield service, client
    finally:
        server.shutdown()
        server.server_close()
        service.close()


@pytest.fixture
def request_payload(example_problem):
    return {"problem": problem_to_dict(example_problem), "budget": 57.0}


class TestRoutes:
    def test_healthz(self, served):
        _, client = served
        assert client.healthz() == {"status": "ok"}

    def test_unknown_route_404(self, served):
        _, client = served
        response = client._request("/v1/nope")
        assert response["status"] == "error"
        assert response["error"]["kind"] == "not_found"

    def test_solve_then_replay_byte_identical(self, served, request_payload):
        _, client = served
        first = client.solve(request_payload)
        assert first["status"] == "ok" and first["cache_hit"] is False

        permuted = json.loads(json.dumps(request_payload))
        permuted["problem"]["workflow"]["modules"].reverse()
        permuted["problem"]["workflow"]["edges"].reverse()
        permuted["problem"]["catalog"].reverse()
        second = client.solve(permuted)
        assert second["cache_hit"] is True
        assert dumps(first["result"]["schedule"]) == dumps(
            second["result"]["schedule"]
        )

    def test_solve_batch(self, served, request_payload):
        _, client = served
        bad = {"budget": 1.0}
        response = client.solve_batch([request_payload, bad])
        assert response["status"] == "ok"
        ok, err = response["results"]
        assert ok["status"] == "ok"
        assert err["status"] == "error"
        assert err["error"]["kind"] == "bad_request"

    def test_stats_reports_hits_and_misses(self, served, request_payload):
        _, client = served
        client.solve(request_payload)
        client.solve(request_payload)
        stats = client.stats()["stats"]
        assert stats["cache"]["hits"] >= 1
        assert stats["cache"]["misses"] >= 1

    def test_malformed_body_is_400(self, served):
        _, client = served
        url = f"{client.base_url}/v1/solve"
        request = urllib.request.Request(
            url, data=b"{not json", headers={"Content-Type": "application/json"}
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400
        body = json.loads(info.value.read())
        assert body["error"]["kind"] == "bad_request"

    def test_infeasible_budget_is_400(self, served, request_payload):
        _, client = served
        response = client.solve(dict(request_payload, budget=0.01))
        assert response["status"] == "error"
        assert response["error"]["kind"] == "infeasible_budget"


class TestOverload:
    def test_queue_exceeding_request_is_503(self, example_problem):
        """Third concurrent request against workers=1/queue=1 gets HTTP 503."""
        service = SchedulingService(max_workers=1, queue_size=1, cache_size=32)
        release = threading.Event()
        started = threading.Event()
        inner = service._solve_job

        def gated(parsed):
            started.set()
            release.wait(15)
            return inner(parsed)

        service.executor.shutdown()
        service.executor = JobExecutor(gated, max_workers=1, queue_size=1)
        server = make_server(service)
        serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
        serve_thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        client = ServiceClient(base, timeout=30.0)

        def post_async(budget):
            payload = {"problem": problem_to_dict(example_problem), "budget": budget}
            thread = threading.Thread(
                target=client.solve, args=(payload,), daemon=True
            )
            thread.start()
            return thread

        try:
            blockers = [post_async(57.0)]
            assert started.wait(10), "worker never picked up the first job"
            blockers.append(post_async(58.0))
            deadline = threading.Event()
            for _ in range(500):  # wait until the second job occupies the queue
                if service.executor.stats()["submitted"] >= 2:
                    break
                deadline.wait(0.01)
            assert service.executor.stats()["submitted"] >= 2

            overflow = {"problem": problem_to_dict(example_problem), "budget": 59.0}
            request = urllib.request.Request(
                f"{base}/v1/solve",
                data=dumps(overflow).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=10)
            assert info.value.code == 503
            assert info.value.headers.get("Retry-After") == "1"
            body = json.loads(info.value.read())
            assert body["error"]["kind"] == "overloaded"
            assert body["error"]["type"] == "ServiceOverloadedError"
        finally:
            release.set()
            for thread in blockers:
                thread.join(timeout=15)
            server.shutdown()
            server.server_close()
            service.close()


class TestTimeout:
    def test_slow_job_is_504(self, example_problem):
        service = SchedulingService(max_workers=1, queue_size=4, cache_size=32)
        release = threading.Event()
        inner = service._solve_job

        def gated(parsed):
            release.wait(15)
            return inner(parsed)

        service.executor.shutdown()
        service.executor = JobExecutor(gated, max_workers=1, queue_size=4)
        server = make_server(service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            payload = {
                "problem": problem_to_dict(example_problem),
                "budget": 57.0,
                "timeout": 0.05,
            }
            request = urllib.request.Request(
                f"{base}/v1/solve",
                data=dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=10)
            assert info.value.code == 504
            body = json.loads(info.value.read())
            assert body["error"]["kind"] == "timeout"
        finally:
            release.set()
            server.shutdown()
            server.server_close()
            service.close()
