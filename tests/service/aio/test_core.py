"""AsyncServiceCore end-to-end: parity with the serial service, coalescing
counters, batching, backpressure, per-waiter timeouts, batch streaming.

The Hypothesis class is the ISSUE acceptance property: any interleaving of
duplicate and near-duplicate solve requests through the coalescer and the
micro-batcher produces responses byte-identical to serial ``solve()``.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialize import problem_to_dict
from repro.exceptions import (
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from repro.service.aio.core import AsyncServiceCore
from repro.service.app import SchedulingService
from repro.service.codec import dumps
from tests.conftest import medcc_problems


def run(coro):
    return asyncio.run(coro)


async def with_core(body, *, service=None, **core_kwargs):
    """Run ``body(service, core)`` around a fresh service + async core."""
    svc = service or SchedulingService(max_workers=2, queue_size=8, cache_size=64)
    core = AsyncServiceCore(svc, **core_kwargs)
    try:
        return await body(svc, core)
    finally:
        await core.aclose()
        svc.close()


@pytest.fixture
def payload(example_problem):
    return {"problem": problem_to_dict(example_problem), "budget": 57.0}


class TestSolveParity:
    def test_single_solve_matches_serial(self, example_problem, payload):
        with SchedulingService(max_workers=1, queue_size=4, cache_size=8) as ref:
            serial = ref.solve(dict(payload))

        async def body(svc, core):
            return await core.solve(payload)

        response = run(with_core(body))
        assert response["status"] == "ok"
        assert dumps(response["result"]) == dumps(serial["result"])

    def test_replay_is_cache_hit(self, payload):
        async def body(svc, core):
            first = await core.solve(payload)
            second = await core.solve(payload)
            return first, second

        first, second = run(with_core(body))
        assert first["cache_hit"] is False
        assert second["cache_hit"] is True
        assert dumps(first["result"]) == dumps(second["result"])

    def test_concurrent_duplicates_coalesce(self, payload):
        async def body(svc, core):
            responses = await asyncio.gather(*(core.solve(payload) for _ in range(6)))
            return responses, core.stats()

        responses, stats = run(with_core(body))
        blobs = {dumps(r["result"]) for r in responses}
        assert len(blobs) == 1
        assert stats["aio"]["flights_started"] == 1
        assert stats["aio"]["coalesced"] == 5
        assert stats["executor"]["submitted"] == 1
        assert stats["executor"]["done"] == 1
        assert stats["executor"]["active"] == 0

    def test_near_duplicates_share_a_batch_window(self, payload):
        budgets = [48.0, 57.0, 70.0, 95.0]

        async def body(svc, core):
            responses = await asyncio.gather(
                *(core.solve(dict(payload, budget=b)) for b in budgets)
            )
            return responses, core.stats()

        responses, stats = run(
            with_core(body, batch_window=0.05, batch_max=len(budgets))
        )
        assert [r["status"] for r in responses] == ["ok"] * len(budgets)
        assert stats["aio"]["batch_windows"] == 1
        assert stats["aio"]["batched_items"] == len(budgets)
        assert stats["aio"]["batch_fill"] == {str(len(budgets)): 1}

        # Byte parity against serial single solves of the same budgets.
        with SchedulingService(max_workers=1, queue_size=8, cache_size=8) as ref:
            for budget, response in zip(budgets, responses):
                serial = ref.solve(dict(payload, budget=budget))
                assert dumps(response["result"]) == dumps(serial["result"])


class TestBackpressureAndTimeouts:
    def test_overload_rejected_with_typed_error(self, payload):
        async def body(svc, core):
            # Stuff the admission gauge directly: capacity is
            # queue_size + max_workers, and _miss checks it first.
            core._active = core._capacity
            with pytest.raises(ServiceOverloadedError):
                await core.solve(payload)
            core._active = 0
            return core.stats()

        stats = run(with_core(body, max_workers=1, queue_size=1))
        assert stats["executor"]["rejected"] == 1
        assert stats["executor"]["submitted"] == 0  # rejected is not submitted

    def test_follower_timeout_does_not_cancel_solve(self, payload):
        async def body(svc, core):
            leader = asyncio.ensure_future(core.solve(payload))
            await asyncio.sleep(0)  # leader opens the flight
            with pytest.raises(ServiceTimeoutError):
                await core.solve(dict(payload, timeout=0.0001))
            response = await leader  # solve keeps running for the leader
            return response, core.stats()

        response, stats = run(with_core(body, batch_window=0.0))
        assert response["status"] == "ok"
        assert stats["aio"]["waiter_timeouts"] == 1
        assert stats["aio"]["coalesced"] == 1  # the follower joined the flight
        assert stats["executor"]["done"] == 1
        assert stats["executor"]["cancelled"] == 0

    def test_draining_core_rejects_new_work(self, payload):
        async def body(svc, core):
            await core.drain()
            with pytest.raises(ServiceOverloadedError):
                await core.solve(payload)
            return core.stats()

        stats = run(with_core(body))
        assert stats["ready"] is False


class TestBatchStream:
    def test_stream_matches_threaded_batch(self, payload):
        items = [
            dict(payload, budget=57.0),
            dict(payload, budget=57.0),  # duplicate of the first
            dict(payload, budget=70.0),
            {"problem": payload["problem"]},  # missing budget: per-item error
        ]

        with SchedulingService(max_workers=1, queue_size=8, cache_size=8) as ref:
            threaded = ref.solve_batch([dict(item) for item in items])

        async def body(svc, core):
            stream = core.solve_batch_stream([dict(item) for item in items])
            return [item async for item in stream], core.stats()

        streamed, stats = run(with_core(body))
        assert len(streamed) == len(threaded)
        for ours, theirs in zip(streamed, threaded):
            assert ours["status"] == theirs["status"]
            if theirs["status"] == "ok":
                assert dumps(ours["result"]) == dumps(theirs["result"])
            else:
                assert ours["error"]["kind"] == theirs["error"]["kind"]
        assert streamed[1]["deduped"] is True
        assert "deduped" not in streamed[0]
        assert stats["batch"]["deduped"] >= 1

    def test_non_array_body_raises_before_streaming(self, payload):
        async def body(svc, core):
            with pytest.raises(Exception, match="must be an array"):
                core.solve_batch_stream({"oops": True})
            return True

        assert run(with_core(body))


class TestStatsShape:
    def test_aio_section_and_executor_shape(self, payload):
        async def body(svc, core):
            await core.start()
            await core.solve(payload)
            await asyncio.sleep(0.3)  # let the lag monitor sample
            return core.stats()

        stats = run(with_core(body))
        aio = stats["aio"]
        for key in (
            "coalesced",
            "flights_started",
            "flights_inflight",
            "waiter_timeouts",
            "batch_windows",
            "batched_items",
            "batch_fill",
            "batch_window_ms",
            "batch_max",
            "loop_lag_p50",
            "loop_lag_p95",
            "problem_cache_size",
        ):
            assert key in aio
        assert aio["flights_inflight"] == 0
        assert aio["problem_cache_size"] == 1
        assert aio["loop_lag_p95"] is not None
        executor = stats["executor"]
        for key in (
            "submitted",
            "done",
            "failed",
            "timeout",
            "rejected",
            "cancelled",
            "active",
            "latency_p50",
            "latency_p95",
            "queue_capacity",
        ):
            assert key in executor


class TestInterleavingProperty:
    """Acceptance property: coalesced + batched ≡ serial, byte for byte."""

    @given(
        data=st.data(),
        problem=medcc_problems(max_modules=5, max_types=3),
    )
    @settings(max_examples=8, deadline=None)
    def test_any_interleaving_matches_serial(self, data, problem):
        payload = problem_to_dict(problem)
        budgets = data.draw(
            st.lists(
                st.sampled_from([5.0, 50.0, 500.0, 5000.0]),
                min_size=2,
                max_size=6,
            )
        )
        window = data.draw(st.sampled_from([0.0, 0.005, 0.03]))
        requests = [{"problem": payload, "budget": b} for b in budgets]

        # Serial reference on a fresh, independent service.
        reference = []
        with SchedulingService(max_workers=1, queue_size=8, cache_size=32) as ref:
            for request in requests:
                try:
                    reference.append(("ok", dumps(ref.solve(dict(request))["result"])))
                except Exception as exc:
                    reference.append(("error", type(exc).__name__))

        async def body(svc, core):
            tasks = [
                asyncio.ensure_future(core.solve(dict(request)))
                for request in requests
            ]
            return await asyncio.gather(*tasks, return_exceptions=True)

        outcomes = run(
            with_core(body, batch_window=window, batch_max=4, queue_size=32)
        )
        for expected, outcome in zip(reference, outcomes):
            if expected[0] == "ok":
                assert isinstance(outcome, dict), outcome
                assert dumps(outcome["result"]) == expected[1]
            else:
                assert isinstance(outcome, Exception)
                assert type(outcome).__name__ == expected[1]
