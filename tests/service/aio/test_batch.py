"""MicroBatcher unit tests: window expiry, early close, waiter isolation."""

import asyncio

import pytest

from repro.service.aio.batch import MicroBatcher


def run(coro):
    return asyncio.run(coro)


def echo_runner(log=None):
    async def runner(items):
        if log is not None:
            log.append(list(items))
        return [("ok", f"solved:{item}") for item in items]

    return runner


class TestWindowing:
    def test_window_expiry_drains_accumulated_items(self):
        async def scenario():
            batches = []
            batcher = MicroBatcher(
                echo_runner(batches), window=0.02, batch_max=32
            )
            results = await asyncio.gather(
                batcher.submit("g", "a"),
                batcher.submit("g", "b"),
                batcher.submit("g", "c"),
            )
            return batcher, batches, results

        batcher, batches, results = run(scenario())
        assert batches == [["a", "b", "c"]]  # one window, one runner call
        assert results == ["solved:a", "solved:b", "solved:c"]
        assert batcher.batch_windows == 1
        assert batcher.batched_items == 3
        assert batcher.batch_fill == {3: 1}

    def test_batch_max_closes_window_early(self):
        async def scenario():
            batches = []
            batcher = MicroBatcher(
                echo_runner(batches), window=30.0, batch_max=2
            )
            # window is huge: only the size cap can drain these.
            results = await asyncio.wait_for(
                asyncio.gather(
                    batcher.submit("g", "a"),
                    batcher.submit("g", "b"),
                ),
                timeout=5,
            )
            return batches, results

        batches, results = run(scenario())
        assert batches == [["a", "b"]]
        assert results == ["solved:a", "solved:b"]

    def test_distinct_groups_get_distinct_windows(self):
        async def scenario():
            batches = []
            batcher = MicroBatcher(
                echo_runner(batches), window=0.02, batch_max=32
            )
            await asyncio.gather(
                batcher.submit("g1", "a"),
                batcher.submit("g2", "b"),
            )
            return batches

        batches = run(scenario())
        assert sorted(batches) == [["a"], ["b"]]

    def test_enabled_reflects_knobs(self):
        runner = echo_runner()
        assert MicroBatcher(runner, window=0.002, batch_max=32).enabled
        assert not MicroBatcher(runner, window=0.0, batch_max=32).enabled
        assert not MicroBatcher(runner, window=0.002, batch_max=1).enabled


class TestOutcomeFanout:
    def test_error_outcomes_are_isolated_per_item(self):
        async def scenario():
            async def runner(items):
                return [
                    ("error", ValueError(item)) if item == "bad" else ("ok", item)
                    for item in items
                ]

            batcher = MicroBatcher(runner, window=0.02, batch_max=32)
            good, bad = await asyncio.gather(
                batcher.submit("g", "good"),
                batcher.submit("g", "bad"),
                return_exceptions=True,
            )
            return good, bad

        good, bad = run(scenario())
        assert good == "good"
        assert isinstance(bad, ValueError)

    def test_runner_crash_fans_out_to_every_waiter(self):
        async def scenario():
            async def runner(items):
                raise RuntimeError("solver pool died")

            batcher = MicroBatcher(runner, window=0.02, batch_max=32)
            return await asyncio.gather(
                batcher.submit("g", "a"),
                batcher.submit("g", "b"),
                return_exceptions=True,
            )

        outcomes = run(scenario())
        assert all(isinstance(o, RuntimeError) for o in outcomes)

    def test_cancelled_waiter_loses_slot_groupmates_proceed(self):
        async def scenario():
            batches = []
            batcher = MicroBatcher(
                echo_runner(batches), window=0.05, batch_max=32
            )
            doomed = asyncio.ensure_future(batcher.submit("g", "doomed"))
            kept = asyncio.ensure_future(batcher.submit("g", "kept"))
            await asyncio.sleep(0)  # both parked in the open window
            doomed.cancel()
            with pytest.raises(asyncio.CancelledError):
                await doomed
            result = await kept
            return batches, result

        batches, result = run(scenario())
        assert batches == [["kept"]]  # cancelled slot filtered before the run
        assert result == "solved:kept"
