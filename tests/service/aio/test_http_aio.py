"""Async HTTP front-end tests: threaded client parity, async client, stats.

The threaded :class:`ServiceClient` is used unchanged against the async
server — wire compatibility is part of the contract (chunked batch
responses are reassembled transparently by ``urllib``).
"""

import asyncio
import json
import threading
import urllib.request

import pytest

from repro.core.serialize import problem_to_dict
from repro.exceptions import ServiceError
from repro.service.aio.client import AsyncServiceClient
from repro.service.aio.http import BackgroundAsyncServer
from repro.service.app import SchedulingService
from repro.service.codec import dumps
from repro.service.http import ServiceClient, make_server


@pytest.fixture
def async_served():
    """(service, server, threaded client) around a live async node."""
    service = SchedulingService(max_workers=2, queue_size=8, cache_size=32)
    with BackgroundAsyncServer(
        service, max_workers=2, queue_size=8, batch_window=0.002, batch_max=8
    ) as server:
        yield service, server, ServiceClient(server.base_url)
    service.close()


@pytest.fixture
def request_payload(example_problem):
    return {"problem": problem_to_dict(example_problem), "budget": 57.0}


class TestRoutes:
    def test_healthz(self, async_served):
        _, _, client = async_served
        assert client.healthz() == {"status": "ok"}

    def test_unknown_route_404(self, async_served):
        _, _, client = async_served
        response = client._request("/v1/nope")
        assert response["status"] == "error"
        assert response["error"]["kind"] == "not_found"

    def test_solve_parity_with_threaded_server(self, async_served, request_payload):
        service, _, client = async_served
        threaded_service = SchedulingService(
            max_workers=2, queue_size=8, cache_size=32
        )
        threaded = make_server(threaded_service)
        thread = threading.Thread(target=threaded.serve_forever, daemon=True)
        thread.start()
        threaded_client = ServiceClient(
            f"http://127.0.0.1:{threaded.server_address[1]}"
        )
        try:
            ours = client.solve(request_payload)
            theirs = threaded_client.solve(request_payload)
            assert ours["status"] == theirs["status"] == "ok"
            assert dumps(ours["result"]) == dumps(theirs["result"])
        finally:
            threaded.shutdown()
            threaded.server_close()
            threaded_service.close()

    def test_solve_replay_cache_hit(self, async_served, request_payload):
        _, _, client = async_served
        first = client.solve(request_payload)
        second = client.solve(request_payload)
        assert first["cache_hit"] is False
        assert second["cache_hit"] is True

    def test_missing_budget_is_bad_request(self, async_served, request_payload):
        _, _, client = async_served
        del request_payload["budget"]
        response = client.solve(request_payload)
        assert response["status"] == "error"
        assert response["error"]["kind"] == "bad_request"
        assert "budget" in response["error"]["message"]

    def test_stats_has_aio_section(self, async_served, request_payload):
        _, _, client = async_served
        client.solve(request_payload)
        stats = client.stats()["stats"]
        assert "aio" in stats
        assert stats["aio"]["flights_started"] >= 1
        assert stats["executor"]["done"] >= 1


class TestBatchEndpoint:
    def test_chunked_batch_parity_and_dedupe(self, async_served, request_payload):
        _, _, client = async_served
        items = [
            dict(request_payload),
            dict(request_payload),  # duplicate
            dict(request_payload, budget=70.0),
            {"problem": request_payload["problem"]},  # missing budget
        ]
        response = client.solve_batch(items)
        assert response["status"] == "ok"
        results = response["results"]
        assert len(results) == 4
        assert results[0]["status"] == "ok"
        assert results[1]["deduped"] is True
        assert dumps(results[1]["result"]) == dumps(results[0]["result"])
        assert results[2]["status"] == "ok"
        assert results[3]["status"] == "error"
        assert results[3]["error"]["kind"] == "bad_request"

    def test_batch_response_is_chunked_on_the_wire(
        self, async_served, request_payload
    ):
        _, server, _ = async_served
        body = json.dumps({"requests": [request_payload]}).encode()
        request = urllib.request.Request(
            f"{server.base_url}/v1/solve_batch",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers.get("Transfer-Encoding") == "chunked"
            payload = json.loads(response.read())
        assert payload["status"] == "ok"

    def test_non_array_requests_is_bad_request(self, async_served):
        _, _, client = async_served
        response = client.solve_batch({"not": "a list"})  # type: ignore[arg-type]
        assert response["status"] == "error"
        assert response["error"]["kind"] == "bad_request"
        assert "array" in response["error"]["message"]


class TestAsyncClient:
    def test_concurrent_duplicates_coalesce_over_http(
        self, async_served, request_payload
    ):
        _, server, _ = async_served

        async def scenario():
            client = AsyncServiceClient(server.base_url)
            responses = await asyncio.gather(
                *(client.solve(request_payload) for _ in range(6))
            )
            stats = await client.stats()
            return responses, stats["stats"]

        responses, stats = asyncio.run(scenario())
        blobs = {dumps(r["result"]) for r in responses}
        assert len(blobs) == 1
        assert stats["aio"]["coalesced"] >= 1
        assert (
            stats["aio"]["flights_started"] + stats["aio"]["coalesced"]
            >= len(responses)
        )

    def test_rejects_non_http_url(self):
        with pytest.raises(ServiceError):
            AsyncServiceClient("ftp://example.com")
