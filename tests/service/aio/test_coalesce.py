"""SingleFlight unit tests: leadership, per-waiter timeouts, cancellation."""

import asyncio

import pytest

from repro.service.aio.coalesce import SingleFlight


def run(coro):
    return asyncio.run(coro)


class TestLeadership:
    def test_concurrent_callers_share_one_run(self):
        async def scenario():
            flights = SingleFlight()
            calls = 0
            release = asyncio.Event()

            async def work():
                nonlocal calls
                calls += 1
                await release.wait()
                return "answer"

            waiters = [
                asyncio.ensure_future(flights.run("k", work)) for _ in range(5)
            ]
            await asyncio.sleep(0)  # let every waiter join the flight
            release.set()
            results = await asyncio.gather(*waiters)
            return calls, results, flights

        calls, results, flights = run(scenario())
        assert calls == 1
        assert [value for value, _follower in results] == ["answer"] * 5
        assert [follower for _value, follower in results] == [
            False,
            True,
            True,
            True,
            True,
        ]
        assert flights.flights_started == 1
        assert flights.coalesced == 4
        assert len(flights) == 0  # table drained after completion

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            flights = SingleFlight()

            async def work(value):
                await asyncio.sleep(0)
                return value

            a, b = await asyncio.gather(
                flights.run("a", lambda: work(1)),
                flights.run("b", lambda: work(2)),
            )
            return flights, a, b

        flights, a, b = run(scenario())
        assert (a[0], b[0]) == (1, 2)
        assert flights.flights_started == 2
        assert flights.coalesced == 0

    def test_key_is_fresh_after_completion(self):
        async def scenario():
            flights = SingleFlight()
            calls = 0

            async def work():
                nonlocal calls
                calls += 1
                return calls

            first, _ = await flights.run("k", work)
            second, _ = await flights.run("k", work)
            return first, second

        assert run(scenario()) == (1, 2)

    def test_failure_propagates_to_every_waiter(self):
        async def scenario():
            flights = SingleFlight()
            release = asyncio.Event()

            async def work():
                await release.wait()
                raise ValueError("boom")

            waiters = [
                asyncio.ensure_future(flights.run("k", work)) for _ in range(3)
            ]
            await asyncio.sleep(0)
            release.set()
            return await asyncio.gather(*waiters, return_exceptions=True)

        outcomes = run(scenario())
        assert all(isinstance(o, ValueError) for o in outcomes)


class TestWaiterIsolation:
    def test_follower_timeout_leaves_flight_running(self):
        async def scenario():
            flights = SingleFlight()
            release = asyncio.Event()
            finished = asyncio.Event()

            async def work():
                await release.wait()
                finished.set()
                return "late answer"

            leader = asyncio.ensure_future(flights.run("k", work))
            await asyncio.sleep(0)
            with pytest.raises((TimeoutError, asyncio.TimeoutError)):
                await flights.run("k", work, timeout=0.01)
            # The flight must still be pending: the leader is parked on it.
            assert len(flights) == 1
            release.set()
            value, follower = await leader
            return value, follower, finished.is_set()

        value, follower, finished = run(scenario())
        assert value == "late answer"
        assert follower is False
        assert finished is True

    def test_last_waiter_timeout_cancels_flight(self):
        async def scenario():
            flights = SingleFlight()
            cancelled = asyncio.Event()

            async def work():
                try:
                    await asyncio.sleep(30)
                except asyncio.CancelledError:
                    cancelled.set()
                    raise
                return "never"

            with pytest.raises((TimeoutError, asyncio.TimeoutError)):
                await flights.run("k", work, timeout=0.01)
            await asyncio.sleep(0)
            return cancelled.is_set(), len(flights)

        was_cancelled, inflight = run(scenario())
        assert was_cancelled is True
        assert inflight == 0

    def test_cancelled_follower_does_not_cancel_leader(self):
        async def scenario():
            flights = SingleFlight()
            release = asyncio.Event()

            async def work():
                await release.wait()
                return "answer"

            leader = asyncio.ensure_future(flights.run("k", work))
            await asyncio.sleep(0)
            follower = asyncio.ensure_future(flights.run("k", work))
            await asyncio.sleep(0)
            follower.cancel()
            with pytest.raises(asyncio.CancelledError):
                await follower
            assert len(flights) == 1  # leader still parked on the flight
            release.set()
            value, _ = await leader
            return value

        assert run(scenario()) == "answer"

    def test_abandoned_flight_failure_is_consumed(self):
        # Every waiter gone, and the flight ends in an exception rather
        # than a clean cancellation: _on_done must consume the task
        # exception so asyncio does not log it at teardown.
        async def scenario():
            flights = SingleFlight()

            async def work():
                try:
                    await asyncio.sleep(30)
                except asyncio.CancelledError:
                    raise RuntimeError("failed during cleanup") from None

            with pytest.raises((TimeoutError, asyncio.TimeoutError)):
                await flights.run("k", work, timeout=0.01)
            await asyncio.sleep(0.01)
            return len(flights)

        assert run(scenario()) == 0
