"""Executor tests: pool, backpressure, timeouts, records, percentiles."""

import threading
import time

import pytest

from repro.exceptions import (
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from repro.service.executor import JobExecutor, percentile


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 50) is None

    def test_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 50) == 2.0
        assert percentile(samples, 95) == 4.0
        assert percentile(samples, 100) == 4.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ServiceError, match="percentile"):
            percentile([1.0], 200)


class TestBasicExecution:
    def test_submit_returns_result(self):
        with JobExecutor(lambda x: x * 2, max_workers=2, queue_size=8) as ex:
            assert ex.submit(21).result(timeout=5) == 42

    def test_submit_many_preserves_order(self):
        with JobExecutor(lambda x: x * 2, max_workers=4, queue_size=32) as ex:
            futures = ex.submit_many(range(10))
            assert [f.result(timeout=5) for f in futures] == [
                i * 2 for i in range(10)
            ]

    def test_job_error_propagates(self):
        def boom(_):
            raise ValueError("nope")

        with JobExecutor(boom, max_workers=1, queue_size=4) as ex:
            with pytest.raises(ValueError, match="nope"):
                ex.submit(1).result(timeout=5)
            assert ex.stats()["failed"] == 1

    def test_submit_after_shutdown_rejected(self):
        ex = JobExecutor(lambda x: x, max_workers=1, queue_size=4)
        ex.shutdown()
        with pytest.raises(ServiceError, match="shut down"):
            ex.submit(1)

    def test_bad_configuration_rejected(self):
        with pytest.raises(ServiceError, match="max_workers"):
            JobExecutor(lambda x: x, max_workers=0)
        with pytest.raises(ServiceError, match="queue_size"):
            JobExecutor(lambda x: x, queue_size=0)
        with pytest.raises(ServiceError, match="default_timeout"):
            JobExecutor(lambda x: x, default_timeout=-1.0)


class TestBackpressure:
    def test_full_queue_raises_typed_overload(self):
        release = threading.Event()
        started = threading.Event()

        def blocker(_):
            started.set()
            release.wait(10)
            return "done"

        ex = JobExecutor(blocker, max_workers=1, queue_size=1)
        try:
            first = ex.submit("a")
            assert started.wait(5)  # the worker holds job a
            second = ex.submit("b")  # fills the single queue slot
            with pytest.raises(ServiceOverloadedError) as info:
                ex.submit("c")
            assert info.value.queue_size == 1
            assert ex.stats()["rejected"] == 1
            release.set()
            assert first.result(timeout=5) == "done"
            assert second.result(timeout=5) == "done"
        finally:
            release.set()
            ex.shutdown()

    def test_concurrent_submit_accounting_is_exact(self):
        # Regression: admission used to check queue depth and increment
        # ``submitted`` non-atomically, so a burst of concurrent submits
        # could over-admit past capacity and count rejected jobs as
        # submitted.  Hammer a tiny executor from many threads and check
        # the books balance exactly.
        barrier = threading.Barrier(8)
        accepted = []
        rejected = []
        lock = threading.Lock()

        ex = JobExecutor(lambda x: x, max_workers=2, queue_size=2)
        try:

            def hammer():
                barrier.wait(5)
                for i in range(50):
                    try:
                        future = ex.submit(i)
                    except ServiceOverloadedError:
                        with lock:
                            rejected.append(i)
                    else:
                        with lock:
                            accepted.append(future)

            threads = [threading.Thread(target=hammer) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30)
            for future in accepted:
                future.result(timeout=10)

            stats = ex.stats()
            assert stats["submitted"] == len(accepted)
            assert stats["rejected"] == len(rejected)
            assert stats["submitted"] + stats["rejected"] == 400
            terminal = (
                stats["done"]
                + stats["failed"]
                + stats["cancelled"]
                + stats["timeout"]
            )
            assert terminal == stats["submitted"]
            assert stats["active"] == 0
        finally:
            ex.shutdown()

    def test_submit_many_captures_overload_per_item(self):
        release = threading.Event()
        started = threading.Event()

        def blocker(_):
            started.set()
            release.wait(10)
            return "ok"

        ex = JobExecutor(blocker, max_workers=1, queue_size=1)
        try:
            ex.submit("warm")
            assert started.wait(5)
            futures = ex.submit_many(["a", "b", "c"])
            release.set()
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result(timeout=5))
                except ServiceOverloadedError:
                    outcomes.append("overloaded")
            assert outcomes == ["ok", "overloaded", "overloaded"]
        finally:
            release.set()
            ex.shutdown()


class TestTimeouts:
    def test_slow_job_times_out(self):
        release = threading.Event()

        def slow(_):
            release.wait(10)
            return "late"

        ex = JobExecutor(slow, max_workers=1, queue_size=4)
        try:
            future = ex.submit("x", timeout=0.05)
            with pytest.raises(ServiceTimeoutError):
                future.result(timeout=5)
            assert ex.stats()["timeout"] == 1
        finally:
            release.set()
            ex.shutdown()

    def test_fast_job_beats_its_timeout(self):
        with JobExecutor(lambda x: x, max_workers=1, queue_size=4) as ex:
            assert ex.submit("x", timeout=5.0).result(timeout=5) == "x"
            assert ex.stats()["timeout"] == 0


class TestRecordsAndStats:
    def test_record_lifecycle(self):
        with JobExecutor(lambda x: x, max_workers=1, queue_size=4) as ex:
            ex.submit("x", label="unit").result(timeout=5)
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                records = [r for r in ex.records() if r.status == "done"]
                if records:
                    break
                time.sleep(0.01)
            assert records, "no finished record appeared"
            record = records[0]
            assert record.label == "unit"
            assert record.wait_time is not None and record.wait_time >= 0
            assert record.run_time is not None and record.run_time >= 0
            as_dict = record.to_dict()
            assert as_dict["status"] == "done"

    def test_annotate_hook_fills_engine_and_cache_hit(self):
        with JobExecutor(
            lambda x: {"engine": "fast", "cache_hit": False},
            max_workers=1,
            queue_size=4,
            annotate=lambda r: {"engine": r["engine"], "cache_hit": r["cache_hit"]},
        ) as ex:
            ex.submit("x").result(timeout=5)
            deadline = time.monotonic() + 5
            record = None
            while time.monotonic() < deadline:
                done = [r for r in ex.records() if r.status == "done"]
                if done:
                    record = done[0]
                    break
                time.sleep(0.01)
            assert record is not None
            assert record.engine == "fast"
            assert record.cache_hit is False

    def test_stats_latency_percentiles(self):
        with JobExecutor(lambda x: x, max_workers=2, queue_size=16) as ex:
            for future in ex.submit_many(range(8)):
                future.result(timeout=5)
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                stats = ex.stats()
                if stats["done"] == 8:
                    break
                time.sleep(0.01)
            assert stats["submitted"] == 8
            assert stats["done"] == 8
            assert stats["latency_p50"] is not None
            assert stats["latency_p95"] >= stats["latency_p50"]
            assert stats["queue_capacity"] == 16


class TestGracefulDrain:
    def test_inflight_jobs_complete_and_are_recorded(self):
        release = threading.Event()
        started = threading.Event()

        def blocker(x):
            started.set()
            release.wait(10)
            return x * 2

        ex = JobExecutor(blocker, max_workers=1, queue_size=4)
        inflight = ex.submit(21, label="inflight")
        assert started.wait(5)
        queued = ex.submit(10, label="queued")

        drainer = threading.Thread(target=ex.shutdown, kwargs={"drain": True})
        drainer.start()
        # the drain flag flips before workers finish; give it a moment
        deadline = time.monotonic() + 5
        while not ex.draining and time.monotonic() < deadline:
            time.sleep(0.01)
        assert ex.draining
        release.set()
        drainer.join(timeout=10)
        assert not drainer.is_alive()

        # both the running and the already-queued job finished normally
        assert inflight.result(timeout=5) == 42
        assert queued.result(timeout=5) == 20
        done = {r.label: r for r in ex.records() if r.status == "done"}
        assert set(done) == {"inflight", "queued"}
        assert ex.stats()["done"] == 2

    def test_submission_during_drain_raises_typed_overload(self):
        release = threading.Event()
        started = threading.Event()

        def blocker(x):
            started.set()
            release.wait(10)
            return x

        ex = JobExecutor(blocker, max_workers=1, queue_size=4)
        try:
            ex.submit("a")
            assert started.wait(5)
            drainer = threading.Thread(target=ex.shutdown, kwargs={"drain": True})
            drainer.start()
            deadline = time.monotonic() + 5
            while not ex.draining and time.monotonic() < deadline:
                time.sleep(0.01)
            with pytest.raises(ServiceOverloadedError, match="draining"):
                ex.submit("b")
        finally:
            release.set()
        drainer.join(timeout=10)
        assert not drainer.is_alive()

    def test_timed_out_jobs_do_not_leak_worker_slots(self):
        release = threading.Event()

        def slow_then_fast(x):
            if x == "slow":
                release.wait(10)
            return x

        ex = JobExecutor(slow_then_fast, max_workers=1, queue_size=8)
        try:
            slow = ex.submit("slow", timeout=0.05)
            with pytest.raises(ServiceTimeoutError):
                slow.result(timeout=5)
            # unblock the worker; the stale computation's result is discarded
            release.set()
            # the single worker slot must be reusable afterwards
            assert ex.submit("fast").result(timeout=5) == "fast"
            stats = ex.stats()
            assert stats["timeout"] == 1
            assert stats["done"] == 1
        finally:
            release.set()
            ex.shutdown()


class TestProcessPool:
    def test_process_mode_solves(self):
        with JobExecutor(
            abs, max_workers=2, queue_size=4, use_processes=True
        ) as ex:
            assert ex.submit(-5).result(timeout=30) == 5
