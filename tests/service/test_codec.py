"""Codec tests: determinism, envelope validation, round-trips."""

import pytest

from repro.core.schedule import Schedule
from repro.exceptions import ServiceError
from repro.core.vm import VMType, VMTypeCatalog
from repro.service.codec import (
    CODEC_VERSION,
    decode_catalog,
    decode_problem,
    decode_schedule,
    decode_workflow,
    dumps,
    encode_catalog,
    encode_problem,
    encode_schedule,
    encode_workflow,
    loads,
)
from repro.core.serialize import problem_to_dict


class TestDumpsLoads:
    def test_dumps_is_deterministic(self):
        payload = {"b": 1, "a": {"d": 2.5, "c": [1, 2]}}
        assert dumps(payload) == dumps(dict(reversed(list(payload.items()))))

    def test_dumps_is_compact_and_sorted(self):
        assert dumps({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_loads_rejects_malformed_json(self):
        with pytest.raises(ServiceError, match="malformed JSON"):
            loads("{nope")

    def test_loads_rejects_non_object(self):
        with pytest.raises(ServiceError, match="JSON object"):
            loads("[1, 2]")

    def test_dumps_rejects_nan(self):
        with pytest.raises(ValueError):
            dumps({"x": float("nan")})


class TestEnvelopes:
    def test_wrong_kind_rejected(self, example_problem):
        payload = encode_workflow(example_problem.workflow)
        with pytest.raises(ServiceError, match="expected a 'catalog'"):
            decode_catalog(payload)

    def test_future_version_rejected(self, example_problem):
        payload = encode_workflow(example_problem.workflow)
        payload["version"] = CODEC_VERSION + 1
        with pytest.raises(ServiceError, match="unsupported"):
            decode_workflow(payload)

    def test_every_envelope_is_stamped(self, example_problem):
        schedule = Schedule(
            {name: 0 for name in example_problem.workflow.schedulable_names}
        )
        for payload in (
            encode_workflow(example_problem.workflow),
            encode_catalog(example_problem.catalog),
            encode_problem(example_problem),
            encode_schedule(schedule, example_problem.catalog),
        ):
            assert payload["version"] == CODEC_VERSION
            assert "kind" in payload


class TestRoundTrips:
    def test_workflow(self, example_problem):
        wf = example_problem.workflow
        assert decode_workflow(encode_workflow(wf)) == wf

    def test_catalog(self, example_problem):
        cat = example_problem.catalog
        assert decode_catalog(encode_catalog(cat)) == cat

    def test_problem(self, example_problem):
        assert decode_problem(encode_problem(example_problem)) == example_problem

    def test_problem_accepts_bare_body(self, example_problem):
        assert decode_problem(problem_to_dict(example_problem)) == example_problem

    def test_schedule(self, example_problem):
        schedule = Schedule(
            {
                name: i % example_problem.num_types
                for i, name in enumerate(example_problem.workflow.schedulable_names)
            }
        )
        payload = encode_schedule(schedule, example_problem.catalog)
        assert decode_schedule(payload, example_problem.catalog) == schedule


class TestScheduleNameEncoding:
    def test_payload_survives_catalog_permutation(self, example_problem):
        """Name-based assignments render identically for a permuted catalog."""
        catalog = example_problem.catalog
        reversed_catalog = VMTypeCatalog(list(reversed(list(catalog))))
        names = list(example_problem.workflow.schedulable_names)
        schedule = Schedule({m: i % len(catalog) for i, m in enumerate(names)})
        payload = encode_schedule(schedule, catalog)
        # Decoding against the permuted catalog yields the same mapping
        # by *name*, and re-encoding reproduces the exact bytes.
        decoded = decode_schedule(payload, reversed_catalog)
        assert dumps(encode_schedule(decoded, reversed_catalog)) == dumps(payload)

    def test_unknown_type_name_rejected(self, example_problem):
        payload = {
            "kind": "schedule",
            "version": CODEC_VERSION,
            "assignment": {"w1": "no-such-type"},
        }
        with pytest.raises(ServiceError, match="cannot decode schedule"):
            decode_schedule(payload, example_problem.catalog)

    def test_missing_assignment_rejected(self, example_problem):
        payload = {"kind": "schedule", "version": CODEC_VERSION}
        with pytest.raises(ServiceError, match="assignment"):
            decode_schedule(payload, example_problem.catalog)


def test_decode_catalog_roundtrip_with_startup():
    catalog = VMTypeCatalog(
        [
            VMType(name="a", power=1.0, rate=2.0, startup_time=3.0, startup_cost=4.0),
            VMType(name="b", power=5.0, rate=0.5),
        ]
    )
    assert decode_catalog(encode_catalog(catalog)) == catalog
