"""repro — reproduction of Lin & Wu, *On Scientific Workflow Scheduling in
Clouds under Budget Constraint* (ICPP 2013).

The package implements the MED-CC problem (minimum end-to-end delay under
a cost constraint), the Critical-Greedy heuristic, the GAIN/LOSS baseline
families, exact solvers, the MCKP substrate behind the complexity results,
a discrete-event cloud workflow simulator, workload generators (including
the paper's WRF testbed workflow), and the full experiment harness that
regenerates every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import example_problem, CriticalGreedyScheduler
>>> problem = example_problem()
>>> result = CriticalGreedyScheduler().solve(problem, budget=57.0)
>>> result.total_cost <= 57.0
True
"""

from repro.algorithms import (
    CriticalGreedyScheduler,
    DeadlineGreedyScheduler,
    ExhaustiveScheduler,
    FastestScheduler,
    Gain3Scheduler,
    HeftScheduler,
    LeastCostScheduler,
    Loss3Scheduler,
    PipelineDPScheduler,
    RandomScheduler,
    SchedulerResult,
    available_schedulers,
    get_scheduler,
)
from repro.core import (
    BlockBilling,
    DataDependency,
    ExactBilling,
    HourlyBilling,
    MedCCProblem,
    Module,
    Schedule,
    ScheduleEvaluation,
    TransferModel,
    VMType,
    VMTypeCatalog,
    Workflow,
    WorkflowBuilder,
    analyze_critical_path,
    compute_matrices,
    linear_priced_catalog,
)
from repro.exceptions import (
    CatalogError,
    InfeasibleBudgetError,
    ReproError,
    ScheduleError,
    SimulationError,
    WorkflowValidationError,
)
from repro.workloads import (
    example_problem,
    generate_problem,
    paper_catalog,
    wrf_problem,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # algorithms
    "CriticalGreedyScheduler",
    "DeadlineGreedyScheduler",
    "ExhaustiveScheduler",
    "FastestScheduler",
    "Gain3Scheduler",
    "HeftScheduler",
    "LeastCostScheduler",
    "Loss3Scheduler",
    "PipelineDPScheduler",
    "RandomScheduler",
    "SchedulerResult",
    "available_schedulers",
    "get_scheduler",
    # core
    "BlockBilling",
    "DataDependency",
    "ExactBilling",
    "HourlyBilling",
    "MedCCProblem",
    "Module",
    "Schedule",
    "ScheduleEvaluation",
    "TransferModel",
    "VMType",
    "VMTypeCatalog",
    "Workflow",
    "WorkflowBuilder",
    "analyze_critical_path",
    "compute_matrices",
    "linear_priced_catalog",
    # exceptions
    "CatalogError",
    "InfeasibleBudgetError",
    "ReproError",
    "ScheduleError",
    "SimulationError",
    "WorkflowValidationError",
    # workloads
    "example_problem",
    "generate_problem",
    "paper_catalog",
    "wrf_problem",
]
