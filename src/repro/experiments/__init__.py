"""Experiment harness: one registered runner per paper table/figure.

=================  ==========================================================
Experiment id      Paper artifact
=================  ==========================================================
``table2``         Table II + Fig. 6 (numerical-example schedules vs budget)
``table3``         Table III (CG vs exhaustive optimum, small instances)
``fig7``           Fig. 7 (% of instances reaching the optimum)
``table4``         Table IV + Fig. 8 (avg MED across 20 problem sizes)
``fig9``           Fig. 9 (improvement per problem size)
``fig10``          Fig. 10 (improvement per budget level)
``fig11``          Fig. 11 (improvement surface)
``wrf``            Tables V-VII + Fig. 15 (WRF testbed study)
``complexity``     Section IV reductions, verified computationally
``leaderboard``    extension: the full scheduler zoo, paired statistics
``sensitivity``    extension: improvement vs the unpublished knobs
``robustness``     extension: budget safety margins vs time-estimation noise
``frontier``       extension: frontier regret vs the exact Pareto frontier
=================  ==========================================================

Run one with ``get_experiment(id)(**params)`` or via the CLI:
``python -m repro experiment table4``.
"""

from repro.experiments.complexity import run_complexity
from repro.experiments.example_schedules import run_example_schedules
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig9_10_11 import run_fig10, run_fig11, run_fig9
from repro.experiments.frontier_quality import run_frontier_quality
from repro.experiments.grid import ImprovementGrid, compute_improvement_grid
from repro.experiments.leaderboard import run_leaderboard
from repro.experiments.report import (
    ExperimentReport,
    available_experiments,
    get_experiment,
    register_experiment,
)
from repro.experiments.robustness import run_robustness
from repro.experiments.sensitivity import run_sensitivity
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.wrf import run_wrf

__all__ = [
    "ExperimentReport",
    "available_experiments",
    "get_experiment",
    "register_experiment",
    "ImprovementGrid",
    "compute_improvement_grid",
    "run_complexity",
    "run_example_schedules",
    "run_frontier_quality",
    "run_leaderboard",
    "run_robustness",
    "run_sensitivity",
    "run_fig7",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_table3",
    "run_table4",
    "run_wrf",
]
