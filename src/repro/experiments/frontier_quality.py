"""Experiment ``frontier`` — frontier regret vs the exact Pareto frontier.

Extension of Fig. 7: the paper's "%-of-instances-reaching-the-optimum"
statistic is binary and evaluated at a single budget.  Frontier *regret*
(`repro.analysis.frontier`) measures, over the **whole budget range**, how
far each heuristic's cost–delay frontier sits above the exact one:
``mean((MED_h(c) - MED_*(c)) / MED_*(c))`` across the exact frontier's
operating points.  Zero means the heuristic is optimal at every budget it
can reach.

Expected shape: CG's regret is small (a few percent) and at most GAIN3's
at every size; the lookahead portfolio's regret is ≤ CG's.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.algorithms.gain import Gain3Scheduler
from repro.algorithms.lookahead import LookaheadCriticalGreedyScheduler
from repro.analysis.frontier import (
    exact_frontier,
    frontier_regret,
    heuristic_frontier,
)
from repro.experiments.report import ExperimentReport, register_experiment
from repro.workloads.generator import SMALL_PROBLEM_SIZES, generate_problem

__all__ = ["run_frontier_quality"]


@register_experiment("frontier")
def run_frontier_quality(
    *,
    sizes: tuple[tuple[int, int, int], ...] = SMALL_PROBLEM_SIZES,
    instances_per_size: int = 20,
    levels: int = 16,
    seed: int = 303,
) -> ExperimentReport:
    """Mean frontier regret per heuristic per problem size."""
    heuristics = {
        "CG": CriticalGreedyScheduler(),
        "CG-lookahead": LookaheadCriticalGreedyScheduler(),
        "GAIN3": Gain3Scheduler(),
    }
    rng = np.random.default_rng(seed)

    rows = []
    per_alg_overall: dict[str, list[float]] = {k: [] for k in heuristics}
    for size in sizes:
        regrets: dict[str, list[float]] = {k: [] for k in heuristics}
        for _ in range(instances_per_size):
            problem = generate_problem(size, rng)
            exact = exact_frontier(problem)
            for label, solver in heuristics.items():
                frontier = heuristic_frontier(problem, solver, levels=levels)
                value = frontier_regret(frontier, exact) * 100.0
                regrets[label].append(value)
                per_alg_overall[label].append(value)
        rows.append(
            (
                f"({size[0]},{size[1]},{size[2]})",
                *(float(np.mean(regrets[k])) for k in heuristics),
            )
        )

    overall = {k: float(np.mean(v)) for k, v in per_alg_overall.items()}
    return ExperimentReport(
        experiment_id="frontier",
        title="Mean frontier regret vs the exact Pareto frontier, in % "
        "(extension of Fig. 7)",
        headers=("size", *heuristics),
        rows=tuple(rows),
        notes=(
            f"{instances_per_size} instances per size, {levels} budget "
            "levels per frontier; regret 0% = optimal at every reachable "
            "operating point",
            "overall: "
            + ", ".join(f"{k}={v:.2f}%" for k, v in overall.items()),
            "expected shape: CG-lookahead <= CG << GAIN3",
        ),
        data={"overall": overall},
    )
