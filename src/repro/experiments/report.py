"""Experiment report container and the experiment registry.

Every experiment module produces an :class:`ExperimentReport` — structured
rows (so tests and EXPERIMENTS.md generation can consume them) plus a
rendered text block (tables and ASCII figures) for humans.  Experiments
register themselves by id (``"table2"``, ``"fig7"``, …) so the CLI and the
benchmark harness can enumerate them.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.analysis.tables import format_table
from repro.exceptions import ExperimentError

__all__ = [
    "ExperimentReport",
    "register_experiment",
    "get_experiment",
    "available_experiments",
]


@dataclass(frozen=True)
class ExperimentReport:
    """Structured output of one experiment run.

    Attributes
    ----------
    experiment_id:
        Registry id, e.g. ``"table4"``.
    title:
        Human-readable description referencing the paper artifact.
    headers / rows:
        The main result table.
    figures:
        Pre-rendered ASCII figures.
    notes:
        Caveats and paper-vs-measured commentary.
    data:
        Raw structured results for programmatic consumers.
    """

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]
    figures: tuple[str, ...] = ()
    notes: tuple[str, ...] = ()
    data: dict = field(default_factory=dict)

    def render(self, *, precision: int = 2) -> str:
        """Full text rendering: title, table, figures, notes."""
        parts = [
            format_table(
                self.headers,
                self.rows,
                title=f"== {self.experiment_id}: {self.title} ==",
                precision=precision,
            )
        ]
        parts.extend(self.figures)
        if self.notes:
            parts.append("notes:")
            parts.extend(f"  - {n}" for n in self.notes)
        return "\n\n".join(parts)


_REGISTRY: dict[str, Callable[..., ExperimentReport]] = {}


def register_experiment(experiment_id: str):
    """Function decorator registering an experiment runner by id."""

    def decorator(fn: Callable[..., ExperimentReport]):
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"experiment {experiment_id!r} registered twice")
        _REGISTRY[experiment_id] = fn
        fn.experiment_id = experiment_id
        return fn

    return decorator


def get_experiment(experiment_id: str) -> Callable[..., ExperimentReport]:
    """Look up an experiment runner by id."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {known}"
        ) from None


def available_experiments() -> Sequence[str]:
    """All registered experiment ids, sorted."""
    return sorted(_REGISTRY)
