"""Experiment ``leaderboard`` — every budget scheduler on one playing field.

Not a paper artifact (marked *extension*): the paper compares CG against
GAIN3 only.  This experiment runs the full scheduler zoo over a common
grid of random instances and budget levels and reports, per scheduler,
the average MED and a paired comparison against Critical-Greedy
(bootstrap CI on the mean MED difference plus a sign test) — the summary
a practitioner needs to pick an algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import get_scheduler
from repro.analysis.stats import paired_comparison
from repro.analysis.sweep import sweep_budgets
from repro.experiments.report import ExperimentReport, register_experiment
from repro.workloads.generator import generate_problem

__all__ = ["run_leaderboard", "LEADERBOARD_SCHEDULERS"]

#: Budget-capable schedulers ranked by this experiment.
LEADERBOARD_SCHEDULERS: tuple[str, ...] = (
    "critical-greedy",
    "critical-greedy-lookahead",
    "gain1",
    "gain2",
    "gain3",
    "gain-absolute",
    "loss3",
    "least-cost",
    "random",
)


@register_experiment("leaderboard")
def run_leaderboard(
    *,
    sizes: tuple[tuple[int, int, int], ...] = (
        (10, 17, 4),
        (20, 80, 5),
        (40, 434, 6),
    ),
    instances: int = 4,
    levels: int = 6,
    seed: int = 77,
    schedulers: tuple[str, ...] = LEADERBOARD_SCHEDULERS,
) -> ExperimentReport:
    """Rank the scheduler zoo on a shared random-instance grid."""
    solvers = [get_scheduler(name) for name in schedulers]
    root = np.random.default_rng(seed)

    meds: dict[str, list[float]] = {name: [] for name in schedulers}
    for size in sizes:
        for rng in root.spawn(instances):
            problem = generate_problem(size, rng)
            sweep = sweep_budgets(problem, solvers, levels=levels)
            for point in sweep.points:
                for name in schedulers:
                    meds[name].append(point.med[name])

    reference = "critical-greedy"
    rows = []
    for name in schedulers:
        avg = float(np.mean(meds[name]))
        if name == reference:
            rows.append((name, avg, "-", "-", "-"))
            continue
        cmp = paired_comparison(meds[reference], meds[name], seed=seed)
        rows.append(
            (
                name,
                avg,
                cmp.mean_difference.describe(),
                f"{cmp.wins}/{cmp.ties}/{cmp.losses}",
                f"{cmp.p_value:.2g}",
            )
        )
    rows.sort(key=lambda r: r[1])

    n_points = len(meds[reference])
    return ExperimentReport(
        experiment_id="leaderboard",
        title="Scheduler leaderboard on random heterogeneous instances "
        "(extension — not a paper artifact)",
        headers=(
            "scheduler",
            "avg MED",
            "CG advantage (mean diff, CI)",
            "CG W/T/L",
            "sign-test p",
        ),
        rows=tuple(rows),
        notes=(
            f"{n_points} paired (instance, budget) points: "
            f"{len(sizes)} sizes x {instances} instances x {levels} levels",
            "CG advantage = mean(MED_other - MED_CG); positive means "
            "Critical-Greedy is faster",
            "lower avg MED is better; 'least-cost' and 'random' are the "
            "sanity floor and ceiling",
        ),
        data={"meds": meds, "schedulers": list(schedulers)},
    )
