"""Experiment ``table2`` — the numerical example's schedules (Table II, Fig. 6).

Sweeps the budget over the example instance's meaningful range
:math:`[C_{min}=48, C_{max}=64]` and records the Critical-Greedy schedule,
MED and cost at every whole-unit budget.  The distinct schedules and their
budget bands are compared against Table II (bands match exactly — see the
reconstruction notes in :mod:`repro.workloads.example`); the MED-vs-budget
staircase reproduces Fig. 6's shape.
"""

from __future__ import annotations

import math

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.analysis.figures import ascii_line
from repro.experiments.report import ExperimentReport, register_experiment
from repro.workloads.example import EXAMPLE_BUDGET_BANDS, example_problem

__all__ = ["run_example_schedules"]


@register_experiment("table2")
def run_example_schedules(*, budget_step: float = 1.0) -> ExperimentReport:
    """Run CG across the example's budget range and tabulate the schedules."""
    problem = example_problem()
    cg = CriticalGreedyScheduler()
    type_names = problem.catalog.names
    module_order = problem.matrices.module_names

    budgets: list[float] = []
    b = problem.cmin
    while b <= problem.cmax + 1e-9:
        budgets.append(round(b, 6))
        b += budget_step

    rows = []
    meds = []
    schedule_bands: list[tuple[tuple[int, ...], float, float, float]] = []
    for budget in budgets:
        result = cg.solve(problem, budget)
        vector = result.schedule.type_vector(module_order)
        rows.append(
            (
                budget,
                *(int(v) + 1 for v in vector),  # 1-based type ids as in Table II
                result.med,
                result.total_cost,
            )
        )
        meds.append(result.med)
        if schedule_bands and schedule_bands[-1][0] == vector:
            prev = schedule_bands[-1]
            schedule_bands[-1] = (vector, prev[1], budget, prev[3])
        else:
            schedule_bands.append((vector, budget, budget, result.med))

    # Compare the band boundaries against the paper's Table II.
    expected_lowers = [band[0] for band in EXAMPLE_BUDGET_BANDS]
    measured_lowers = [band[1] for band in schedule_bands]
    bands_match = len(expected_lowers) == len(measured_lowers) and all(
        math.isclose(a, b, abs_tol=1e-9)
        for a, b in zip(sorted(expected_lowers), sorted(measured_lowers))
    )

    fig6 = ascii_line(
        budgets,
        {"MED (Critical-Greedy)": meds},
        title="Fig. 6 — MED vs budget on the numerical example",
        x_label="budget",
        y_label="MED (time units)",
    )

    return ExperimentReport(
        experiment_id="table2",
        title="Schedules computed by Critical-Greedy on the numerical example "
        "(paper Table II / Fig. 6)",
        headers=("budget", "w1", "w2", "w3", "w4", "w5", "w6", "MED", "cost"),
        rows=tuple(rows),
        figures=(fig6,),
        notes=(
            f"cost range [Cmin, Cmax] = [{problem.cmin:g}, {problem.cmax:g}] "
            "(paper: [48, 64] — exact match)",
            f"distinct schedules: {len(schedule_bands)} "
            f"(paper Table II: {len(EXAMPLE_BUDGET_BANDS)})",
            "budget-band lower edges match Table II exactly: "
            + ("yes" if bands_match else "no"),
            "absolute MED values depend on the unpublished Fig. 4 topology; "
            "the staircase shape (monotone non-increasing, flat past 60) "
            "reproduces Fig. 6",
        ),
        data={
            "bands": schedule_bands,
            "bands_match_paper": bands_match,
            "budgets": budgets,
            "meds": meds,
        },
    )
