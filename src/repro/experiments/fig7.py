"""Experiment ``fig7`` — percentage of instances solved to optimality.

For each small problem size the paper generates 100 random instances,
sets the budget to the median of :math:`[C_{min}, C_{max}]`, runs
Critical-Greedy, GAIN3 and the exhaustive optimum, and reports the
percentage of instances where each heuristic matches the optimum
(Fig. 7).  Expected shape: CG's percentage exceeds GAIN3's at every size.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.algorithms.exhaustive import ExhaustiveScheduler
from repro.algorithms.gain import Gain3Scheduler
from repro.analysis.figures import ascii_bars
from repro.analysis.metrics import reached_optimal
from repro.experiments.report import ExperimentReport, register_experiment
from repro.workloads.generator import SMALL_PROBLEM_SIZES, generate_problem

__all__ = ["run_fig7"]


@register_experiment("fig7")
def run_fig7(
    *,
    instances_per_size: int = 100,
    sizes: tuple[tuple[int, int, int], ...] = SMALL_PROBLEM_SIZES,
    seed: int = 7,
) -> ExperimentReport:
    """Measure the %-of-optimal statistic for CG and GAIN3 (Fig. 7)."""
    cg = CriticalGreedyScheduler()
    gain = Gain3Scheduler()
    optimal = ExhaustiveScheduler()
    rng = np.random.default_rng(seed)

    rows = []
    labels = []
    cg_pct: list[float] = []
    gain_pct: list[float] = []
    for size in sizes:
        cg_hits = gain_hits = 0
        for _ in range(instances_per_size):
            problem = generate_problem(size, rng)
            budget = problem.median_budget()
            opt_med = optimal.solve(problem, budget).med
            cg_hits += reached_optimal(cg.solve(problem, budget).med, opt_med)
            gain_hits += reached_optimal(gain.solve(problem, budget).med, opt_med)
        label = f"({size[0]},{size[1]},{size[2]})"
        labels.append(label)
        cg_pct.append(100.0 * cg_hits / instances_per_size)
        gain_pct.append(100.0 * gain_hits / instances_per_size)
        rows.append((label, cg_pct[-1], gain_pct[-1]))

    fig = ascii_bars(
        labels,
        {"Critical-Greedy": cg_pct, "GAIN3": gain_pct},
        title="Fig. 7 — % of instances reaching the exhaustive optimum "
        "(median budget)",
    )

    return ExperimentReport(
        experiment_id="fig7",
        title="Percentage of optimal results, CG vs GAIN3 (paper Fig. 7)",
        headers=("size", "CG % optimal", "GAIN3 % optimal"),
        rows=tuple(rows),
        figures=(fig,),
        notes=(
            f"{instances_per_size} random instances per size, budget = "
            "median of [Cmin, Cmax] (§VI-B1)",
            "expected shape: CG reaches optimality more often than GAIN3 "
            "at every size (paper observes the same 'in a statistical sense')",
        ),
        data={"labels": labels, "cg_pct": cg_pct, "gain_pct": gain_pct},
    )
