"""Experiment ``table3`` — Critical-Greedy vs the exact optimum (Table III).

For each small problem size (5, 6 and 7 modules, 3 VM types) the paper
generates 5 random instances, picks a random budget within
:math:`[C_{min}, C_{max}]` and compares Critical-Greedy's MED against the
exhaustive-search optimum.  Expected shape: CG matches the optimum in most
cells and never beats it (it cannot — the exhaustive search is exact).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.algorithms.exhaustive import ExhaustiveScheduler
from repro.analysis.metrics import reached_optimal
from repro.experiments.report import ExperimentReport, register_experiment
from repro.workloads.generator import generate_problem

__all__ = ["run_table3", "TABLE3_SIZES"]

#: The three problem sizes of Table III.
TABLE3_SIZES: tuple[tuple[int, int, int], ...] = ((5, 6, 3), (6, 11, 3), (7, 14, 3))


@register_experiment("table3")
def run_table3(
    *,
    instances_per_size: int = 5,
    sizes: tuple[tuple[int, int, int], ...] = TABLE3_SIZES,
    seed: int = 2013,
) -> ExperimentReport:
    """Compare CG against the exhaustive optimum on random small instances."""
    cg = CriticalGreedyScheduler()
    optimal = ExhaustiveScheduler()
    rng = np.random.default_rng(seed)

    rows = []
    matches = 0
    total = 0
    for size in sizes:
        for instance_idx in range(1, instances_per_size + 1):
            problem = generate_problem(size, rng)
            budget = problem.random_feasible_budget(rng)
            cg_result = cg.solve(problem, budget)
            opt_result = optimal.solve(problem, budget)
            hit = reached_optimal(cg_result.med, opt_result.med)
            matches += hit
            total += 1
            rows.append(
                (
                    f"({size[0]},{size[1]},{size[2]})",
                    instance_idx,
                    cg_result.med,
                    opt_result.med,
                    hit,
                )
            )

    return ExperimentReport(
        experiment_id="table3",
        title="Critical-Greedy vs optimal on small random instances "
        "(paper Table III)",
        headers=("size", "instance", "CG MED", "optimal MED", "CG = optimal"),
        rows=tuple(rows),
        notes=(
            f"CG reached the optimum in {matches}/{total} instances "
            "(paper: 13/15 across its random draws)",
            "budgets drawn uniformly from [Cmin, Cmax] per instance (§VI-B1)",
        ),
        data={"matches": matches, "total": total},
    )
