"""Experiment ``complexity`` — computational check of the Section IV proofs.

Two constructive demonstrations:

* **Theorem 1** (NP-completeness via MCKP): random pipeline MED-CC
  instances are reduced to MCKP; the MCKP optimum (Pareto DP) mapped back
  through the reduction must equal the MED-CC-Pipeline optimum computed
  directly (pipeline DP) — profit/time totals related by
  ``time = m*K - profit``.
* **Theorem 2** (non-approximability gadget): random MCKP instances are
  turned into the proof's MED-CC gadget; the gadget's claimed properties
  (the all-max-power schedule is feasible and optimal) are verified with
  an exact solver.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.pipeline_dp import PipelineDPScheduler
from repro.experiments.report import ExperimentReport, register_experiment
from repro.mckp.dp import solve_pareto
from repro.mckp.problem import MCKPInstance
from repro.mckp.reduction import NonApproxGadget, pipeline_to_mckp
from repro.workloads.generator import paper_catalog
from repro.workloads.synthetic import pipeline_workflow

__all__ = ["run_complexity"]


def _random_mckp(rng: np.random.Generator, m: int, n: int) -> MCKPInstance:
    weights = rng.integers(1, 30, size=(m, n)).astype(float)
    profits = rng.integers(1, 50, size=(m, n)).astype(float)
    capacity = float(weights.min(axis=1).sum() + rng.integers(5, 40))
    return MCKPInstance.from_lists(weights.tolist(), profits.tolist(), capacity)


@register_experiment("complexity")
def run_complexity(
    *, trials: int = 10, pipeline_length: int = 6, seed: int = 41
) -> ExperimentReport:
    """Verify both reductions on random instances and tabulate the outcomes."""
    from repro.core.problem import MedCCProblem

    rng = np.random.default_rng(seed)
    rows = []
    all_ok = True

    for trial in range(1, trials + 1):
        # --- Theorem 1 direction: pipeline MED-CC -> MCKP ---------------- #
        workflow = pipeline_workflow(
            pipeline_length, base_workload=float(rng.uniform(20, 60))
        )
        problem = MedCCProblem(workflow=workflow, catalog=paper_catalog(3))
        budget = float(rng.uniform(problem.cmin, problem.cmax))
        mckp_instance, big_k = pipeline_to_mckp(problem, budget)
        mckp_opt = solve_pareto(mckp_instance)
        direct = PipelineDPScheduler().solve(problem, budget)
        # Total schedulable execution time implied by the MCKP optimum.
        m = problem.num_modules
        mckp_time = m * big_k - mckp_opt.total_profit
        direct_time = sum(
            problem.matrices.time(name, direct.schedule[name])
            for name in problem.matrices.module_names
        )
        t1_ok = abs(mckp_time - direct_time) < 1e-6

        # --- Theorem 2 direction: MCKP -> the non-approx gadget ---------- #
        gadget = NonApproxGadget.build(_random_mckp(rng, m=4, n=3))
        claims = gadget.check_claims()
        t2_ok = all(claims.values())

        all_ok = all_ok and t1_ok and t2_ok
        rows.append(
            (
                trial,
                t1_ok,
                mckp_time,
                direct_time,
                t2_ok,
                claims["feasible"],
                claims["is_optimal"],
            )
        )

    return ExperimentReport(
        experiment_id="complexity",
        title="Constructive check of the Theorem 1 / Theorem 2 reductions "
        "(paper Section IV)",
        headers=(
            "trial",
            "T1 match",
            "MCKP-implied time",
            "direct optimal time",
            "T2 claims hold",
            "gadget feasible",
            "gadget optimal",
        ),
        rows=tuple(rows),
        notes=(
            "Theorem 1: optimal MCKP profit maps back to the optimal "
            "pipeline execution time via time = m*K - profit",
            "Theorem 2: the all-max-power schedule of the constructed "
            "gadget is feasible within budget c and delay-optimal",
            f"all {trials} trials passed: " + ("yes" if all_ok else "NO"),
        ),
        data={"all_ok": all_ok},
    )
