"""Experiment ``sensitivity`` — which unpublished knob drives the headline?

Not a paper artifact (marked *extension*), but central to judging the
reproduction: the paper leaves two generator knobs unspecified (workload
distribution and catalog progression) and one algorithmic detail
ambiguous (GAIN3's weight).  This experiment sweeps all three and
reports the CG-over-GAIN3 improvement in every cell, turning the
reproduction's calibration argument (EXPERIMENTS.md) into a regenerable
table.

Expected shape: the improvement is large and positive only for
heavy-tailed workloads with the relative-weight GAIN3; uniform workloads
and/or the absolute-weight GAIN erase or invert it.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.algorithms.gain import Gain3Scheduler, GainAbsoluteScheduler
from repro.analysis.sweep import sweep_budgets
from repro.experiments.report import ExperimentReport, register_experiment
from repro.workloads.generator import generate_problem, paper_catalog

__all__ = ["run_sensitivity"]

#: (label, workload_distribution, workload_sigma)
_WORKLOADS: tuple[tuple[str, str, float], ...] = (
    ("uniform", "uniform", 1.0),
    ("lognormal s=1", "lognormal", 1.0),
    ("lognormal s=2", "lognormal", 2.0),
)

#: (label, catalog scaling)
_CATALOGS: tuple[tuple[str, str], ...] = (
    ("arithmetic", "arithmetic"),
    ("doubling", "doubling"),
)


@register_experiment("sensitivity")
def run_sensitivity(
    *,
    size: tuple[int, int, int] = (25, 201, 5),
    instances: int = 3,
    levels: int = 8,
    seed: int = 1234,
) -> ExperimentReport:
    """Sweep distribution x catalog x GAIN-weight; report CG improvement."""
    cg = CriticalGreedyScheduler()
    baselines = {
        "gain3 (relative)": Gain3Scheduler(),
        "gain (absolute)": GainAbsoluteScheduler(),
    }

    rows = []
    cells: dict[tuple[str, str, str], float] = {}
    for wl_label, dist, sigma in _WORKLOADS:
        for cat_label, scaling in _CATALOGS:
            catalog = paper_catalog(size[2], scaling=scaling)
            imps: dict[str, list[float]] = {k: [] for k in baselines}
            root = np.random.default_rng(seed)
            for rng in root.spawn(instances):
                problem = generate_problem(
                    size,
                    rng,
                    workload_distribution=dist,
                    workload_sigma=sigma,
                    catalog=catalog,
                )
                sweep = sweep_budgets(
                    problem, [cg, *baselines.values()], levels=levels
                )
                cg_avg = sweep.average_med("critical-greedy")
                for label, solver in baselines.items():
                    base_avg = sweep.average_med(solver.name)
                    imps[label].append((base_avg - cg_avg) / base_avg * 100.0)
            row = [wl_label, cat_label]
            for label in baselines:
                value = float(np.mean(imps[label]))
                cells[(wl_label, cat_label, label)] = value
                row.append(value)
            rows.append(tuple(row))

    headline = cells[("lognormal s=2", "arithmetic", "gain3 (relative)")]
    return ExperimentReport(
        experiment_id="sensitivity",
        title="Sensitivity of the CG-over-GAIN improvement to the "
        "unpublished knobs (extension — calibration evidence)",
        headers=(
            "workloads",
            "catalog",
            "imp% vs gain3 (relative)",
            "imp% vs gain (absolute)",
        ),
        rows=tuple(rows),
        notes=(
            f"problem size {size}, {instances} instances x {levels} budget "
            "levels per cell; improvement = (MED_gain - MED_cg)/MED_gain",
            "the reproduction's default regime (lognormal s=2, arithmetic "
            f"catalog, relative GAIN3) yields {headline:.1f}% here",
            "shape: heavy tails + the relative weight produce the paper's "
            "positive margins; uniform workloads or the absolute weight "
            "shrink or invert them",
        ),
        data={"cells": cells},
    )
