"""Experiment ``wrf`` — the WRF testbed study (Tables V–VII, Fig. 15).

Runs Critical-Greedy and GAIN3 on the WRF instance (published TE matrix,
Table VI; published rates, Table V) at the six published budget values and
tabulates the schedules and MEDs, side by side with the paper's measured
values.  Every schedule is additionally *executed* on the DES simulator
(one VM per module, instantaneous staging) to confirm the reported MED is
realizable, and re-executed with VM-reuse packing to quantify the saving
the paper discusses in §VI-C3.

Reproduction caveats (see also ``EXPERIMENTS.md``): the paper's Table VII
MEDs are wall-clock measurements on the physical Nimbus testbed with
visible run-to-run noise, and some rows are mutually inconsistent under
any fixed execution-time matrix (e.g. the CG rows at budgets 174.9 and
186.2 imply different w4→w5 path lengths from identical module times).
Our model-computed MEDs therefore match some rows exactly (e.g. CG at
147.5 → 468.6) and differ at budgets where the published schedule is
infeasible under the published cost matrix.
"""

from __future__ import annotations

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.algorithms.gain import Gain3Scheduler
from repro.analysis.figures import ascii_bars
from repro.experiments.report import ExperimentReport, register_experiment
from repro.sim.broker import WorkflowBroker
from repro.sim.packing import pack_schedule
from repro.workloads.wrf import WRF_BUDGETS, wrf_problem

__all__ = ["run_wrf", "PAPER_WRF_MED"]

#: Published Table VII MEDs (seconds) per budget, for reference columns.
PAPER_WRF_MED: dict[float, tuple[float, float]] = {
    # budget: (CG med, GAIN3 med)
    147.5: (468.6, 809.2),
    150.0: (467.9, 809.8),
    155.0: (436.8, 784.0),
    174.9: (213.9, 281.2),
    180.1: (212.7, 270.6),
    186.2: (206.4, 270.8),
}


@register_experiment("wrf")
def run_wrf(
    *, budgets: tuple[float, ...] = WRF_BUDGETS, simulate: bool = True
) -> ExperimentReport:
    """CG vs GAIN3 on the WRF workflow at the paper's budgets."""
    problem = wrf_problem()
    cg = CriticalGreedyScheduler()
    gain = Gain3Scheduler()
    module_order = problem.matrices.module_names

    rows = []
    cg_meds = []
    gain_meds = []
    reuse_notes = []
    for budget in budgets:
        cg_result = cg.solve(problem, budget)
        gain_result = gain.solve(problem, budget)
        paper_cg, paper_gain = PAPER_WRF_MED.get(budget, (float("nan"),) * 2)

        if simulate:
            sim = WorkflowBroker(problem=problem, schedule=cg_result.schedule).run()
            assert abs(sim.makespan - cg_result.med) < 1e-6, (
                "simulated CG makespan drifted from the analytical MED"
            )
            plan = pack_schedule(problem, cg_result.schedule, mode="adjacent")
            packed = WorkflowBroker(
                problem=problem, schedule=cg_result.schedule, vm_plan=plan
            ).run()
            reuse_notes.append(
                f"B={budget:g}: CG uses {plan.num_vms} VMs after reuse packing "
                f"(vs {len(module_order)} modules); packed bill "
                f"{packed.total_cost:.1f} vs per-module bill "
                f"{cg_result.total_cost:.1f}"
            )

        cg_vec = "".join(
            str(cg_result.schedule[m] + 1) for m in module_order
        )
        gain_vec = "".join(
            str(gain_result.schedule[m] + 1) for m in module_order
        )
        cg_meds.append(cg_result.med)
        gain_meds.append(gain_result.med)
        rows.append(
            (
                budget,
                cg_vec,
                cg_result.med,
                paper_cg,
                gain_vec,
                gain_result.med,
                paper_gain,
            )
        )

    fig15 = ascii_bars(
        [f"{b:g}" for b in budgets],
        {"CG": cg_meds, "GAIN3": gain_meds},
        title="Fig. 15 — MED of CG vs GAIN3 at the paper's WRF budgets "
        "(model-computed)",
    )

    wins = sum(c <= g + 1e-9 for c, g in zip(cg_meds, gain_meds))
    return ExperimentReport(
        experiment_id="wrf",
        title="WRF workflow: CG vs GAIN3 at six budgets "
        "(paper Tables V-VII / Fig. 15)",
        headers=(
            "budget",
            "CG w1..w6",
            "CG MED",
            "paper CG",
            "GAIN3 w1..w6",
            "GAIN3 MED",
            "paper GAIN3",
        ),
        rows=tuple(rows),
        figures=(fig15,),
        notes=(
            f"cost range [Cmin, Cmax] = [{problem.cmin:g}, {problem.cmax:g}] "
            "(paper: [125.9, 243.6] — exact match)",
            f"CG <= GAIN3 at {wins}/{len(budgets)} budgets (paper: 6/6 on "
            "its testbed; see EXPERIMENTS.md for the noise analysis)",
            "paper MEDs are physical-testbed wall-clock measurements with "
            "run-to-run noise; ours are model-computed from Table VI",
        ),
        data={
            "budgets": list(budgets),
            "cg_meds": cg_meds,
            "gain_meds": gain_meds,
            "reuse": reuse_notes,
        },
    )
