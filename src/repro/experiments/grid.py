"""The shared size × budget-level improvement grid behind Figs. 9–11.

The paper's Figs. 9, 10 and 11 are three views of the same computation:
for each of the 20 problem sizes, generate 10 random workflow instances;
for each instance sweep 20 uniform budget levels; at every (size, level)
cell average Critical-Greedy's improvement over GAIN3 across the 10
instances.  Fig. 9 averages the grid over levels (per-size curve), Fig. 10
over sizes (per-level curve), and Fig. 11 shows the full surface.

Computing the grid once and caching it per parameter set keeps the three
experiments consistent with each other and avoids tripling the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.algorithms.gain import Gain3Scheduler
from repro.analysis.metrics import improvement_percent
from repro.analysis.sweep import sweep_budgets
from repro.workloads.generator import PAPER_PROBLEM_SIZES, generate_problem

__all__ = ["ImprovementGrid", "compute_improvement_grid", "DEFAULT_GRID_SIZES"]

#: Full paper grid (20 sizes).  Experiments accept reduced subsets.
DEFAULT_GRID_SIZES: tuple[tuple[int, int, int], ...] = PAPER_PROBLEM_SIZES


@dataclass(frozen=True)
class ImprovementGrid:
    """Improvement surface: ``values[size_idx][level_idx]`` in percent."""

    sizes: tuple[tuple[int, int, int], ...]
    levels: int
    instances: int
    values: tuple[tuple[float, ...], ...]

    def by_size(self) -> list[float]:
        """Fig. 9 view — mean improvement per problem size."""
        return [float(np.mean(row)) for row in self.values]

    def by_level(self) -> list[float]:
        """Fig. 10 view — mean improvement per budget level."""
        arr = np.asarray(self.values)
        return [float(v) for v in arr.mean(axis=0)]

    def overall(self) -> float:
        """Grand mean improvement over the whole grid."""
        return float(np.mean(np.asarray(self.values)))


@lru_cache(maxsize=8)
def compute_improvement_grid(
    sizes: tuple[tuple[int, int, int], ...] = DEFAULT_GRID_SIZES,
    *,
    instances: int = 10,
    levels: int = 20,
    seed: int = 911,
    n_jobs: int | str = 1,
) -> ImprovementGrid:
    """Compute (and cache) the CG-over-GAIN3 improvement grid.

    For each (size, budget level) cell the value is the mean over
    ``instances`` random instances of
    ``(MED_GAIN - MED_CG) / MED_GAIN * 100``.

    ``n_jobs`` (an int or ``"auto"``) is forwarded to
    :func:`repro.analysis.sweep.sweep_budgets` (per-sweep budget-level
    parallelism); the grid values are identical for any ``n_jobs``, so
    the cache key including it is harmless.
    """
    cg = CriticalGreedyScheduler()
    gain = Gain3Scheduler()
    root = np.random.default_rng(seed)

    surface: list[tuple[float, ...]] = []
    for size in sizes:
        per_level = np.zeros(levels)
        for rng in root.spawn(instances):
            problem = generate_problem(size, rng)
            sweep = sweep_budgets(problem, [cg, gain], levels=levels, n_jobs=n_jobs)
            per_level += np.array(
                [
                    improvement_percent(
                        point.med["gain3"], point.med["critical-greedy"]
                    )
                    for point in sweep.points
                ]
            )
        surface.append(tuple(float(v) for v in per_level / instances))
    return ImprovementGrid(
        sizes=sizes, levels=levels, instances=instances, values=tuple(surface)
    )
