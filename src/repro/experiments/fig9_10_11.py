"""Experiments ``fig9``, ``fig10`` and ``fig11`` — improvement views.

Three views of the shared size × budget-level improvement grid (see
:mod:`repro.experiments.grid`):

* ``fig9`` — average improvement per problem size (200 runs per point in
  the paper: 10 instances × 20 budget levels);
* ``fig10`` — average improvement per budget level (200 runs per point:
  20 sizes × 10 instances);
* ``fig11`` — the full (size × level) surface as a heatmap.

Expected shapes: improvement grows with problem size (Fig. 9), grows with
budget level (Fig. 10), and the surface is highest in the
large-size/large-budget corner (Fig. 11); the paper quotes ≈35% average.
"""

from __future__ import annotations

from repro.analysis.figures import ascii_heatmap, ascii_line
from repro.experiments.grid import (
    DEFAULT_GRID_SIZES,
    compute_improvement_grid,
)
from repro.experiments.report import ExperimentReport, register_experiment

__all__ = ["run_fig9", "run_fig10", "run_fig11"]


@register_experiment("fig9")
def run_fig9(
    *,
    sizes: tuple[tuple[int, int, int], ...] = DEFAULT_GRID_SIZES,
    instances: int = 10,
    levels: int = 20,
    seed: int = 911,
) -> ExperimentReport:
    """Average improvement per problem size (paper Fig. 9)."""
    grid = compute_improvement_grid(
        sizes, instances=instances, levels=levels, seed=seed
    )
    per_size = grid.by_size()
    rows = tuple(
        (idx, f"({s[0]},{s[1]},{s[2]})", imp)
        for idx, (s, imp) in enumerate(zip(sizes, per_size), start=1)
    )
    fig = ascii_line(
        list(range(1, len(sizes) + 1)),
        {"improvement %": per_size},
        title="Fig. 9 — average improvement of CG over GAIN3 per problem size",
        x_label="problem index",
        y_label="improvement (%)",
    )
    return ExperimentReport(
        experiment_id="fig9",
        title="Average MED improvement per problem size "
        f"({instances} instances x {levels} budget levels each; paper Fig. 9)",
        headers=("idx", "size", "improvement %"),
        rows=rows,
        figures=(fig,),
        notes=(
            f"grand mean improvement {grid.overall():.1f}% "
            "(paper: ~35% on the full grid)",
            "expected shape: improvement grows with problem size",
        ),
        data={"per_size": per_size, "overall": grid.overall()},
    )


@register_experiment("fig10")
def run_fig10(
    *,
    sizes: tuple[tuple[int, int, int], ...] = DEFAULT_GRID_SIZES,
    instances: int = 10,
    levels: int = 20,
    seed: int = 911,
) -> ExperimentReport:
    """Average improvement per budget level (paper Fig. 10)."""
    grid = compute_improvement_grid(
        sizes, instances=instances, levels=levels, seed=seed
    )
    per_level = grid.by_level()
    rows = tuple(
        (level, imp) for level, imp in enumerate(per_level, start=1)
    )
    fig = ascii_line(
        list(range(1, levels + 1)),
        {"improvement %": per_level},
        title="Fig. 10 — average improvement of CG over GAIN3 per budget level",
        x_label="budget level",
        y_label="improvement (%)",
    )
    return ExperimentReport(
        experiment_id="fig10",
        title="Average MED improvement per budget level "
        f"({len(sizes)} sizes x {instances} instances each; paper Fig. 10)",
        headers=("budget level", "improvement %"),
        rows=rows,
        figures=(fig,),
        notes=(
            "expected shape: improvement grows as the budget grows — near "
            "Cmin neither algorithm has room to explore (§VI-B3)",
        ),
        data={"per_level": per_level, "overall": grid.overall()},
    )


@register_experiment("fig11")
def run_fig11(
    *,
    sizes: tuple[tuple[int, int, int], ...] = DEFAULT_GRID_SIZES,
    instances: int = 10,
    levels: int = 20,
    seed: int = 911,
) -> ExperimentReport:
    """The full improvement surface (paper Fig. 11)."""
    grid = compute_improvement_grid(
        sizes, instances=instances, levels=levels, seed=seed
    )
    rows = tuple(
        (idx, f"({s[0]},{s[1]},{s[2]})", *row)
        for idx, (s, row) in enumerate(zip(sizes, grid.values), start=1)
    )
    fig = ascii_heatmap(
        grid.values,
        row_labels=[f"size{idx}" for idx in range(1, len(sizes) + 1)],
        col_labels=[str(l) for l in range(1, levels + 1)],
        title="Fig. 11 — improvement surface (rows: problem sizes, "
        "cols: budget levels)",
    )
    return ExperimentReport(
        experiment_id="fig11",
        title="Improvement surface over problem sizes x budget levels "
        "(paper Fig. 11)",
        headers=("idx", "size", *(f"L{l}" for l in range(1, levels + 1))),
        rows=rows,
        figures=(fig,),
        notes=(
            f"grand mean improvement {grid.overall():.1f}% "
            "(paper: 'an average of 35% performance improvement')",
            "expected shape: surface rises toward the large-size, "
            "large-budget corner",
        ),
        data={"surface": grid.values, "overall": grid.overall()},
    )
