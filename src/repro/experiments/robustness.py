"""Experiment ``robustness`` — estimation-error study (extension).

Motivated directly by the reproduction's WRF findings: the paper's Table
VII MEDs carry visible run-to-run noise, and at budget 174.9 the
published schedule is infeasible under the published cost matrix — i.e.
the authors' own testbed runs deviated from their planning matrix.  This
experiment quantifies that operating reality:

* plan Critical-Greedy at budget ``B`` with a **safety margin** θ, i.e.
  actually plan at ``B / (1 + θ)``;
* execute on the simulator with per-module realized times drawn
  lognormally around the planned times (relative noise σ);
* report, per (θ, σ) cell over many runs: the realized-makespan inflation
  and the fraction of runs whose realized *bill* exceeded ``B``.

Expected shape: with θ = 0 even small noise busts the budget in a
sizeable fraction of runs (the ceil billing flips whole units); a modest
margin buys most of the protection at a small MED premium.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.experiments.report import ExperimentReport, register_experiment
from repro.sim.broker import WorkflowBroker
from repro.workloads.wrf import wrf_problem

__all__ = ["run_robustness"]


@register_experiment("robustness")
def run_robustness(
    *,
    budget: float = 186.2,
    margins: tuple[float, ...] = (0.0, 0.05, 0.15),
    noises: tuple[float, ...] = (0.02, 0.05, 0.10),
    runs: int = 30,
    seed: int = 99,
) -> ExperimentReport:
    """Margin-vs-noise sweep on the WRF instance (see module docstring)."""
    problem = wrf_problem()
    cg = CriticalGreedyScheduler()
    module_names = problem.matrices.module_names

    rows = []
    cells: dict[tuple[float, float], dict[str, float]] = {}
    for margin in margins:
        planning_budget = budget / (1.0 + margin)
        plan = cg.solve(problem, planning_budget)
        planned = plan.schedule.durations(problem.workflow, problem.matrices)
        for noise in noises:
            rng = np.random.default_rng(seed)
            makespans = []
            busted = 0
            for _ in range(runs):
                factors = np.exp(
                    rng.normal(0.0, noise, size=len(module_names))
                )
                actual = {
                    name: planned[name] * float(f)
                    for name, f in zip(module_names, factors)
                }
                sim = WorkflowBroker(
                    problem=problem,
                    schedule=plan.schedule,
                    actual_durations=actual,
                ).run()
                makespans.append(sim.makespan)
                busted += sim.total_cost > budget + 1e-9
            mean_med = float(np.mean(makespans))
            cells[(margin, noise)] = {
                "mean_med": mean_med,
                "busted_fraction": busted / runs,
                "planned_med": plan.med,
            }
            rows.append(
                (
                    f"{margin:.0%}",
                    f"{noise:.0%}",
                    plan.med,
                    mean_med,
                    f"{busted}/{runs}",
                )
            )

    return ExperimentReport(
        experiment_id="robustness",
        title="Budget robustness to execution-time estimation error "
        "(extension — motivated by the WRF testbed noise)",
        headers=(
            "safety margin",
            "time noise",
            "planned MED",
            "mean realized MED",
            "over-budget runs",
        ),
        rows=tuple(rows),
        notes=(
            f"WRF instance, operating budget {budget:g}; planning budget = "
            "budget / (1 + margin); realized times ~ lognormal around plan",
            "expected shape: zero margin busts the budget under noise "
            "(round-up billing flips whole units); a small margin buys "
            "most of the protection for a modest MED premium",
            "planned MEDs are not monotone in the margin: Critical-Greedy "
            "itself is non-monotone in the budget on this instance (its "
            "greedy ΔT rule overshoots at some budgets — the same effect "
            "behind the paper's 174.9 crossover; the lookahead portfolio "
            "smooths it)",
        ),
        data={"cells": cells},
    )
