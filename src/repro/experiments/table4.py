"""Experiment ``table4`` — average MED of CG vs GAIN3 over 20 problem sizes
(Table IV, plotted as Fig. 8).

One random instance per problem size; the budget sweeps 20 uniform levels
of :math:`[C_{min}, C_{max}]`; the table reports each algorithm's average
MED across the levels, the improvement percentage and the
:math:`MED_{CG}/MED_{GAIN}` ratio — exactly the columns of Table IV.

Expected shape (paper §VI-B2/B3): CG never loses on average, and the
improvement generally grows with the problem size, from ≈0% on the
smallest size toward 20–35% on the large ones.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.algorithms.gain import Gain3Scheduler
from repro.analysis.figures import ascii_line
from repro.analysis.sweep import sweep_budgets
from repro.experiments.report import ExperimentReport, register_experiment
from repro.workloads.generator import PAPER_PROBLEM_SIZES, generate_problem

__all__ = ["run_table4"]


@register_experiment("table4")
def run_table4(
    *,
    sizes: tuple[tuple[int, int, int], ...] = PAPER_PROBLEM_SIZES,
    levels: int = 20,
    seed: int = 4,
) -> ExperimentReport:
    """Reproduce Table IV's CG-vs-GAIN3 averages across problem sizes."""
    cg = CriticalGreedyScheduler()
    gain = Gain3Scheduler()
    rng = np.random.default_rng(seed)

    rows = []
    improvements = []
    for index, size in enumerate(sizes, start=1):
        problem = generate_problem(size, rng)
        sweep = sweep_budgets(problem, [cg, gain], levels=levels)
        cg_avg = sweep.average_med("critical-greedy")
        gain_avg = sweep.average_med("gain3")
        imp = (gain_avg - cg_avg) / gain_avg * 100.0
        ratio = cg_avg / gain_avg
        improvements.append(imp)
        rows.append(
            (
                index,
                f"({size[0]},{size[1]},{size[2]})",
                cg_avg,
                gain_avg,
                imp,
                ratio,
            )
        )

    fig8 = ascii_line(
        list(range(1, len(sizes) + 1)),
        {
            "CG avg MED": [row[2] for row in rows],
            "GAIN3 avg MED": [row[3] for row in rows],
        },
        title="Fig. 8 — average MED per problem size (20 budget levels each)",
        x_label="problem index",
        y_label="avg MED",
    )

    overall = float(np.mean(improvements))
    return ExperimentReport(
        experiment_id="table4",
        title="Average MED of CG and GAIN3 across 20 budget levels "
        "(paper Table IV / Fig. 8)",
        headers=("idx", "size (m,|Ew|,n)", "CG", "GAIN3", "Imp (%)", "CG/GAIN"),
        rows=tuple(rows),
        figures=(fig8,),
        notes=(
            f"overall mean improvement {overall:.1f}% "
            "(paper Table IV: 0–34% per size, growing with size)",
            "one random instance per size, 20 uniform budget levels in "
            "[Cmin, Cmax] (§VI-B2)",
        ),
        data={"improvements": improvements, "overall_improvement": overall},
    )
