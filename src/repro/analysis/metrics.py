"""Comparison metrics used throughout the evaluation (Section VI).

* :func:`improvement_percent` — the paper's headline metric,
  ``Imp = (MED_GAIN - MED_CG) / MED_GAIN × 100%``;
* :func:`med_ratio` — the Table IV column ``MED_CG / MED_GAIN``;
* :func:`optimality_gap` / :func:`reached_optimal` — the Fig. 7 /
  Table III statistics against the exhaustive optimum.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.exceptions import ExperimentError

__all__ = [
    "improvement_percent",
    "med_ratio",
    "optimality_gap",
    "reached_optimal",
    "mean",
]

#: Relative tolerance for declaring two MED values equal (Fig. 7's
#: "achieves the optimal result" test).
_REL_TOL = 1e-9


def improvement_percent(med_baseline: float, med_ours: float) -> float:
    """The paper's improvement metric of CG over a baseline, in percent.

    ``Imp = (MED_baseline - MED_ours) / MED_baseline * 100`` — positive
    when ``ours`` is faster.
    """
    if med_baseline <= 0:
        raise ExperimentError(
            f"baseline MED must be positive, got {med_baseline!r}"
        )
    return (med_baseline - med_ours) / med_baseline * 100.0


def med_ratio(med_ours: float, med_baseline: float) -> float:
    """The Table IV ratio ``MED_CG / MED_GAIN`` (< 1 when CG wins)."""
    if med_baseline <= 0:
        raise ExperimentError(
            f"baseline MED must be positive, got {med_baseline!r}"
        )
    return med_ours / med_baseline


def optimality_gap(med: float, med_optimal: float) -> float:
    """Relative gap to the optimum, ``(MED - OPT) / OPT`` (≥ 0)."""
    if med_optimal <= 0:
        raise ExperimentError(f"optimal MED must be positive, got {med_optimal!r}")
    return (med - med_optimal) / med_optimal


def reached_optimal(med: float, med_optimal: float) -> bool:
    """Whether a heuristic matched the exact optimum (Fig. 7 statistic)."""
    return math.isclose(med, med_optimal, rel_tol=_REL_TOL, abs_tol=1e-9) or (
        med < med_optimal
    )


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean with an informative error on empty input."""
    if not values:
        raise ExperimentError("cannot average an empty sequence")
    return sum(values) / len(values)
