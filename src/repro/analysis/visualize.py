"""Visualization helpers: Graphviz DOT export and ASCII Gantt charts.

No rendering dependency is required: :func:`workflow_to_dot` emits DOT
source (pipe it through ``dot -Tpng`` wherever Graphviz exists), and
:func:`gantt` draws a simulation trace as a monospace timeline — the
closest offline equivalent of the execution views cloud consoles give.
"""

from __future__ import annotations

from repro.core.schedule import Schedule
from repro.core.workflow import Workflow
from repro.exceptions import ExperimentError
from repro.sim.trace import SimulationTrace

__all__ = ["workflow_to_dot", "gantt"]


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def workflow_to_dot(
    workflow: Workflow,
    *,
    schedule: Schedule | None = None,
    type_names: tuple[str, ...] | None = None,
) -> str:
    """Emit the workflow as Graphviz DOT source.

    Nodes show the module name and workload (or fixed duration); edges
    show data sizes.  With a ``schedule`` (and its catalog's
    ``type_names``), each node is additionally labelled and colour-grouped
    by its assigned VM type.
    """
    if schedule is not None and type_names is None:
        raise ExperimentError(
            "type_names is required when rendering a schedule"
        )
    palette = (
        "#cfe8ff",
        "#ffe3cf",
        "#d6f5d6",
        "#f5d6ef",
        "#fff3b0",
        "#e0e0e0",
        "#c9f0f0",
        "#f0c9c9",
    )
    lines = [
        f"digraph {_quote(workflow.name)} {{",
        "  rankdir=LR;",
        "  node [shape=box, style=filled, fillcolor=white];",
    ]
    for module in workflow:
        if module.is_fixed:
            label = f"{module.name}\\nfixed {module.fixed_time:g}"
            attrs = f"label={_quote(label)}, shape=ellipse"
        else:
            label = f"{module.name}\\nWL={module.workload:g}"
            attrs = f"label={_quote(label)}"
            if schedule is not None and module.name in schedule:
                j = schedule[module.name]
                assert type_names is not None
                label += f"\\n{type_names[j]}"
                attrs = (
                    f"label={_quote(label)}, "
                    f"fillcolor={_quote(palette[j % len(palette)])}"
                )
        lines.append(f"  {_quote(module.name)} [{attrs}];")
    for edge in workflow.edges():
        attrs = f' [label="{edge.data_size:g}"]' if edge.data_size else ""
        lines.append(f"  {_quote(edge.src)} -> {_quote(edge.dst)}{attrs};")
    lines.append("}")
    return "\n".join(lines)


def gantt(trace: SimulationTrace, *, width: int = 64) -> str:
    """Render a simulation trace as an ASCII Gantt chart.

    One row per task, ordered by start time; ``#`` marks execution and
    ``x`` a crash point (when the trace carries failures).
    """
    if not trace.tasks:
        raise ExperimentError("cannot draw a Gantt chart of an empty trace")
    horizon = trace.makespan or 1.0
    scale = (width - 1) / horizon
    label_w = max(len(t.module) for t in trace.tasks)
    vm_w = max(len(t.vm_id) for t in trace.tasks)

    lines = [
        f"{'module':<{label_w}} {'vm':<{vm_w}} "
        f"|0{' ' * (width - len(f'{horizon:.6g}') - 2)}{horizon:.6g}|"
    ]
    for task in sorted(trace.tasks, key=lambda t: (t.start, t.module)):
        begin = int(round(task.start * scale))
        end = max(int(round(task.finish * scale)), begin + 1)
        bar = " " * begin + "#" * (end - begin)
        bar = bar.ljust(width)[:width]
        lines.append(f"{task.module:<{label_w}} {task.vm_id:<{vm_w}} |{bar}|")
    for failure in sorted(trace.failures, key=lambda f: f.crashed):
        col = int(round(failure.crashed * scale))
        bar = (" " * col + "x").ljust(width)[:width]
        lines.append(
            f"{failure.module + '!':<{label_w}} {failure.vm_id:<{vm_w}} |{bar}|"
        )
    return "\n".join(lines)
