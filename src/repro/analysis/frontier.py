"""Cost–delay Pareto frontiers for MED-CC instances.

The budget sweep of the evaluation section traces, point by point, the
instance's cost/delay trade-off curve (Fig. 6 is exactly the
Critical-Greedy frontier of the numerical example).  This module makes
the frontier a first-class object:

* :func:`heuristic_frontier` — the non-dominated (cost, MED) points a
  scheduler reaches across a budget sweep;
* :func:`exact_frontier` — the true Pareto frontier, by exhaustive
  enumeration with dominance pruning (small instances only);
* :func:`frontier_regret` — how far a heuristic frontier sits above the
  exact one (mean relative MED gap at matched budgets), a scalar quality
  measure the per-budget tables hide.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

from repro.algorithms.base import Scheduler
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.exceptions import ExperimentError

__all__ = [
    "FrontierPoint",
    "Frontier",
    "heuristic_frontier",
    "exact_frontier",
    "frontier_regret",
]

_EPS = 1e-9


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated (cost, MED) operating point with its schedule."""

    cost: float
    med: float
    schedule: Schedule


@dataclass(frozen=True)
class Frontier:
    """A Pareto frontier: points sorted by increasing cost, decreasing MED."""

    points: tuple[FrontierPoint, ...]

    def __post_init__(self) -> None:
        for a, b in zip(self.points, self.points[1:]):
            if not (a.cost < b.cost + _EPS and a.med > b.med - _EPS):
                raise ExperimentError(
                    "frontier points must strictly trade cost for delay"
                )

    def __len__(self) -> int:
        return len(self.points)

    def med_at_budget(self, budget: float) -> float:
        """Best MED achievable on this frontier within ``budget``.

        Raises
        ------
        ExperimentError
            If the budget is below the cheapest frontier point.
        """
        best = None
        for point in self.points:
            if point.cost <= budget + _EPS:
                best = point.med
        if best is None:
            raise ExperimentError(
                f"budget {budget:g} below the cheapest frontier point "
                f"({self.points[0].cost:g})"
            )
        return best

    @property
    def cost_range(self) -> tuple[float, float]:
        """Cheapest and most expensive frontier costs."""
        return (self.points[0].cost, self.points[-1].cost)


def _prune(points: list[FrontierPoint]) -> Frontier:
    """Keep the non-dominated subset, sorted by cost."""
    if not points:
        raise ExperimentError("no frontier points to prune")
    points = sorted(points, key=lambda p: (p.cost, p.med))
    kept: list[FrontierPoint] = []
    best_med = float("inf")
    for point in points:
        if point.med < best_med - _EPS:
            kept.append(point)
            best_med = point.med
    return Frontier(points=tuple(kept))


def heuristic_frontier(
    problem: MedCCProblem,
    scheduler: Scheduler,
    *,
    levels: int = 20,
    budgets: Sequence[float] | None = None,
) -> Frontier:
    """Frontier traced by a scheduler across a budget sweep."""
    budget_values = (
        list(budgets) if budgets is not None else problem.budget_levels(levels)
    )
    points = []
    for budget in budget_values:
        result = scheduler.solve(problem, budget)
        points.append(
            FrontierPoint(
                cost=result.total_cost,
                med=result.med,
                schedule=result.schedule,
            )
        )
    return _prune(points)


def exact_frontier(
    problem: MedCCProblem, *, max_assignments: int = 2_000_000
) -> Frontier:
    """The true Pareto frontier by full enumeration (small instances).

    Raises
    ------
    ExperimentError
        If the assignment space exceeds ``max_assignments``.
    """
    matrices = problem.matrices
    names = matrices.module_names
    n = matrices.num_types
    total = n ** len(names)
    if total > max_assignments:
        raise ExperimentError(
            f"{total} assignments exceed max_assignments={max_assignments}; "
            "exact frontiers are for small instances"
        )
    points = []
    for combo in itertools.product(range(n), repeat=len(names)):
        schedule = Schedule(dict(zip(names, combo)))
        points.append(
            FrontierPoint(
                cost=problem.cost_of(schedule),
                med=problem.makespan_of(schedule),
                schedule=schedule,
            )
        )
    return _prune(points)


def frontier_regret(heuristic: Frontier, exact: Frontier) -> float:
    """Mean relative MED excess of a heuristic frontier over the exact one.

    Evaluated at every exact-frontier cost the heuristic can afford:
    ``mean((MED_h(budget=c) - MED_*(c)) / MED_*(c))`` — zero iff the
    heuristic matches the optimum at every operating point it can reach.

    Both frontiers are read through :meth:`Frontier.med_at_budget` so the
    affordability tolerance is applied symmetrically: when two exact
    points sit within ``_EPS`` of the same cost (float noise in the cost
    computation can produce frontier costs one ulp apart), the heuristic
    is judged against the best exact MED at that budget, not against the
    nominally cheaper point alone — otherwise a heuristic hitting the
    costlier twin would register an impossible negative regret.
    """
    gaps = []
    for point in exact.points:
        try:
            med_h = heuristic.med_at_budget(point.cost)
        except ExperimentError:
            continue
        med_star = exact.med_at_budget(point.cost)
        gaps.append((med_h - med_star) / med_star)
    if not gaps:
        raise ExperimentError(
            "heuristic frontier cannot afford any exact frontier point"
        )
    return float(sum(gaps) / len(gaps))
