"""Statistical utilities for experiment reporting.

The paper reports bare averages; a reproduction should also say how firm
those averages are.  This module provides the two tools the experiment
reports use:

* :func:`bootstrap_mean_ci` — a percentile-bootstrap confidence interval
  for a mean (deterministic under its seed);
* :func:`paired_comparison` — summary of paired per-instance results of
  two algorithms: mean difference with CI, win/tie/loss counts, and a
  sign-test p-value (exact binomial, no scipy needed).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ExperimentError

__all__ = ["BootstrapCI", "bootstrap_mean_ci", "PairedComparison", "paired_comparison"]


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with a bootstrap confidence interval."""

    mean: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low - 1e-12 <= value <= self.high + 1e-12

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``9.5 [7.7, 11.2] @95%``."""
        return (
            f"{self.mean:.2f} [{self.low:.2f}, {self.high:.2f}] "
            f"@{self.confidence * 100:.0f}%"
        )


def bootstrap_mean_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 5000,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile-bootstrap CI for the mean of ``values``.

    Raises
    ------
    ExperimentError
        On empty input or an invalid confidence level.
    """
    if not values:
        raise ExperimentError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ExperimentError(f"confidence must be in (0, 1), got {confidence}")
    data = np.asarray(values, dtype=float)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, len(data), size=(resamples, len(data)))
    means = data[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return BootstrapCI(
        mean=float(data.mean()),
        low=float(low),
        high=float(high),
        confidence=confidence,
    )


def _binomial_sign_test_p(wins: int, losses: int) -> float:
    """Two-sided exact sign test p-value for wins vs losses (ties dropped)."""
    n = wins + losses
    if n == 0:
        return 1.0
    k = min(wins, losses)
    # P(X <= k) + P(X >= n - k) under Binomial(n, 1/2).
    tail = sum(math.comb(n, i) for i in range(0, k + 1)) / 2**n
    return min(1.0, 2.0 * tail)


@dataclass(frozen=True)
class PairedComparison:
    """Summary of paired per-instance results of two algorithms."""

    mean_difference: BootstrapCI
    wins: int
    ties: int
    losses: int
    p_value: float

    @property
    def n(self) -> int:
        """Number of paired observations."""
        return self.wins + self.ties + self.losses

    def describe(self, ours: str = "ours", baseline: str = "baseline") -> str:
        """One-line verdict for reports."""
        return (
            f"{ours} vs {baseline}: mean diff {self.mean_difference.describe()}, "
            f"W/T/L {self.wins}/{self.ties}/{self.losses}, "
            f"sign-test p={self.p_value:.2g}"
        )


def paired_comparison(
    ours: Sequence[float],
    baseline: Sequence[float],
    *,
    confidence: float = 0.95,
    tie_tol: float = 1e-9,
    seed: int = 0,
) -> PairedComparison:
    """Paired comparison where *smaller is better* (MED values).

    ``mean_difference`` is ``mean(baseline - ours)`` — positive when ours
    wins on average.
    """
    if len(ours) != len(baseline):
        raise ExperimentError(
            f"paired samples must align: {len(ours)} vs {len(baseline)}"
        )
    diffs = [b - o for o, b in zip(ours, baseline)]
    wins = sum(d > tie_tol for d in diffs)
    losses = sum(d < -tie_tol for d in diffs)
    ties = len(diffs) - wins - losses
    return PairedComparison(
        mean_difference=bootstrap_mean_ci(
            diffs, confidence=confidence, seed=seed
        ),
        wins=wins,
        ties=ties,
        losses=losses,
        p_value=_binomial_sign_test_p(wins, losses),
    )
