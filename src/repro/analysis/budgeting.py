"""Operator-facing budgeting helpers built on the scheduler stack.

The paper closes by noting its solution "can also serve as a cloud
resource provisioning reference for scientific users to make proactive
and informative resource requests."  These helpers answer the two
questions such a user actually asks:

* :func:`budget_for_deadline` — the smallest budget at which the
  scheduler meets a deadline (inverse of the MED-vs-budget staircase);
* :func:`deadline_for_budget` — the best MED a budget buys (the forward
  direction, with the non-monotonicity of greedy schedulers smoothed by
  taking the running best over the sweep).

Both work against *any* registered scheduler; the default is the
lookahead portfolio, whose budget response is better behaved than plain
Critical-Greedy's (which is provably non-monotone on some instances —
see the ``robustness`` experiment notes).
"""

from __future__ import annotations

from repro.algorithms.base import Scheduler
from repro.algorithms.lookahead import LookaheadCriticalGreedyScheduler
from repro.core.problem import MedCCProblem
from repro.exceptions import ExperimentError, InfeasibleBudgetError

__all__ = ["budget_for_deadline", "deadline_for_budget"]

_EPS = 1e-9


def deadline_for_budget(
    problem: MedCCProblem,
    budget: float,
    *,
    scheduler: Scheduler | None = None,
    levels: int = 32,
) -> float:
    """Best MED achievable within ``budget`` (running-best over a sweep).

    Greedy schedulers are not guaranteed monotone in the budget, so the
    answer is the best MED over all sweep budgets up to ``budget`` — any
    of those schedules is affordable at ``budget``.
    """
    solver = scheduler or LookaheadCriticalGreedyScheduler()
    problem.check_feasible(budget)
    lo, hi = problem.budget_range()
    sweep = [b for b in problem.budget_levels(levels) if b <= budget + _EPS]
    sweep.append(min(budget, hi))
    sweep.insert(0, lo)
    best = float("inf")
    for b in sweep:
        best = min(best, solver.solve(problem, b).med)
    return best


def budget_for_deadline(
    problem: MedCCProblem,
    deadline: float,
    *,
    scheduler: Scheduler | None = None,
    tolerance: float = 1e-3,
    levels: int = 16,
) -> float:
    """Smallest budget (within ``tolerance``) whose schedule meets ``deadline``.

    Uses bisection over the *running-best* MED response (monotone by
    construction).  Raises if even the fastest schedule misses the
    deadline, and returns :math:`C_{min}` when the least-cost schedule
    already meets it.

    Raises
    ------
    InfeasibleBudgetError
        If no budget in ``[Cmin, Cmax]`` meets the deadline.
    ExperimentError
        On a non-positive tolerance.
    """
    if tolerance <= 0:
        raise ExperimentError(f"tolerance must be positive, got {tolerance}")
    solver = scheduler or LookaheadCriticalGreedyScheduler()
    lo, hi = problem.budget_range()

    def best_med_at(budget: float) -> float:
        return deadline_for_budget(
            problem, budget, scheduler=solver, levels=levels
        )

    if solver.solve(problem, lo).med <= deadline + _EPS:
        return lo
    if best_med_at(hi) > deadline + _EPS:
        raise InfeasibleBudgetError(deadline, best_med_at(hi))

    low, high = lo, hi
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if best_med_at(mid) <= deadline + _EPS:
            high = mid
        else:
            low = mid
    return high
