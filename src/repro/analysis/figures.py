"""ASCII figure rendering — line/bar charts and heatmaps in plain text.

The paper's figures are reproduced as printed data series plus an ASCII
rendering (no plotting dependency is available offline).  Three shapes
cover every figure in the evaluation:

* :func:`ascii_line` — Fig. 6/8/9/10/15 style series over an x-axis;
* :func:`ascii_bars` — Fig. 7/15 style grouped bars;
* :func:`ascii_heatmap` — Fig. 11's improvement surface.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.exceptions import ExperimentError

__all__ = ["ascii_line", "ascii_bars", "ascii_heatmap"]

_MARKS = "*o+x#@%&"
_SHADES = " .:-=+*#%@"


def ascii_line(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot one or more y-series over a shared x-axis as ASCII art."""
    if not x or not series:
        raise ExperimentError("need data to plot")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ExperimentError(f"series {name!r} length mismatch with x")
    all_y = [v for ys in series.values() for v in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    x_lo, x_hi = min(x), max(x)
    y_span = (y_hi - y_lo) or 1.0
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (name, ys) in enumerate(series.items()):
        mark = _MARKS[s_idx % len(_MARKS)]
        for xv, yv in zip(x, ys):
            col = int(round((xv - x_lo) / x_span * (width - 1)))
            row = int(round((yv - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"[{legend}]")
    lines.append(f"{y_hi:>10.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_lo:>10.3g} +" + "-" * width)
    lines.append(
        " " * 12 + f"{x_lo:<.3g}".ljust(width // 2) + f"{x_hi:>.3g} ({x_label})"
    )
    lines.append(f"(y: {y_label})")
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 48,
    title: str = "",
) -> str:
    """Grouped horizontal bars: one row group per label, one bar per series."""
    if not labels or not series:
        raise ExperimentError("need data to plot")
    for name, vals in series.items():
        if len(vals) != len(labels):
            raise ExperimentError(f"series {name!r} length mismatch with labels")
    peak = max(v for vals in series.values() for v in vals)
    peak = peak or 1.0
    label_w = max(len(str(label)) for label in labels)
    name_w = max(len(name) for name in series)

    lines = []
    if title:
        lines.append(title)
    for idx, label in enumerate(labels):
        for name, vals in series.items():
            bar_len = int(round(vals[idx] / peak * width))
            lines.append(
                f"{str(label):>{label_w}} {name:<{name_w}} "
                f"{'#' * bar_len}{' ' if bar_len else ''}{vals[idx]:.2f}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def ascii_heatmap(
    values: Sequence[Sequence[float]],
    *,
    row_labels: Sequence[str] | None = None,
    col_labels: Sequence[str] | None = None,
    title: str = "",
) -> str:
    """Render a matrix as a shaded heatmap (Fig. 11's surface)."""
    if not values or not values[0]:
        raise ExperimentError("need data to plot")
    flat = [v for row in values for v in row]
    lo, hi = min(flat), max(flat)
    span = (hi - lo) or 1.0
    rows = len(values)
    row_labels = list(row_labels) if row_labels else [str(i) for i in range(rows)]
    label_w = max(len(l) for l in row_labels)

    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"(shade scale: '{_SHADES[0]}' = {lo:.2f} .. '{_SHADES[-1]}' = {hi:.2f})"
    )
    for label, row in zip(row_labels, values):
        cells = "".join(
            _SHADES[min(int((v - lo) / span * (len(_SHADES) - 1)), len(_SHADES) - 1)]
            * 2
            for v in row
        )
        lines.append(f"{label:>{label_w}} |{cells}|")
    if col_labels:
        lines.append(" " * (label_w + 2) + "".join(f"{c:<2}"[:2] for c in col_labels))
    return "\n".join(lines)
