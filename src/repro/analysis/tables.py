"""Plain-text table rendering for experiment reports.

No external dependency: fixed-width columns, right-aligned numbers, an
optional title rule.  Every experiment's ``render()`` uses this so the
benchmark harness output visually matches the paper's tables.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import ExperimentError

__all__ = ["format_table", "format_number"]


def format_number(value: object, *, precision: int = 2) -> str:
    """Render a cell: floats to fixed precision, everything else ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render rows as an aligned monospace table.

    Numbers are right-aligned, text left-aligned; the column layout is
    derived from the widest cell.
    """
    if not headers:
        raise ExperimentError("a table needs at least one column")
    rendered: list[list[str]] = [
        [format_number(cell, precision=precision) for cell in row] for row in rows
    ]
    for row in rendered:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rendered)) if rendered else len(headers[c])
        for c in range(len(headers))
    ]

    def align(cell: str, width: int, numeric: bool) -> str:
        return cell.rjust(width) if numeric else cell.ljust(width)

    numeric_cols = [
        bool(rows)
        and all(isinstance(row[c], (int, float)) for row in rows)
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(
                align(cell, w, num)
                for cell, w, num in zip(row, widths, numeric_cols)
            )
        )
    return "\n".join(lines)
