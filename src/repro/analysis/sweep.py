"""Budget-sweep and algorithm-comparison harness.

The evaluation section runs the same loop over and over: take a problem
instance, derive its budget range :math:`[C_{min}, C_{max}]`, sweep a set
of budget levels, run two or more schedulers at each level, and aggregate
MEDs/improvements.  This module implements that loop once, with
deterministic seeding, so every experiment module is a thin configuration
layer on top.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import Scheduler
from repro.analysis.metrics import improvement_percent, mean, med_ratio
from repro.core.problem import MedCCProblem
from repro.exceptions import ExperimentError

__all__ = [
    "BudgetSweepPoint",
    "BudgetSweepResult",
    "InstanceComparison",
    "sweep_budgets",
    "compare_on_instances",
]


@dataclass(frozen=True)
class BudgetSweepPoint:
    """MEDs of each scheduler at one budget level of one instance."""

    budget_level: int
    budget: float
    med: dict[str, float]
    cost: dict[str, float]


@dataclass(frozen=True)
class BudgetSweepResult:
    """All sweep points of one problem instance."""

    problem_size: tuple[int, int, int]
    cmin: float
    cmax: float
    points: tuple[BudgetSweepPoint, ...]

    def average_med(self, algorithm: str) -> float:
        """Mean MED of one scheduler across the sweep (Table IV columns)."""
        return mean([p.med[algorithm] for p in self.points])

    def average_improvement(self, ours: str, baseline: str) -> float:
        """Mean per-budget improvement of ``ours`` over ``baseline`` (%)."""
        return mean(
            [
                improvement_percent(p.med[baseline], p.med[ours])
                for p in self.points
            ]
        )

    def med_ratio(self, ours: str, baseline: str) -> float:
        """Ratio of average MEDs, as reported in Table IV."""
        return med_ratio(self.average_med(ours), self.average_med(baseline))


def sweep_budgets(
    problem: MedCCProblem,
    schedulers: Sequence[Scheduler],
    *,
    levels: int = 20,
    budgets: Sequence[float] | None = None,
) -> BudgetSweepResult:
    """Run every scheduler at every budget level of one instance.

    Parameters
    ----------
    levels:
        Number of uniform budget levels over ``[Cmin, Cmax]`` (§VI-B2);
        ignored when explicit ``budgets`` are given.
    budgets:
        Explicit budget values (e.g. the WRF budgets of Table VII).
    """
    if not schedulers:
        raise ExperimentError("need at least one scheduler to sweep")
    budget_values = (
        list(budgets) if budgets is not None else problem.budget_levels(levels)
    )
    points = []
    for level, budget in enumerate(budget_values, start=1):
        med: dict[str, float] = {}
        cost: dict[str, float] = {}
        for scheduler in schedulers:
            result = scheduler.solve(problem, budget)
            result.assert_feasible()
            med[scheduler.name] = result.med
            cost[scheduler.name] = result.total_cost
        points.append(
            BudgetSweepPoint(
                budget_level=level, budget=float(budget), med=med, cost=cost
            )
        )
    return BudgetSweepResult(
        problem_size=problem.problem_size,
        cmin=problem.cmin,
        cmax=problem.cmax,
        points=tuple(points),
    )


@dataclass(frozen=True)
class InstanceComparison:
    """Aggregates of several instances of the same problem size."""

    problem_size: tuple[int, int, int]
    sweeps: tuple[BudgetSweepResult, ...]

    def average_med(self, algorithm: str) -> float:
        """Grand mean MED across instances and budget levels."""
        return mean([s.average_med(algorithm) for s in self.sweeps])

    def average_improvement(self, ours: str, baseline: str) -> float:
        """Grand mean improvement across instances and budget levels."""
        return mean([s.average_improvement(ours, baseline) for s in self.sweeps])

    def improvement_by_level(self, ours: str, baseline: str) -> list[float]:
        """Mean improvement at each budget level, across instances.

        All sweeps must share the same level count (they do when produced
        by :func:`compare_on_instances`).
        """
        levels = len(self.sweeps[0].points)
        out = []
        for idx in range(levels):
            out.append(
                mean(
                    [
                        improvement_percent(
                            s.points[idx].med[baseline], s.points[idx].med[ours]
                        )
                        for s in self.sweeps
                    ]
                )
            )
        return out


def compare_on_instances(
    make_problem,
    schedulers: Sequence[Scheduler],
    *,
    instances: int,
    levels: int = 20,
    seed: int = 0,
) -> InstanceComparison:
    """Sweep ``instances`` random instances produced by ``make_problem(rng)``.

    ``make_problem`` receives a child :class:`numpy.random.Generator` per
    instance (spawned deterministically from ``seed``), so experiments are
    reproducible and instances independent.
    """
    if instances < 1:
        raise ExperimentError("need at least one instance")
    root = np.random.default_rng(seed)
    children = root.spawn(instances)
    sweeps = []
    size = None
    for rng in children:
        problem = make_problem(rng)
        size = problem.problem_size
        sweeps.append(sweep_budgets(problem, schedulers, levels=levels))
    assert size is not None
    return InstanceComparison(problem_size=size, sweeps=tuple(sweeps))
