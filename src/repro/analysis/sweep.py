"""Budget-sweep and algorithm-comparison harness.

The evaluation section runs the same loop over and over: take a problem
instance, derive its budget range :math:`[C_{min}, C_{max}]`, sweep a set
of budget levels, run two or more schedulers at each level, and aggregate
MEDs/improvements.  This module implements that loop once, with
deterministic seeding, so every experiment module is a thin configuration
layer on top.

Both entry points accept ``n_jobs`` for opt-in process parallelism.  The
work is partitioned deterministically — contiguous budget-level chunks in
:func:`sweep_budgets`, one task per instance in
:func:`compare_on_instances` (instances themselves are built serially so
``rng.spawn`` seeding is unchanged) — and every unit is an independent
pure computation, so results are equal to the serial path for any
``n_jobs``.

``n_jobs="auto"`` sizes the pool from the CPUs *actually available to
this process* (:func:`effective_cpu_count` — the scheduling affinity,
not the machine-wide ``os.cpu_count()``) and falls back to serial when
the grid is too small to amortize process start-up.  A fixed ``n_jobs=4``
on a 1-CPU container is a slowdown (``BENCH_fastpath.json`` once
recorded 0.445× serial for exactly that reason); ``"auto"`` detects the
single effective CPU and stays serial.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import Scheduler
from repro.analysis.metrics import improvement_percent, mean, med_ratio
from repro.core.problem import MedCCProblem
from repro.exceptions import ExperimentError

__all__ = [
    "BudgetSweepPoint",
    "BudgetSweepResult",
    "InstanceComparison",
    "effective_cpu_count",
    "resolve_n_jobs",
    "sweep_budgets",
    "compare_on_instances",
]

#: Below this many independent work units, ``n_jobs="auto"`` stays serial:
#: forking + re-importing the interpreter costs far more than a handful of
#: solves.
_AUTO_MIN_UNITS = 8

#: ``"auto"`` gives every worker at least this many units, so pool width
#: never exceeds the point where chunking degenerates to one unit each.
_AUTO_MIN_UNITS_PER_WORKER = 2


def effective_cpu_count() -> int:
    """CPUs actually available to this process.

    Containers and batch schedulers routinely pin processes to a subset
    of the machine's cores; ``os.cpu_count()`` reports the machine while
    ``os.sched_getaffinity(0)`` reports the pinned set.  Uses the
    affinity where the platform provides it, falling back to
    ``os.cpu_count()`` (macOS, Windows).
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def resolve_n_jobs(n_jobs: int | str, units: int) -> int:
    """Resolve an ``n_jobs`` parameter to a concrete pool width.

    Explicit positive integers pass through unchanged (the caller asked
    for that width, slowdown or not).  ``"auto"`` picks
    ``min(effective CPUs, units // 2)`` and degrades to serial when
    fewer than ``_AUTO_MIN_UNITS`` units exist or only one CPU is
    effectively available.  Anything else raises
    :class:`~repro.exceptions.ExperimentError`.
    """
    if n_jobs == "auto":
        cpus = effective_cpu_count()
        if cpus <= 1 or units < _AUTO_MIN_UNITS:
            return 1
        return max(1, min(cpus, units // _AUTO_MIN_UNITS_PER_WORKER))
    if isinstance(n_jobs, bool) or not isinstance(n_jobs, int):
        raise ExperimentError(
            f"n_jobs must be a positive int or 'auto', got {n_jobs!r}"
        )
    if n_jobs < 1:
        raise ExperimentError(f"n_jobs must be >= 1, got {n_jobs}")
    return n_jobs


@dataclass(frozen=True)
class BudgetSweepPoint:
    """MEDs of each scheduler at one budget level of one instance."""

    budget_level: int
    budget: float
    med: dict[str, float]
    cost: dict[str, float]


@dataclass(frozen=True)
class BudgetSweepResult:
    """All sweep points of one problem instance."""

    problem_size: tuple[int, int, int]
    cmin: float
    cmax: float
    points: tuple[BudgetSweepPoint, ...]

    def average_med(self, algorithm: str) -> float:
        """Mean MED of one scheduler across the sweep (Table IV columns)."""
        return mean([p.med[algorithm] for p in self.points])

    def average_improvement(self, ours: str, baseline: str) -> float:
        """Mean per-budget improvement of ``ours`` over ``baseline`` (%)."""
        return mean(
            [
                improvement_percent(p.med[baseline], p.med[ours])
                for p in self.points
            ]
        )

    def med_ratio(self, ours: str, baseline: str) -> float:
        """Ratio of average MEDs, as reported in Table IV."""
        return med_ratio(self.average_med(ours), self.average_med(baseline))


def _solve_point(
    problem: MedCCProblem,
    schedulers: Sequence[Scheduler],
    level: int,
    budget: float,
) -> BudgetSweepPoint:
    """One (budget level × all schedulers) cell — the unit of parallel work."""
    med: dict[str, float] = {}
    cost: dict[str, float] = {}
    for scheduler in schedulers:
        result = scheduler.solve(problem, budget)
        result.assert_feasible()
        med[scheduler.name] = result.med
        cost[scheduler.name] = result.total_cost
    return BudgetSweepPoint(
        budget_level=level, budget=float(budget), med=med, cost=cost
    )


def _sweep_points_serial(
    problem: MedCCProblem,
    schedulers: Sequence[Scheduler],
    numbered: list[tuple[int, float]],
) -> list[BudgetSweepPoint]:
    """All sweep cells in-process, batching the budget axis per scheduler.

    A scheduler exposing ``solve_batch`` (the incremental Critical-Greedy
    engine over :class:`~repro.core.fastpath.BatchedSweep`) solves every
    budget level in one structure-of-arrays run; its per-level results
    are byte-identical to serial ``solve`` calls, so the sweep points —
    and therefore every experiment built on them — are unchanged.
    Schedulers without a batch path keep the per-level loop.
    """
    med: list[dict[str, float]] = [{} for _ in numbered]
    cost: list[dict[str, float]] = [{} for _ in numbered]
    for scheduler in schedulers:
        solve_batch = getattr(scheduler, "solve_batch", None)
        if solve_batch is not None and len(numbered) > 1:
            results = solve_batch(problem, [budget for _, budget in numbered])
        else:
            results = [scheduler.solve(problem, budget) for _, budget in numbered]
        for idx, result in enumerate(results):
            result.assert_feasible()
            med[idx][scheduler.name] = result.med
            cost[idx][scheduler.name] = result.total_cost
    return [
        BudgetSweepPoint(
            budget_level=level, budget=float(budget), med=med[idx], cost=cost[idx]
        )
        for idx, (level, budget) in enumerate(numbered)
    ]


def _sweep_chunk_worker(
    args: tuple[MedCCProblem, tuple[Scheduler, ...], list[tuple[int, float]]],
) -> list[BudgetSweepPoint]:
    """Top-level (picklable) worker: solve a contiguous chunk of levels."""
    problem, schedulers, chunk = args
    return [_solve_point(problem, schedulers, level, budget) for level, budget in chunk]


def _chunks(items: list, n: int) -> list[list]:
    """Split ``items`` into at most ``n`` contiguous, near-even chunks."""
    n = min(n, len(items))
    bounds = np.linspace(0, len(items), n + 1).astype(int)
    return [items[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]


def sweep_budgets(
    problem: MedCCProblem,
    schedulers: Sequence[Scheduler],
    *,
    levels: int = 20,
    budgets: Sequence[float] | None = None,
    n_jobs: int | str = 1,
) -> BudgetSweepResult:
    """Run every scheduler at every budget level of one instance.

    Parameters
    ----------
    levels:
        Number of uniform budget levels over ``[Cmin, Cmax]`` (§VI-B2);
        ignored when explicit ``budgets`` are given.
    budgets:
        Explicit budget values (e.g. the WRF budgets of Table VII).
    n_jobs:
        Process-pool width.  ``1`` (default) runs serially in-process,
        where schedulers exposing ``solve_batch`` vectorize the whole
        budget axis into one structure-of-arrays run (usually faster
        than any pool width — see ``docs/performance.md``); ``> 1``
        partitions the budget levels into contiguous chunks across
        worker processes; ``"auto"`` sizes the pool from the effective
        CPU affinity and stays serial for small grids
        (:func:`resolve_n_jobs`).  Every (level, scheduler) cell is an
        independent deterministic solve and the batched path is
        byte-identical to per-level solves, so the result is equal for
        any value.
    """
    if not schedulers:
        raise ExperimentError("need at least one scheduler to sweep")
    budget_values = (
        list(budgets) if budgets is not None else problem.budget_levels(levels)
    )
    numbered = list(enumerate(budget_values, start=1))
    workers = resolve_n_jobs(n_jobs, len(numbered))
    if workers == 1 or len(numbered) <= 1:
        points = _sweep_points_serial(problem, schedulers, numbered)
    else:
        tasks = [
            (problem, tuple(schedulers), chunk) for chunk in _chunks(numbered, workers)
        ]
        with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
            points = [
                point
                for chunk_points in pool.map(_sweep_chunk_worker, tasks)
                for point in chunk_points
            ]
    return BudgetSweepResult(
        problem_size=problem.problem_size,
        cmin=problem.cmin,
        cmax=problem.cmax,
        points=tuple(points),
    )


@dataclass(frozen=True)
class InstanceComparison:
    """Aggregates of several instances of the same problem size."""

    problem_size: tuple[int, int, int]
    sweeps: tuple[BudgetSweepResult, ...]

    def average_med(self, algorithm: str) -> float:
        """Grand mean MED across instances and budget levels."""
        return mean([s.average_med(algorithm) for s in self.sweeps])

    def average_improvement(self, ours: str, baseline: str) -> float:
        """Grand mean improvement across instances and budget levels."""
        return mean([s.average_improvement(ours, baseline) for s in self.sweeps])

    def improvement_by_level(self, ours: str, baseline: str) -> list[float]:
        """Mean improvement at each budget level, across instances.

        All sweeps must share the same level count (they do when produced
        by :func:`compare_on_instances`).
        """
        levels = len(self.sweeps[0].points)
        out = []
        for idx in range(levels):
            out.append(
                mean(
                    [
                        improvement_percent(
                            s.points[idx].med[baseline], s.points[idx].med[ours]
                        )
                        for s in self.sweeps
                    ]
                )
            )
        return out


def _sweep_instance_worker(
    args: tuple[MedCCProblem, tuple[Scheduler, ...], int],
) -> BudgetSweepResult:
    """Top-level (picklable) worker: full budget sweep of one instance."""
    problem, schedulers, levels = args
    return sweep_budgets(problem, schedulers, levels=levels)


def compare_on_instances(
    make_problem,
    schedulers: Sequence[Scheduler],
    *,
    instances: int,
    levels: int = 20,
    seed: int = 0,
    n_jobs: int | str = 1,
) -> InstanceComparison:
    """Sweep ``instances`` random instances produced by ``make_problem(rng)``.

    ``make_problem`` receives a child :class:`numpy.random.Generator` per
    instance (spawned deterministically from ``seed``), so experiments are
    reproducible and instances independent.

    With ``n_jobs > 1`` (or ``"auto"``, resolved per
    :func:`resolve_n_jobs`) the per-instance sweeps are distributed over
    a process pool, one task per instance, with the ``map`` chunksize
    sized to roughly four dispatch rounds per worker — large enough to
    amortize pickling, small enough to balance uneven instances.  The
    problems themselves are always built serially in the parent process,
    so the ``rng.spawn`` seeding — and therefore every instance — is
    identical for any ``n_jobs``; sweeps are returned in instance order.
    """
    if instances < 1:
        raise ExperimentError("need at least one instance")
    workers = resolve_n_jobs(n_jobs, instances)
    root = np.random.default_rng(seed)
    children = root.spawn(instances)
    problems = [make_problem(rng) for rng in children]
    size = problems[-1].problem_size
    if workers == 1 or len(problems) == 1:
        sweeps = [
            sweep_budgets(problem, schedulers, levels=levels) for problem in problems
        ]
    else:
        tasks = [(problem, tuple(schedulers), levels) for problem in problems]
        workers = min(workers, len(tasks))
        chunksize = max(1, len(tasks) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            sweeps = list(
                pool.map(_sweep_instance_worker, tasks, chunksize=chunksize)
            )
    return InstanceComparison(problem_size=size, sweeps=tuple(sweeps))
