"""Live-trajectory regret vs a clairvoyant offline schedule.

A live run reacts to drift as it happens; a *clairvoyant* scheduler
knows every realized duration in advance and solves the whole problem
offline under the final (post-top-up) budget.  The gap between the two
— realized minus clairvoyant makespan — is the price of scheduling
without foresight, the standard online-algorithms yardstick.

The clairvoyant instance is the original problem with its per-module
execution-time rows rescaled by the realized drift factor
``actual / planned`` of the type each module actually ran on (Eq. 6
keeps time inversely proportional to VM power, so one observed run
fixes the whole row).  That slots straight into the existing
``measured_te`` hook of :func:`repro.core.matrices.compute_matrices`.

Crash re-runs and their sunk bills stay in the *realized* side only:
the clairvoyant baseline is fault-free by definition, so fault overhead
shows up as regret — which is the point.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from dataclasses import dataclass

from repro.algorithms.base import SchedulerResult
from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.exceptions import InfeasibleBudgetError

__all__ = ["RegretReport", "clairvoyant_problem", "clairvoyant_regret"]


@dataclass(frozen=True)
class RegretReport:
    """Realized-vs-clairvoyant comparison for one live trajectory."""

    realized_makespan: float
    realized_cost: float
    clairvoyant_makespan: float
    clairvoyant_cost: float
    #: Whether the final budget admits any feasible clairvoyant schedule.
    #: When drift is so adverse that even the least-cost schedule busts
    #: the budget, the baseline is that least-cost schedule and regret
    #: is reported against it.
    clairvoyant_feasible: bool = True

    @property
    def makespan_regret(self) -> float:
        """Realized minus clairvoyant makespan (>= 0 up to heuristic noise)."""
        return self.realized_makespan - self.clairvoyant_makespan

    @property
    def makespan_regret_percent(self) -> float:
        if self.clairvoyant_makespan == 0:
            return 0.0
        return 100.0 * self.makespan_regret / self.clairvoyant_makespan

    @property
    def cost_regret(self) -> float:
        """Realized minus clairvoyant spend."""
        return self.realized_cost - self.clairvoyant_cost


def _drift_factors(
    problem: MedCCProblem,
    schedule: Schedule,
    actual_durations: Mapping[str, float],
) -> dict[str, float]:
    """Per-module ``actual / planned`` factors on the executed types."""
    matrices = problem.matrices
    factors: dict[str, float] = {}
    for module, actual in actual_durations.items():
        if module not in matrices.row_index:
            continue  # fixed (staging) modules have no TE row
        planned = matrices.time(module, schedule[module])
        if planned > 0:
            factors[module] = float(actual) / planned
    return factors


def clairvoyant_problem(
    problem: MedCCProblem,
    schedule: Schedule,
    actual_durations: Mapping[str, float],
) -> MedCCProblem:
    """The original instance with realized execution times baked in.

    ``schedule`` is the plan the modules actually ran under (so each
    observed duration can be anchored to a VM type) and
    ``actual_durations`` the realized times — e.g.
    ``{r.module: r.duration for r in trace.tasks}`` from a DES run, or
    a live workflow's actual-time ledger.
    """
    factors = _drift_factors(problem, schedule, actual_durations)
    matrices = problem.matrices
    measured: dict[str, tuple[float, ...]] = {}
    if problem.measured_te:
        measured.update(
            {name: tuple(row) for name, row in problem.measured_te.items()}
        )
    for module, factor in factors.items():
        row = matrices.te[matrices.row_index[module]]
        measured[module] = tuple(float(value) * factor for value in row)
    return dataclasses.replace(problem, measured_te=measured)


def clairvoyant_regret(
    problem: MedCCProblem,
    budget: float,
    *,
    schedule: Schedule,
    actual_durations: Mapping[str, float],
    realized_makespan: float,
    realized_cost: float,
    scheduler: CriticalGreedyScheduler | None = None,
) -> RegretReport:
    """Solve the clairvoyant instance and report the regret.

    ``budget`` is the *final* authorized budget (after top-ups) — the
    clairvoyant scheduler gets every advantage the live run had.
    """
    oracle_problem = clairvoyant_problem(problem, schedule, actual_durations)
    cg = scheduler or CriticalGreedyScheduler()
    feasible = True
    try:
        oracle: SchedulerResult = cg.solve(oracle_problem, budget)
        oracle_makespan = oracle.med
        oracle_cost = oracle.total_cost
    except InfeasibleBudgetError:
        # Even perfect foresight cannot stay within budget; benchmark
        # against the cheapest clairvoyant schedule instead.
        feasible = False
        evaluation = oracle_problem.evaluate(
            oracle_problem.least_cost_schedule()
        )
        oracle_makespan = evaluation.makespan
        oracle_cost = evaluation.total_cost
    return RegretReport(
        realized_makespan=float(realized_makespan),
        realized_cost=float(realized_cost),
        clairvoyant_makespan=float(oracle_makespan),
        clairvoyant_cost=float(oracle_cost),
        clairvoyant_feasible=feasible,
    )
