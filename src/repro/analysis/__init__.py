"""Analysis harness: metrics, budget sweeps, frontiers, statistics,
tables and ASCII figures."""

from repro.analysis.budgeting import budget_for_deadline, deadline_for_budget
from repro.analysis.figures import ascii_bars, ascii_heatmap, ascii_line
from repro.analysis.frontier import (
    Frontier,
    FrontierPoint,
    exact_frontier,
    frontier_regret,
    heuristic_frontier,
)
from repro.analysis.stats import (
    BootstrapCI,
    PairedComparison,
    bootstrap_mean_ci,
    paired_comparison,
)
from repro.analysis.metrics import (
    improvement_percent,
    mean,
    med_ratio,
    optimality_gap,
    reached_optimal,
)
from repro.analysis.sweep import (
    BudgetSweepPoint,
    BudgetSweepResult,
    InstanceComparison,
    compare_on_instances,
    sweep_budgets,
)
from repro.analysis.regret import (
    RegretReport,
    clairvoyant_problem,
    clairvoyant_regret,
)
from repro.analysis.tables import format_number, format_table
from repro.analysis.visualize import gantt, workflow_to_dot

__all__ = [
    "budget_for_deadline",
    "deadline_for_budget",
    "ascii_bars",
    "ascii_heatmap",
    "ascii_line",
    "Frontier",
    "FrontierPoint",
    "exact_frontier",
    "frontier_regret",
    "heuristic_frontier",
    "BootstrapCI",
    "PairedComparison",
    "bootstrap_mean_ci",
    "paired_comparison",
    "improvement_percent",
    "mean",
    "med_ratio",
    "optimality_gap",
    "reached_optimal",
    "BudgetSweepPoint",
    "BudgetSweepResult",
    "InstanceComparison",
    "compare_on_instances",
    "sweep_budgets",
    "RegretReport",
    "clairvoyant_problem",
    "clairvoyant_regret",
    "format_number",
    "format_table",
    "gantt",
    "workflow_to_dot",
]
