"""``repro.service`` — the cached, concurrent scheduling service layer.

Four layers, bottom-up (see ``docs/service.md``):

* :mod:`repro.service.codec` — canonical, version-stamped JSON encoders
  and decoders for workflows, catalogs, problems and schedules (the wire
  format shared by the HTTP API, ``repro solve --json`` and the cache);
* :mod:`repro.service.keys` — SHA-256 content hashing that is invariant
  under module/VM-type reordering, producing the
  ``(problem_hash, algorithm, params_hash)`` cache key;
* :mod:`repro.service.cache` + :mod:`repro.service.executor` — the
  thread-safe memoizing result store (LRU + optional atomic-JSON disk
  tier) and the bounded worker pool with backpressure, per-job timeouts
  and structured job records;
* :mod:`repro.service.app` + :mod:`repro.service.http` — the
  transport-agnostic :class:`SchedulingService` and its stdlib HTTP
  front-end (``repro serve`` / ``repro submit``);
* :mod:`repro.service.resilience` + :mod:`repro.service.router` — the
  fabric layer: retry policies with backoff and jitter, per-node circuit
  breakers, and the ``problem_hash``-sharded router with failover and
  hedging (``repro route``);
* :mod:`repro.service.chaos` — the fault-injecting proxy the resilience
  tests and the CI chaos-smoke job drive traffic through.

Quick start::

    from repro.service import SchedulingService
    from repro.core.serialize import problem_to_dict
    from repro.workloads import example_problem

    with SchedulingService() as svc:
        request = {"problem": problem_to_dict(example_problem()), "budget": 57}
        first = svc.solve(request)     # computed: cache_hit == False
        second = svc.solve(request)    # replayed: cache_hit == True
"""

from __future__ import annotations

from repro.exceptions import (
    CircuitOpenError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
    TransientServiceError,
)
from repro.service.app import ParsedRequest, SchedulingService, error_payload
from repro.service.cache import CacheStats, ResultCache
from repro.service.chaos import ChaosConfig, ChaosProxy
from repro.service.codec import (
    CODEC_VERSION,
    decode_catalog,
    decode_problem,
    decode_schedule,
    decode_workflow,
    dumps,
    encode_catalog,
    encode_problem,
    encode_result_fragment,
    encode_schedule,
    encode_workflow,
    loads,
)
from repro.service.executor import JobExecutor, JobRecord
from repro.service.http import ServiceClient, make_server, serve
from repro.service.resilience import CircuitBreaker, RetryPolicy
from repro.service.router import (
    NodeHandle,
    ShardRouter,
    make_router_server,
    serve_router,
)
from repro.service.keys import (
    RequestKey,
    canonical_problem_payload,
    params_hash,
    problem_hash,
    request_key,
)

__all__ = [
    "CODEC_VERSION",
    "CacheStats",
    "ChaosConfig",
    "ChaosProxy",
    "CircuitBreaker",
    "CircuitOpenError",
    "JobExecutor",
    "JobRecord",
    "NodeHandle",
    "ParsedRequest",
    "RequestKey",
    "ResultCache",
    "RetryPolicy",
    "SchedulingService",
    "ServiceClient",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceTimeoutError",
    "ShardRouter",
    "TransientServiceError",
    "canonical_problem_payload",
    "decode_catalog",
    "decode_problem",
    "decode_schedule",
    "decode_workflow",
    "dumps",
    "encode_catalog",
    "encode_problem",
    "encode_result_fragment",
    "encode_schedule",
    "encode_workflow",
    "error_payload",
    "loads",
    "make_router_server",
    "make_server",
    "params_hash",
    "problem_hash",
    "request_key",
    "serve",
    "serve_router",
]
