"""Reusable resilience primitives: retry policy and circuit breakers.

These are the building blocks the fabric layer (:mod:`repro.service.router`,
the retrying :class:`~repro.service.http.ServiceClient`, ``repro submit``)
composes to keep content-addressed solves flowing while individual nodes
misbehave:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *full jitter* (delay drawn uniformly from ``[0, cap]``), honouring a
  server-supplied ``Retry-After`` hint as a lower bound and an optional
  total ``deadline`` across all attempts.  Only
  :class:`~repro.exceptions.TransientServiceError` is retried; every
  other exception propagates untouched, so a 400 can never be "retried
  into" masking a client bug.
* :class:`CircuitBreaker` — the classic closed/open/half-open state
  machine per node.  ``failure_threshold`` consecutive failures open the
  breaker; after ``reset_timeout`` it half-opens and admits up to
  ``half_open_probes`` probe calls; one probe success closes it again,
  one probe failure re-opens it.  Transition counters are exported for
  ``/v1/stats`` so operators can see flapping.

Both primitives take injectable ``clock``/``sleep``/``rng`` hooks so
tests are deterministic and instantaneous.
"""

from __future__ import annotations

import random
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.exceptions import ServiceError, TransientServiceError

__all__ = ["RetryPolicy", "CircuitBreaker"]

_T = TypeVar("_T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with full jitter and a total deadline.

    Parameters
    ----------
    max_retries:
        Retries *after* the first attempt (``0`` = single attempt).
    base_delay:
        Backoff cap for the first retry, in seconds.
    multiplier:
        Geometric growth factor of the backoff cap per retry.
    max_delay:
        Upper bound on the backoff cap regardless of attempt number.
    deadline:
        Optional total time budget, in seconds, across *all* attempts and
        sleeps; a retry whose backoff would overrun it is not taken.
    jitter:
        When ``True`` (default) each delay is drawn uniformly from
        ``[0, cap]`` (full jitter, decorrelating synchronized clients);
        ``False`` sleeps the deterministic cap itself.
    """

    max_retries: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    deadline: float | None = None
    jitter: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ServiceError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ServiceError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise ServiceError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.deadline is not None and self.deadline <= 0:
            raise ServiceError(f"deadline must be positive, got {self.deadline}")

    def backoff_delay(
        self,
        attempt: int,
        *,
        retry_after: float | None = None,
        rng: random.Random | None = None,
    ) -> float:
        """The sleep before retry number ``attempt + 1``.

        ``retry_after`` (the server's ``Retry-After`` hint) acts as a
        lower bound: the jittered backoff never undercuts what the server
        asked for, but may exceed it.
        """
        cap = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        delay = (rng or random).uniform(0.0, cap) if self.jitter else cap
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        return delay

    def run(
        self,
        fn: Callable[[int], _T],
        *,
        sleep: Callable[[float], Any] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        rng: random.Random | None = None,
        on_retry: Callable[[int, TransientServiceError], Any] | None = None,
    ) -> _T:
        """Call ``fn(attempt)`` until success or the policy is exhausted.

        ``fn`` signals "retry me" by raising
        :class:`~repro.exceptions.TransientServiceError`; any other
        exception (including other ``ServiceError`` subclasses) is not
        retried.  When retries or the deadline run out, the *last*
        transient error is re-raised so callers see the real failure.
        ``on_retry(attempt, exc)`` fires before each backoff sleep.
        """
        started = clock()
        last: TransientServiceError | None = None
        for attempt in range(self.max_retries + 1):
            try:
                return fn(attempt)
            except TransientServiceError as exc:
                last = exc
                if attempt >= self.max_retries:
                    break
                delay = self.backoff_delay(
                    attempt, retry_after=exc.retry_after, rng=rng
                )
                if (
                    self.deadline is not None
                    and clock() - started + delay > self.deadline
                ):
                    break
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(delay)
        assert last is not None
        raise last


class CircuitBreaker:
    """Per-node closed/open/half-open circuit breaker (thread-safe).

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    reset_timeout:
        Seconds the breaker stays open before half-opening.
    half_open_probes:
        Probe calls admitted while half-open; further calls are rejected
        until a probe resolves.
    clock:
        Injectable monotonic clock for tests.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold <= 0:
            raise ServiceError(
                f"failure_threshold must be positive, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ServiceError(f"reset_timeout must be positive, got {reset_timeout}")
        if half_open_probes <= 0:
            raise ServiceError(
                f"half_open_probes must be positive, got {half_open_probes}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probes_in_flight = 0
        self._transitions = {"opened": 0, "half_opened": 0, "closed": 0}
        self._counts = {"successes": 0, "failures": 0, "rejected": 0}

    # ------------------------------------------------------------------ #
    # State machine
    # ------------------------------------------------------------------ #

    @property
    def state(self) -> str:
        """``closed`` | ``open`` | ``half_open`` (open may lazily half-open)."""
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == "open"
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = "half_open"
            self._probes_in_flight = 0
            self._transitions["half_opened"] += 1

    def allow(self) -> bool:
        """Whether a call may proceed now (claims a probe slot if half-open)."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == "closed":
                return True
            if self._state == "half_open":
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    return True
                self._counts["rejected"] += 1
                return False
            self._counts["rejected"] += 1
            return False

    def record_success(self) -> None:
        """Note a successful call: closes a half-open breaker."""
        with self._lock:
            self._counts["successes"] += 1
            self._consecutive_failures = 0
            if self._state == "half_open":
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
            if self._state != "closed":
                self._state = "closed"
                self._opened_at = None
                self._transitions["closed"] += 1

    def record_failure(self) -> None:
        """Note a failed call: may trip the breaker (re-)open."""
        with self._lock:
            self._counts["failures"] += 1
            self._consecutive_failures += 1
            if self._state == "half_open":
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._trip_locked()
            elif (
                self._state == "closed"
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = "open"
        self._opened_at = self._clock()
        self._transitions["opened"] += 1

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def retry_after_hint(self) -> float | None:
        """Seconds until the breaker half-opens (``None`` when not open)."""
        with self._lock:
            if self._state != "open" or self._opened_at is None:
                return None
            return max(0.0, self.reset_timeout - (self._clock() - self._opened_at))

    def stats(self) -> dict[str, Any]:
        """JSON-compatible snapshot for ``/v1/stats`` aggregation."""
        with self._lock:
            self._maybe_half_open_locked()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                **self._counts,
                "transitions": dict(self._transitions),
            }
