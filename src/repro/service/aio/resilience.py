"""Event-loop resilience: async retry, breaker guard, hedged requests.

Asyncio twins of the blocking fabric primitives.  They deliberately
contain **no new policy state**: :func:`retry_async` interprets the same
frozen :class:`~repro.service.resilience.RetryPolicy` (same backoff
caps, jitter, ``Retry-After`` floor and deadline semantics, same
"only :class:`~repro.exceptions.TransientServiceError` retries" rule),
and :func:`call_guarded` drives the existing thread-safe
:class:`~repro.service.resilience.CircuitBreaker` state machine — a
breaker instance can be shared between threaded and async callers and
sees one consistent failure history.
"""

from __future__ import annotations

import asyncio
import random
from collections.abc import Awaitable, Callable
from typing import Any, TypeVar

from repro.exceptions import TransientServiceError
from repro.service.resilience import CircuitBreaker, RetryPolicy

__all__ = ["call_guarded", "hedged", "retry_async"]

_T = TypeVar("_T")


async def retry_async(
    policy: RetryPolicy,
    fn: Callable[[int], Awaitable[_T]],
    *,
    rng: random.Random | None = None,
    on_retry: Callable[[int, TransientServiceError], Any] | None = None,
) -> _T:
    """Await ``fn(attempt)`` until success or the policy is exhausted.

    The asyncio counterpart of :meth:`RetryPolicy.run`: backoff sleeps
    run on the loop (``asyncio.sleep``), the deadline is measured on the
    loop clock, and the *last* transient error is re-raised when retries
    or the deadline run out.
    """
    loop = asyncio.get_running_loop()
    started = loop.time()
    last: TransientServiceError | None = None
    for attempt in range(policy.max_retries + 1):
        try:
            return await fn(attempt)
        except TransientServiceError as exc:
            last = exc
            if attempt >= policy.max_retries:
                break
            delay = policy.backoff_delay(attempt, retry_after=exc.retry_after, rng=rng)
            if (
                policy.deadline is not None
                and loop.time() - started + delay > policy.deadline
            ):
                break
            if on_retry is not None:
                on_retry(attempt, exc)
            await asyncio.sleep(delay)
    assert last is not None
    raise last


async def call_guarded(
    breaker: CircuitBreaker, fn: Callable[[], Awaitable[_T]]
) -> _T:
    """Run one awaitable call through a circuit breaker.

    An open breaker short-circuits with a
    :class:`~repro.exceptions.TransientServiceError` carrying the
    half-open ``retry_after`` hint, so :func:`retry_async` naturally
    waits out the reset window.  Any exception from ``fn`` counts as a
    failure (and re-raises); success closes a half-open breaker.
    """
    if not breaker.allow():
        hint = breaker.retry_after_hint()
        raise TransientServiceError(
            "circuit breaker is open",
            retry_after=hint if hint is not None else 1.0,
        )
    try:
        result = await fn()
    except BaseException:  # noqa: B036 - recorded, then re-raised untouched
        breaker.record_failure()
        raise
    breaker.record_success()
    return result


async def hedged(
    start: Callable[[int], Awaitable[_T]],
    *,
    delay: float,
    hedges: int = 1,
) -> _T:
    """First-result-wins hedging against tail latency.

    Launches ``start(0)``; every time ``delay`` seconds pass without an
    answer and fewer than ``hedges`` backups exist, launches
    ``start(n)`` in parallel.  The first *successful* attempt wins and
    every other in-flight attempt is cancelled; if all attempts fail,
    the last failure is raised.  Safe against the coalescing core:
    duplicate hedged solves share one flight server-side, so a hedge
    costs a request, not a solver run.
    """
    spawned = 1
    tasks: set["asyncio.Task[_T]"] = {asyncio.ensure_future(start(0))}
    failure: BaseException | None = None
    try:
        while tasks:
            timeout = delay if spawned <= hedges else None
            done, _pending = await asyncio.wait(
                tasks, timeout=timeout, return_when=asyncio.FIRST_COMPLETED
            )
            if not done:
                tasks.add(asyncio.ensure_future(start(spawned)))
                spawned += 1
                continue
            for task in done:
                tasks.discard(task)
                exc = task.exception()
                if exc is None:
                    # A done asyncio.Task never blocks on .result().
                    return task.result()  # lint: ignore[RT703]
                failure = exc
        assert failure is not None
        raise failure
    finally:
        for task in tasks:
            task.cancel()
