"""Micro-batching queue: group cache misses into one ``solve_batch`` run.

Misses whose requests share a workflow, algorithm, knob set and timeout
(only budgets differ — :func:`repro.service.app.batch_group_key`)
accumulate in an open *window* per group key.  A window drains when its
timer expires (``--batch-window-ms``) or it reaches ``--batch-max``
items, whichever comes first; the drain hands the whole group to a
runner that executes one structure-of-arrays
``CriticalGreedyScheduler.solve_batch`` pass on a single worker slot and
fans the per-item outcomes back to the individual waiters.  Responses
are byte-identical to serial solves — ``solve_batch`` carries the
bit-identity contract, and error outcomes are isolated per item.

A waiter cancelled while parked in a window (client gone, per-waiter
timeout) simply loses its slot: ``await`` on the waiter future
propagates the cancellation into the future, and the drain skips
cancelled slots while its groupmates proceed normally.
"""

from __future__ import annotations

import asyncio
from collections.abc import Awaitable, Callable, Hashable, Sequence
from typing import Any

__all__ = ["MicroBatcher"]

#: A runner maps the windowed items to per-item ``(status, value)``
#: outcomes: ``("ok", response)`` or ``("error", exception)``.
Runner = Callable[[Sequence[Any]], Awaitable[Sequence[tuple[str, Any]]]]


class _Window:
    """One open accumulation window for a group key."""

    __slots__ = ("items", "closed", "timer")

    def __init__(self) -> None:
        self.items: list[tuple[Any, "asyncio.Future[Any]"]] = []
        self.closed = False
        self.timer: asyncio.TimerHandle | None = None


class MicroBatcher:
    """Accumulate same-group items briefly, drain them as one batch."""

    def __init__(self, runner: Runner, *, window: float, batch_max: int) -> None:
        self._runner = runner
        self.window = max(0.0, float(window))
        self.batch_max = max(1, int(batch_max))
        self._windows: dict[Hashable, _Window] = {}
        #: Windows drained (the ``batch_windows`` counter on ``/v1/stats``).
        self.batch_windows = 0
        #: Items drained across all windows.
        self.batched_items = 0
        #: Fill-size histogram: window size → number of windows.
        self.batch_fill: dict[int, int] = {}

    @property
    def enabled(self) -> bool:
        """Whether batching can ever group (window > 0 and max > 1)."""
        return self.window > 0.0 and self.batch_max > 1

    async def submit(self, key: Hashable, item: Any) -> Any:
        """Park ``item`` in the open window for ``key``; await its outcome."""
        loop = asyncio.get_running_loop()
        window = self._windows.get(key)
        if window is None:
            window = _Window()
            self._windows[key] = window
            window.timer = loop.call_later(self.window, self._close, key, window)
        future: "asyncio.Future[Any]" = loop.create_future()
        window.items.append((item, future))
        if len(window.items) >= self.batch_max:
            self._close(key, window)
        return await future

    def _close(self, key: Hashable, window: _Window) -> None:
        """Seal a window and schedule its drain (idempotent)."""
        if window.closed:
            return
        window.closed = True
        if window.timer is not None:
            window.timer.cancel()
        if self._windows.get(key) is window:
            del self._windows[key]
        fill = len(window.items)
        self.batch_windows += 1
        self.batched_items += fill
        self.batch_fill[fill] = self.batch_fill.get(fill, 0) + 1
        asyncio.get_running_loop().create_task(self._drain(window))

    async def _drain(self, window: _Window) -> None:
        live = [(item, fut) for item, fut in window.items if not fut.done()]
        if not live:
            return
        try:
            outcomes = await self._runner([item for item, _fut in live])
        except BaseException as exc:  # noqa: B036  # lint: ignore[RS602] - fanned to waiters
            for _item, fut in live:
                if not fut.done():
                    fut.set_exception(exc)
            return
        for (_item, fut), (status, value) in zip(live, outcomes):
            if fut.done():
                continue  # waiter cancelled while the batch was solving
            if status == "ok":
                fut.set_result(value)
            else:
                fut.set_exception(value)
