"""The asyncio service core: coalesce, batch, solve on a bounded pool.

:class:`AsyncServiceCore` wraps the transport-agnostic
:class:`~repro.service.app.SchedulingService` with an event-loop request
path.  One request flows::

    parse_head ──► cache probe ──► single-flight ──► micro-batch ──► pool
      (hash only)   (both tiers)     (per RequestKey)  (per group key)

* ``parse_head`` validates and hashes on the loop **without decoding**
  the problem payload; coalesced duplicates therefore pay one decode
  (the flight leader's) instead of N.
* The decode itself is memoized in a small ``problem_hash``-keyed LRU so
  a budget sweep over one workflow decodes its DAG once.
* Solver work runs on a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
  guarded by the same admission accounting as the threaded
  :class:`~repro.service.executor.JobExecutor` (shared
  :mod:`repro.service.jobs` vocabulary): a rejected miss never increments
  ``submitted``, every admitted miss makes exactly one terminal
  transition.
* A loop-lag monitor samples event-loop scheduling delay so ``/v1/stats``
  can report ``loop_lag_p95`` — the canary for accidentally blocking the
  loop (see the RT703 lint rule for the static version of that check).

Responses are byte-identical to the threaded core's: cache fragments are
produced by the same ``solve`` / ``solve_batch`` code, and the batched
path carries the scheduler's bit-identity contract.  Response dicts may
be shared between coalesced waiters — treat them as immutable.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict, deque
from collections.abc import AsyncIterator, Mapping, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.core.problem import MedCCProblem
from repro.exceptions import ServiceError, ServiceOverloadedError, ServiceTimeoutError
from repro.service import codec
from repro.service.app import (
    KeyedRequest,
    SchedulingService,
    batch_group_key,
    error_payload,
)
from repro.service.jobs import JobRecord, new_job_counts, percentile
from repro.service.keys import RequestKey
from repro.service.aio.batch import MicroBatcher
from repro.service.aio.coalesce import SingleFlight

__all__ = ["AsyncServiceCore"]


class AsyncServiceCore:
    """Event-loop front half of a :class:`SchedulingService`.

    Parameters
    ----------
    service:
        The wrapped scheduling service (cache, codec, live workflows and
        solve bodies all come from it; its threaded executor sits idle).
    max_workers / queue_size:
        Bounded solver pool: up to ``max_workers`` concurrent solves with
        ``queue_size`` more admitted and waiting; misses beyond
        ``queue_size + max_workers`` in flight are rejected with
        :class:`~repro.exceptions.ServiceOverloadedError` (HTTP 503).
    default_timeout:
        Per-waiter timeout applied when a request carries none.  A waiter
        timing out never cancels the underlying solve while other waiters
        remain; the solve still completes and populates the cache.
    batch_window / batch_max:
        Micro-batching knobs (seconds / items); ``batch_window=0`` or
        ``batch_max=1`` disables grouping and sends every miss straight
        to the pool.
    problem_cache:
        Capacity of the decoded-problem LRU (distinct workflows).
    lag_interval:
        Sampling period of the loop-lag monitor, seconds.
    """

    def __init__(
        self,
        service: SchedulingService,
        *,
        max_workers: int = 4,
        queue_size: int = 64,
        default_timeout: float | None = None,
        batch_window: float = 0.002,
        batch_max: int = 32,
        problem_cache: int = 32,
        lag_interval: float = 0.25,
        record_limit: int = 1024,
    ) -> None:
        if max_workers <= 0:
            raise ServiceError(f"max_workers must be positive, got {max_workers}")
        if queue_size <= 0:
            raise ServiceError(f"queue_size must be positive, got {queue_size}")
        if default_timeout is not None and default_timeout <= 0:
            raise ServiceError(
                f"default_timeout must be positive, got {default_timeout}"
            )
        self.service = service
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-aio-solver"
        )
        self._queue_size = int(queue_size)
        self._capacity = int(queue_size) + int(max_workers)
        self._default_timeout = default_timeout
        self.flights = SingleFlight()
        self.batcher = MicroBatcher(
            self._run_group, window=batch_window, batch_max=batch_max
        )
        # Decoded-problem LRU, shared with pool threads (hence the lock).
        self._problems: "OrderedDict[str, MedCCProblem]" = OrderedDict()
        self._problems_cap = max(1, int(problem_cache))
        self._problems_lock = threading.Lock()
        # Job accounting (mutated on the loop thread only).
        self._counts = new_job_counts()
        self._active = 0
        self._next_id = 0
        self._records: deque[JobRecord] = deque(maxlen=record_limit)
        #: Waiters that hit their per-request timeout while the solve
        #: kept running for the remaining waiters.
        self.waiter_timeouts = 0
        self._lag_interval = max(0.01, float(lag_interval))
        self._lag_samples: deque[float] = deque(maxlen=512)
        self._lag_task: "asyncio.Task[None] | None" = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Start the loop-lag monitor (idempotent)."""
        if self._lag_task is None:
            self._lag_task = asyncio.get_running_loop().create_task(
                self._lag_monitor()
            )

    async def drain(self) -> None:
        """Graceful shutdown: reject new work, wait for in-flight, flush.

        Mirrors :meth:`SchedulingService.drain`: readiness drops first so
        routers fail over, every admitted job reaches its terminal state,
        then the disk cache tier is flushed.
        """
        self.service._draining = True  # reject before waiting, like drain()
        while self._active > 0:
            await asyncio.sleep(0.01)
        await asyncio.get_running_loop().run_in_executor(None, self.service.drain)

    async def aclose(self) -> None:
        """Stop the monitor and shut the solver pool down."""
        if self._lag_task is not None:
            self._lag_task.cancel()
            try:
                await self._lag_task
            except asyncio.CancelledError:
                pass
            self._lag_task = None
        self._pool.shutdown(wait=True)

    async def _lag_monitor(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(self._lag_interval)
            lag = loop.time() - before - self._lag_interval
            self._lag_samples.append(max(0.0, lag))

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #

    async def solve(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """One ``/v1/solve`` request: parse, coalesce, (maybe) batch, solve."""
        started = time.monotonic()
        try:
            keyed = self.service.parse_head(payload)
            return await self._solve_keyed(keyed)
        finally:
            self.service._observe(time.monotonic() - started)

    async def _solve_keyed(self, keyed: KeyedRequest) -> dict[str, Any]:
        self.service._reject_if_draining()
        hit = self.service.lookup(keyed)
        if hit is not None:
            return hit
        timeout = keyed.timeout if keyed.timeout is not None else self._default_timeout
        if timeout is not None and timeout <= 0:
            raise ServiceError(f"timeout must be positive, got {timeout}")
        try:
            response, _follower = await self.flights.run(
                keyed.key, lambda: self._miss(keyed), timeout=timeout
            )
        except (TimeoutError, asyncio.TimeoutError):
            # This waiter's deadline, not the job's: the flight keeps
            # running for the remaining waiters (and to warm the cache).
            self.waiter_timeouts += 1
            exc = ServiceTimeoutError(timeout if timeout is not None else 0.0)
            if not self.service.degrade_on_timeout:
                raise exc from None
            return await asyncio.get_running_loop().run_in_executor(
                self._pool, self._degraded_sync, keyed, exc
            )
        return response

    async def _miss(self, keyed: KeyedRequest) -> dict[str, Any]:
        """Flight-leader body: admit one job, route it to batch or pool."""
        if self._active >= self._capacity:
            self._counts["rejected"] += 1
            raise ServiceOverloadedError(self._queue_size)
        record = JobRecord(
            job_id=self._next_id, label=keyed.algorithm, queued_at=time.time()
        )
        self._next_id += 1
        self._records.append(record)
        self._counts["submitted"] += 1
        self._active += 1
        try:
            if (
                self.batcher.enabled
                and getattr(keyed.scheduler, "solve_batch", None) is not None
            ):
                response = await self.batcher.submit(batch_group_key(keyed), keyed)
            else:
                record.status = "running"
                record.started_at = time.time()
                response = await asyncio.get_running_loop().run_in_executor(
                    self._pool, self._solve_single_sync, keyed
                )
        except asyncio.CancelledError:
            self._terminal(record, "cancelled")
            raise
        except BaseException as exc:  # noqa: B036 - fed to the flight waiters
            self._terminal(record, "failed", error=exc)
            raise
        self._terminal(record, "done", response=response)
        return response

    def _terminal(
        self,
        record: JobRecord,
        status: str,
        *,
        error: BaseException | None = None,
        response: Mapping[str, Any] | None = None,
    ) -> None:
        record.status = status
        record.finished_at = time.time()
        if record.started_at is None:
            record.started_at = record.finished_at
        if error is not None:
            record.error = f"{type(error).__name__}: {error}"
        if response is not None:
            try:
                extra = self.service._annotate_record(response)
            except Exception:  # lint: ignore[RS602] - cosmetic hook
                extra = {}
            record.engine = extra.get("engine")
            hit = extra.get("cache_hit")
            record.cache_hit = None if hit is None else bool(hit)
        self._counts[status] += 1
        self._active -= 1

    # ------------------------------------------------------------------ #
    # Pool-thread bodies (never run on the loop)
    # ------------------------------------------------------------------ #

    def _decoded(self, keyed: KeyedRequest) -> MedCCProblem:
        """The decoded problem for a request, via the content-hash LRU."""
        digest = keyed.key.problem_hash
        with self._problems_lock:
            problem = self._problems.get(digest)
            if problem is not None:
                self._problems.move_to_end(digest)
                return problem
        problem = codec.decode_problem(keyed.problem_payload)
        with self._problems_lock:
            self._problems[digest] = problem
            self._problems.move_to_end(digest)
            while len(self._problems) > self._problems_cap:
                self._problems.popitem(last=False)
        return problem

    def _solve_single_sync(self, keyed: KeyedRequest) -> dict[str, Any]:
        parsed = self.service.complete(keyed, problem=self._decoded(keyed))
        return self.service._solve_job(parsed)

    def _solve_group_sync(
        self, items: Sequence[KeyedRequest]
    ) -> list[tuple[str, Any]]:
        """One window drain: decode once, solve the budget axis as a batch."""
        if len(items) == 1:
            try:
                return [("ok", self._solve_single_sync(items[0]))]
            except Exception as exc:  # lint: ignore[RS602] - outcome fans back to the waiter
                return [("error", exc)]
        problem = self._decoded(items[0])
        parsed = [self.service.complete(keyed, problem=problem) for keyed in items]
        return self.service.solve_group_outcomes(parsed)

    def _degraded_sync(
        self, keyed: KeyedRequest, exc: ServiceTimeoutError
    ) -> dict[str, Any]:
        parsed = self.service.complete(keyed, problem=self._decoded(keyed))
        return self.service._degraded_response(parsed, exc)

    async def _run_group(
        self, items: Sequence[KeyedRequest]
    ) -> list[tuple[str, Any]]:
        return await asyncio.get_running_loop().run_in_executor(
            self._pool, self._solve_group_sync, list(items)
        )

    # ------------------------------------------------------------------ #
    # Batch endpoint
    # ------------------------------------------------------------------ #

    def solve_batch_stream(self, payloads: Any) -> AsyncIterator[dict[str, Any]]:
        """``/v1/solve_batch``: responses in input order, streamed as ready.

        Envelope validation and dispatch are eager — a non-array body
        raises *here*, before the first item is yielded, so the HTTP
        layer can still answer 400 with an unstarted response.  All
        items run concurrently through the shared coalesce/batch path;
        item *i* is yielded once it (and its predecessors) are done, so
        the response streams back while later slots still converge.
        Items whose request key already appeared earlier in the batch
        copy the first occurrence's response with ``deduped: true``,
        exactly like the threaded endpoint.
        """
        if not isinstance(payloads, (list, tuple)):
            raise ServiceError("'requests' must be an array of solve requests")
        started = time.monotonic()
        first_seen: dict[RequestKey, "asyncio.Task[dict[str, Any]]"] = {}
        entries: list[tuple[str, Any]] = []
        duplicates = 0
        for payload in payloads:
            try:
                keyed = self.service.parse_head(payload)
            except Exception as exc:  # per-item isolation
                entries.append(("error", error_payload(exc)))
                continue
            prior = first_seen.get(keyed.key)
            if prior is not None:
                duplicates += 1
                entries.append(("dup", prior))
                continue
            task = asyncio.ensure_future(self._solve_keyed(keyed))
            first_seen[keyed.key] = task
            entries.append(("task", task))
        return self._batch_results(entries, duplicates, started)

    async def _batch_results(
        self,
        entries: list[tuple[str, Any]],
        duplicates: int,
        started: float,
    ) -> AsyncIterator[dict[str, Any]]:
        try:
            for kind, value in entries:
                if kind == "error":
                    yield value
                    continue
                try:
                    response = await value
                except Exception as exc:
                    response = error_payload(exc)
                if kind == "dup":
                    # Copies of the first occurrence are flagged even when
                    # it failed, exactly like the threaded endpoint.
                    response = dict(response)
                    response["deduped"] = True
                yield response
        finally:
            for _kind, value in entries:
                if isinstance(value, asyncio.Task) and not value.done():
                    value.cancel()
            with self.service._lock:
                self.service._batch_deduped += duplicates
            self.service._observe(time.monotonic() - started)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def records(self) -> list[JobRecord]:
        """The retained job records, oldest first."""
        return list(self._records)

    def stats(self) -> dict[str, Any]:
        """The ``/v1/stats`` body with the async core's sections.

        The ``executor`` section keeps the threaded shape (shared
        :mod:`repro.service.jobs` counters) but reports *this* core's
        pool; the ``aio`` section carries the coalescing, batching and
        loop-lag figures.
        """
        data = self.service.stats()
        run_times = [
            r.run_time
            for r in self._records
            if r.status == "done" and r.run_time is not None
        ]
        data["executor"] = {
            **dict(self._counts),
            "active": self._active,
            "latency_p50": percentile(run_times, 50),
            "latency_p95": percentile(run_times, 95),
            "queue_capacity": self._queue_size,
        }
        lag = list(self._lag_samples)
        with self._problems_lock:
            problem_cache_size = len(self._problems)
        data["aio"] = {
            "coalesced": self.flights.coalesced,
            "flights_started": self.flights.flights_started,
            "flights_inflight": len(self.flights),
            "waiter_timeouts": self.waiter_timeouts,
            "batch_windows": self.batcher.batch_windows,
            "batched_items": self.batcher.batched_items,
            "batch_fill": {
                str(size): count
                for size, count in sorted(self.batcher.batch_fill.items())
            },
            "batch_window_ms": self.batcher.window * 1000.0,
            "batch_max": self.batcher.batch_max,
            "loop_lag_p50": percentile(lag, 50),
            "loop_lag_p95": percentile(lag, 95),
            "problem_cache_size": problem_cache_size,
        }
        return data
