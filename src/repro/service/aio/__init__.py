"""Asyncio service core: event loop + bounded solver worker pool.

The threaded front-end (:mod:`repro.service.http`) spends one thread per
request and one solver run per request.  At duplicate-heavy,
millions-of-users traffic that wastes the two properties the service
already has: results are content-addressed (identical concurrent
requests could share one solve) and the Critical-Greedy scheduler can
vectorize a whole budget axis in one ``solve_batch`` pass.  This package
is the event-loop core that exploits both:

* :mod:`~repro.service.aio.coalesce` — **single-flight dedupe**: N
  concurrent requests for one :class:`~repro.service.keys.RequestKey`
  await a single in-flight solve through a keyed future table;
* :mod:`~repro.service.aio.batch` — **micro-batching**: cache misses
  that share a workflow/algorithm/knob set accumulate for a tunable
  window and drain into one structure-of-arrays ``solve_batch`` run,
  results fanned back per waiter, byte-identical to serial solves;
* :mod:`~repro.service.aio.core` — the
  :class:`~repro.service.aio.core.AsyncServiceCore` gluing both onto a
  bounded solver thread pool with backpressure, loop-lag monitoring and
  the shared job accounting from :mod:`repro.service.jobs`;
* :mod:`~repro.service.aio.http` — the asyncio HTTP front-end behind
  ``repro serve --async`` (same routes, same status mapping, batch
  responses streamed item-by-item);
* :mod:`~repro.service.aio.client` / :mod:`~repro.service.aio.resilience`
  — an event-loop client plus async retry/hedging that share the
  :class:`~repro.service.resilience.RetryPolicy` /
  :class:`~repro.service.resilience.CircuitBreaker` state machines.

See ``docs/service.md`` ("Async core") for the architecture picture,
tuning guidance and the threaded-vs-async selection matrix.
"""

from __future__ import annotations

from repro.service.aio.batch import MicroBatcher
from repro.service.aio.coalesce import SingleFlight
from repro.service.aio.core import AsyncServiceCore

__all__ = ["AsyncServiceCore", "MicroBatcher", "SingleFlight"]
