"""Asyncio HTTP front-end for the service core (``repro serve --async``).

Same surface as the threaded front-end (:mod:`repro.service.http`) —
identical routes, identical status mapping, identical canonical-JSON
bodies — but requests ride the event loop through
:class:`~repro.service.aio.core.AsyncServiceCore` instead of occupying a
thread each, so duplicate requests coalesce and same-workflow sweeps
micro-batch.  Differences visible on the wire:

* ``POST /v1/solve_batch`` answers with ``Transfer-Encoding: chunked``
  and streams each result item as its slot converges.  The concatenated
  chunks are byte-identical to the threaded body
  (``dumps({"results": [...], "status": "ok"})``), so any HTTP/1.1
  client — including the stdlib ones — decodes the same bytes.
* ``GET /v1/stats`` carries the extra ``aio`` section (coalescing,
  batch-fill and loop-lag figures) and the async core's ``executor``
  counters.

Live-workflow endpoints do blocking log I/O, so they run on the default
executor — never on the loop (the RT703 lint rule enforces the static
version of this rule for every handler in this package).

:func:`serve_async` is the blocking entry point; it prints the same
``listening on http://host:port`` line as the threaded server so fleet
tooling (the chaos harness, ``scripts/``) can scrape the bound port
without caring which core answers.  :class:`BackgroundAsyncServer` runs
the whole stack on a daemon thread for tests and benchmarks.
"""

from __future__ import annotations

import asyncio
import http.client
import signal
import sys
import threading
from collections.abc import AsyncIterator, Sequence
from typing import Any

from repro.exceptions import ServiceError
from repro.service.app import SchedulingService, error_payload
from repro.service.aio.core import AsyncServiceCore
from repro.service.codec import dumps, loads
from repro.service.http import (
    HttpPeer,
    _status_for,
    _WORKFLOW_EVENTS_RE,
    _WORKFLOW_STATUS_RE,
    _WORKFLOW_SYNC_RE,
)

__all__ = ["AsyncServiceServer", "BackgroundAsyncServer", "serve_async"]


def _chunk(data: bytes) -> bytes:
    """One HTTP/1.1 chunked-transfer frame."""
    return f"{len(data):X}\r\n".encode("latin-1") + data + b"\r\n"


class AsyncServiceServer:
    """Routes HTTP requests on asyncio streams onto an async core."""

    def __init__(self, core: AsyncServiceCore, *, verbose: bool = False) -> None:
        self.core = core
        self.verbose = verbose

    @property
    def service(self) -> SchedulingService:
        return self.core.service

    # ------------------------------------------------------------------ #
    # Connection plumbing
    # ------------------------------------------------------------------ #

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: HTTP/1.1 with keep-alive."""
        try:
            keep_alive = True
            while keep_alive:
                request_line = await reader.readline()
                if not request_line:
                    return
                try:
                    method, path, version = (
                        request_line.decode("latin-1").split()
                    )
                except ValueError:
                    return  # malformed request line: drop the connection
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length") or 0)
                except ValueError:
                    length = 0
                body = await reader.readexactly(length) if length > 0 else b""
                keep_alive = (
                    version.upper() == "HTTP/1.1"
                    and headers.get("connection", "").lower() != "close"
                )
                if self.verbose:
                    sys.stderr.write(f"aio - {method} {path}\n")
                await self._dispatch(method.upper(), path, body, writer, keep_alive)
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # client vanished mid-request; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        *,
        keep_alive: bool,
        retry_after: bool = False,
    ) -> None:
        body = dumps(payload).encode("utf-8")
        reason = http.client.responses.get(status, "OK")
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        if retry_after:
            head.append("Retry-After: 1")
        head.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)

    def _send_error_payload(
        self, writer: asyncio.StreamWriter, exc: BaseException, keep_alive: bool
    ) -> None:
        status = _status_for(exc)
        self._send(
            writer,
            status,
            error_payload(exc),
            keep_alive=keep_alive,
            retry_after=status == 503,
        )

    def _not_found(
        self, writer: asyncio.StreamWriter, path: str, keep_alive: bool
    ) -> None:
        self._send(
            writer,
            404,
            {
                "status": "error",
                "error": {"kind": "not_found", "message": f"no route {path}"},
            },
            keep_alive=keep_alive,
        )

    @staticmethod
    def _body(raw: bytes) -> Any:
        if not raw:
            raise ServiceError("request body is empty")
        return loads(raw)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    async def _dispatch(
        self,
        method: str,
        path: str,
        body: bytes,
        writer: asyncio.StreamWriter,
        keep_alive: bool,
    ) -> None:
        loop = asyncio.get_running_loop()
        if method == "GET":
            if path == "/v1/healthz":
                self._send(writer, 200, {"status": "ok"}, keep_alive=keep_alive)
            elif path == "/v1/readyz":
                ready = self.service.ready
                self._send(
                    writer,
                    200 if ready else 503,
                    {
                        "status": "ok" if ready else "error",
                        "ready": ready,
                        **(
                            {}
                            if ready
                            else {
                                "error": {
                                    "kind": "not_ready",
                                    "message": "service is draining",
                                }
                            }
                        ),
                    },
                    keep_alive=keep_alive,
                    retry_after=not ready,
                )
            elif path == "/v1/stats":
                self._send(
                    writer,
                    200,
                    {"status": "ok", "stats": self.core.stats()},
                    keep_alive=keep_alive,
                )
            elif (match := _WORKFLOW_SYNC_RE.match(path)) is not None:
                try:
                    response = await loop.run_in_executor(
                        None, self.service.workflow_sync_pull, match.group(1)
                    )
                except Exception as exc:
                    self._send_error_payload(writer, exc, keep_alive)
                    return
                self._send(writer, 200, response, keep_alive=keep_alive)
            elif (match := _WORKFLOW_STATUS_RE.match(path)) is not None:
                try:
                    response = await loop.run_in_executor(
                        None, self.service.workflow_status, match.group(1)
                    )
                except Exception as exc:
                    self._send_error_payload(writer, exc, keep_alive)
                    return
                self._send(writer, 200, response, keep_alive=keep_alive)
            else:
                self._not_found(writer, path, keep_alive)
            return

        if method != "POST":
            self._not_found(writer, path, keep_alive)
            return
        try:
            if path == "/v1/solve":
                response = await self.core.solve(self._body(body))
            elif path == "/v1/solve_batch":
                stream = self.core.solve_batch_stream(
                    self._body(body).get("requests")
                )
                await self._send_batch(writer, stream, keep_alive)
                return
            elif path == "/v1/workflows":
                response = await loop.run_in_executor(
                    None, self.service.register_workflow, self._body(body)
                )
            elif (match := _WORKFLOW_EVENTS_RE.match(path)) is not None:
                payload = self._body(body)
                response = await loop.run_in_executor(
                    None, self.service.workflow_event, match.group(1), payload
                )
            elif (match := _WORKFLOW_SYNC_RE.match(path)) is not None:
                payload = self._body(body)
                response = await loop.run_in_executor(
                    None, self.service.workflow_sync_push, match.group(1), payload
                )
            else:
                self._not_found(writer, path, keep_alive)
                return
        except Exception as exc:
            self._send_error_payload(writer, exc, keep_alive)
            return
        self._send(writer, 200, response, keep_alive=keep_alive)

    async def _send_batch(
        self,
        writer: asyncio.StreamWriter,
        stream: AsyncIterator[dict[str, Any]],
        keep_alive: bool,
    ) -> None:
        """Stream ``/v1/solve_batch`` results item-by-item (chunked).

        The concatenated chunks are exactly
        ``dumps({"results": [...], "status": "ok"})`` — canonical JSON
        sorts ``results`` before ``status``, so the envelope splits into
        a literal prefix, comma-joined items and a literal suffix.
        """
        head = [
            "HTTP/1.1 200 OK",
            "Content-Type: application/json",
            "Transfer-Encoding: chunked",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(_chunk(b'{"results":['))
        await writer.drain()
        first = True
        async for item in stream:
            piece = dumps(item).encode("utf-8")
            if not first:
                piece = b"," + piece
            first = False
            writer.write(_chunk(piece))
            await writer.drain()
        writer.write(_chunk(b'],"status":"ok"}') + b"0\r\n\r\n")
        await writer.drain()


# ---------------------------------------------------------------------- #
# Entry points
# ---------------------------------------------------------------------- #


def serve_async(
    *,
    host: str = "127.0.0.1",
    port: int = 8423,
    max_workers: int = 4,
    queue_size: int = 64,
    cache_size: int = 1024,
    cache_dir: str | None = None,
    default_timeout: float | None = None,
    degrade_on_timeout: bool = False,
    batch_window_ms: float = 2.0,
    batch_max: int = 32,
    live_dir: str | None = None,
    live_fsync: bool = True,
    live_peers: Sequence[str] = (),
    live_checkpoint_interval: int = 0,
    live_retention: float | None = None,
    verbose: bool = False,
) -> int:
    """Blocking asyncio server loop behind ``repro serve --async``.

    Same lifecycle contract as the threaded :func:`repro.service.http.serve`:
    the listening line is printed once the port is bound, SIGTERM/Ctrl-C
    trigger the graceful drain (readiness drops, in-flight jobs finish,
    the disk cache flushes) and ``drained cleanly`` is printed on the way
    out.  ``batch_window_ms`` / ``batch_max`` tune the micro-batcher;
    ``batch_window_ms=0`` (or ``batch_max=1``) disables grouping.
    """
    service = SchedulingService(
        max_workers=max_workers,
        queue_size=queue_size,
        cache_size=cache_size,
        cache_dir=cache_dir,
        default_timeout=default_timeout,
        degrade_on_timeout=degrade_on_timeout,
        live_dir=live_dir,
        live_fsync=live_fsync,
        live_node=f"{host}:{port}",
        live_peers=[HttpPeer(url) for url in live_peers],
        live_checkpoint_interval=live_checkpoint_interval,
        live_retention=live_retention,
    )

    async def _main() -> int:
        core = AsyncServiceCore(
            service,
            max_workers=max_workers,
            queue_size=queue_size,
            default_timeout=default_timeout,
            batch_window=batch_window_ms / 1000.0,
            batch_max=batch_max,
        )
        await core.start()
        handler = AsyncServiceServer(core, verbose=verbose)
        server = await asyncio.start_server(handler.handle, host, port)
        bound_host, bound_port = server.sockets[0].getsockname()[:2]
        print(
            f"repro.service listening on http://{bound_host}:{bound_port} "
            f"(workers={max_workers}, queue={queue_size}, cache={cache_size}"
            + (f", cache_dir={cache_dir}" if cache_dir else "")
            + (f", live_dir={live_dir}" if live_dir else "")
            + (f", live_peers={len(live_peers)}" if live_peers else "")
            + ("" if live_fsync else ", live_fsync=off (UNSAFE)")
            + (", degrade_on_timeout" if degrade_on_timeout else "")
            + f", async, batch_window_ms={batch_window_ms:g}, batch_max={batch_max}"
            + ")",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, ValueError):
                pass  # non-unix loop or embedded use; rely on KeyboardInterrupt
        try:
            await stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            await core.drain()
            await core.aclose()
            print("repro.service drained cleanly", flush=True)
        return 0

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:
        return 0


class BackgroundAsyncServer:
    """An async node on a daemon thread, for tests and benchmarks.

    Binds an ephemeral port, exposes :attr:`base_url` and the live
    :attr:`core`, and tears the loop down on :meth:`stop`.  The wrapped
    service is *not* closed — the caller owns it.
    """

    def __init__(self, service: SchedulingService, **core_kwargs: Any) -> None:
        self.service = service
        self._core_kwargs = core_kwargs
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self.core: AsyncServiceCore | None = None
        self.port: int | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-aio-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise ServiceError("async server failed to start within 10s")
        if self._failure is not None:
            raise ServiceError(
                f"async server failed to start: {self._failure}"
            ) from self._failure

    @property
    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: B036  # lint: ignore[RS602] - raised by starter
            self._failure = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.core = AsyncServiceCore(self.service, **self._core_kwargs)
        await self.core.start()
        handler = AsyncServiceServer(self.core)
        server = await asyncio.start_server(handler.handle, "127.0.0.1", 0)
        self.port = server.sockets[0].getsockname()[1]
        self._stop = asyncio.Event()
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            await self.core.aclose()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10.0)

    def __enter__(self) -> "BackgroundAsyncServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
