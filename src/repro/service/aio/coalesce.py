"""Single-flight coalescing: one in-flight computation per request key.

The first caller for a key (the *leader*) starts the computation as a
task in the keyed flight table; every caller that arrives while it is
pending (a *follower*) awaits the same task.  Waiters are isolated from
each other by :func:`asyncio.shield`:

* a follower timing out or being cancelled never cancels the underlying
  solve while other waiters remain parked on it;
* only when the **last** waiter abandons a still-pending flight is the
  task cancelled — nobody wants the answer any more, so the slot is
  released (a solve already running on a pool thread still runs to
  completion and populates the cache; a queued one is skipped).

Cache interaction is write-once by construction: exactly one flight per
key exists at a time, and only the leader's job writes the result cache.
"""

from __future__ import annotations

import asyncio
from collections.abc import Awaitable, Callable, Hashable
from typing import Any

__all__ = ["SingleFlight"]


class _Flight:
    """One in-flight computation and the number of parked waiters."""

    __slots__ = ("task", "waiters")

    def __init__(self, task: "asyncio.Task[Any]") -> None:
        self.task = task
        self.waiters = 0


class SingleFlight:
    """A keyed future table enforcing at most one in-flight run per key."""

    def __init__(self) -> None:
        self._flights: dict[Hashable, _Flight] = {}
        #: Followers that joined an existing flight (the ``coalesced``
        #: counter on ``/v1/stats``): each one is a solver run saved.
        self.coalesced = 0
        #: Flights started (leaders); ``coalesced / flights_started`` is
        #: the duplication factor of the traffic mix.
        self.flights_started = 0

    def __len__(self) -> int:
        """Currently in-flight keys (for stats and tests)."""
        return len(self._flights)

    async def run(
        self,
        key: Hashable,
        start: Callable[[], Awaitable[Any]],
        *,
        timeout: float | None = None,
    ) -> tuple[Any, bool]:
        """Await the flight for ``key``, starting one when absent.

        Returns ``(result, follower)`` where ``follower`` is ``True``
        when this caller joined a flight some earlier caller started.
        ``timeout`` bounds *this waiter's* wait only: on expiry it
        raises :class:`TimeoutError` while the flight keeps running for
        the remaining waiters (per-waiter timeout semantics).
        """
        flight = self._flights.get(key)
        follower = flight is not None
        if flight is None:
            task = asyncio.ensure_future(start())
            flight = _Flight(task)
            self._flights[key] = flight
            self.flights_started += 1
            task.add_done_callback(lambda done: self._on_done(key, flight, done))
        else:
            self.coalesced += 1
        flight.waiters += 1
        try:
            if timeout is None:
                return await asyncio.shield(flight.task), follower
            return (
                await asyncio.wait_for(asyncio.shield(flight.task), timeout),
                follower,
            )
        finally:
            flight.waiters -= 1
            if flight.waiters == 0 and not flight.task.done():
                # Last waiter gone (timed out or cancelled) with the
                # flight still pending: cancel it and drop the table
                # entry so a later request starts fresh.
                flight.task.cancel()
                self._discard(key, flight)

    def _on_done(self, key: Hashable, flight: _Flight, task: "asyncio.Task[Any]") -> None:
        self._discard(key, flight)
        if not task.cancelled():
            # Consume the outcome: every waiter may have timed out or been
            # cancelled before the flight finished, and an unobserved task
            # exception would otherwise be logged at teardown.
            task.exception()

    def _discard(self, key: Hashable, flight: _Flight) -> None:
        # Guard on identity: a fresh flight may already occupy the key by
        # the time a done/cancel callback fires.
        if self._flights.get(key) is flight:
            del self._flights[key]
