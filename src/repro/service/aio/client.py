"""Asyncio client for the service endpoints (threaded or async nodes).

Speaks the same wire protocol as the blocking
:class:`~repro.service.http.ServiceClient` — canonical-JSON bodies,
error statuses returned as decoded bodies rather than raised, transport
failures as :class:`~repro.exceptions.TransientServiceError` — but on
asyncio streams, so a closed-loop benchmark or router can keep hundreds
of requests in flight from one thread.  Handles both framings the
servers emit: ``Content-Length`` bodies and the async front-end's
chunked ``/v1/solve_batch`` stream.

With ``retry=RetryPolicy(...)`` the client retries transport failures
and retryable error kinds (the same
:attr:`~repro.service.http.ServiceClient.RETRYABLE_KINDS` set) through
:func:`~repro.service.aio.resilience.retry_async`, honouring
``Retry-After``.
"""

from __future__ import annotations

import asyncio
from typing import Any
from urllib.parse import urlsplit

from repro.exceptions import ServiceError, TransientServiceError
from repro.service.aio.resilience import retry_async
from repro.service.codec import dumps, loads
from repro.service.http import ServiceClient, _parse_retry_after
from repro.service.resilience import RetryPolicy

__all__ = ["AsyncServiceClient"]


class AsyncServiceClient:
    """Minimal asyncio HTTP/1.1 client for the service endpoints.

    One connection per request (``Connection: close``), matching the
    stdlib client's behaviour; the point of the async client is
    *concurrency across requests*, which a closed-loop caller gets by
    running many coroutines at once.
    """

    RETRYABLE_KINDS = ServiceClient.RETRYABLE_KINDS

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        parts = urlsplit(self.base_url)
        if parts.scheme != "http" or parts.hostname is None:
            raise ServiceError(f"async client needs an http:// URL, got {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port if parts.port is not None else 80
        self.timeout = timeout
        self.retry = retry

    # ------------------------------------------------------------------ #
    # Wire protocol
    # ------------------------------------------------------------------ #

    async def _round_trip(
        self, path: str, payload: dict[str, Any] | None
    ) -> tuple[int, dict[str, str], bytes]:
        method = "GET" if payload is None else "POST"
        body = b"" if payload is None else dumps(payload).encode("utf-8")
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Connection: close",
        ]
        if body:
            head.append("Content-Type: application/json")
            head.append(f"Content-Length: {len(body)}")
        request = ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(request)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ServiceError(
                    f"{self.base_url}{path} answered a malformed status line "
                    f"{status_line!r}"
                )
            status = int(parts[1])
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n"):
                    break
                if not line:
                    raise asyncio.IncompleteReadError(b"", None)
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            raw = await self._read_body(reader, headers)
            return status, headers, raw
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_body(
        reader: asyncio.StreamReader, headers: dict[str, str]
    ) -> bytes:
        if headers.get("transfer-encoding", "").lower() == "chunked":
            pieces: list[bytes] = []
            while True:
                size_line = await reader.readline()
                try:
                    size = int(size_line.strip().split(b";")[0], 16)
                except ValueError:
                    raise asyncio.IncompleteReadError(size_line, None) from None
                if size == 0:
                    await reader.readline()  # trailing CRLF after last chunk
                    return b"".join(pieces)
                pieces.append(await reader.readexactly(size))
                await reader.readexactly(2)  # chunk-terminating CRLF
        length = headers.get("content-length")
        if length is not None:
            return await reader.readexactly(int(length))
        return await reader.read()  # Connection: close framing

    async def _request_once(
        self, path: str, payload: dict[str, Any] | None = None
    ) -> tuple[dict[str, Any], float | None]:
        """One HTTP round-trip → ``(decoded body, Retry-After seconds)``."""
        url = f"{self.base_url}{path}"
        try:
            status, headers, raw = await asyncio.wait_for(
                self._round_trip(path, payload), self.timeout
            )
        except (TimeoutError, asyncio.TimeoutError) as exc:
            raise TransientServiceError(f"request to {url} timed out") from exc
        except asyncio.IncompleteReadError as exc:
            raise TransientServiceError(
                f"connection to {url} failed mid-response: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        except (ConnectionError, OSError) as exc:
            raise TransientServiceError(f"cannot reach {url}: {exc}") from exc
        retry_after = _parse_retry_after(headers.get("retry-after"))
        try:
            return loads(raw), retry_after
        except ServiceError:
            if status >= 500:
                raise TransientServiceError(
                    f"{url} answered HTTP {status} with a non-JSON body",
                    retry_after=retry_after,
                    status=status,
                ) from None
            raise ServiceError(
                f"{url} answered HTTP {status} with a non-JSON body"
            ) from None

    async def _request(
        self, path: str, payload: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        if self.retry is None:
            body, _hint = await self._request_once(path, payload)
            return body

        async def attempt(_n: int) -> dict[str, Any]:
            body, retry_after = await self._request_once(path, payload)
            if (
                body.get("status") == "error"
                and body.get("error", {}).get("kind") in self.RETRYABLE_KINDS
            ):
                raise TransientServiceError(
                    str(body["error"].get("message", "service unavailable")),
                    retry_after=retry_after if retry_after is not None else 1.0,
                )
            return body

        return await retry_async(self.retry, attempt)

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #

    async def healthz(self) -> dict[str, Any]:
        return await self._request("/v1/healthz")

    async def stats(self) -> dict[str, Any]:
        return await self._request("/v1/stats")

    async def solve(self, payload: dict[str, Any]) -> dict[str, Any]:
        return await self._request("/v1/solve", payload)

    async def solve_batch(self, payloads: list[dict[str, Any]]) -> dict[str, Any]:
        return await self._request("/v1/solve_batch", {"requests": payloads})

    async def workflow_status(self, workflow_id: str) -> dict[str, Any]:
        return await self._request(f"/v1/workflows/{workflow_id}")
