"""Chaos parity smoke test (the CI ``chaos-smoke`` job).

Builds the full fabric as real moving parts — two ``repro serve``
subprocesses, a fault-injecting :class:`~repro.service.chaos.ChaosProxy`
in front of each, and the shard router over the proxies — then pushes a
batch of distinct problems through the router while the chaos layer
injects seeded latency, 502s and dropped connections, and one node is
SIGKILLed mid-batch and restarted a few requests later.

Pass criteria (exit 0):

* **zero client-visible errors** — every response has ``status == "ok"``
  despite ~30 % of proxied requests faulting and one node dying;
* **byte-identical parity** — every non-degraded schedule payload equals
  the one computed fault-free in-process (canonical codecs + retries
  must not change answers, only availability);
* the aggregated router ``/v1/stats`` (breaker transitions, retry and
  failover counts, per-node cache stats) is written to ``--out`` for the
  CI artifact upload.

Usage::

    python -m repro.service.chaos_smoke --out chaos_stats.json
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import time
from collections.abc import Sequence
from typing import Any

from repro.core.serialize import problem_to_dict
from repro.exceptions import ReproError, ServiceError
from repro.service.chaos import ChaosConfig, ChaosProxy
from repro.service.codec import dumps, encode_schedule
from repro.service.http import ServiceClient
from repro.service.resilience import CircuitBreaker, RetryPolicy
from repro.service.router import NodeHandle, ShardRouter, make_router_server

__all__ = ["main"]

_LISTEN_RE = re.compile(r"listening on http://([\w.\-]+):(\d+)")


def _fail(message: str) -> int:
    print(f"CHAOS SMOKE FAIL: {message}", file=sys.stderr)
    return 1


def _start_node(port: int = 0, *, extra: Sequence[str] = ()) -> tuple[Any, int]:
    """Launch one ``repro serve`` subprocess; returns (popen, bound port)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port), *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    match = _LISTEN_RE.search(line)
    if not match:
        proc.kill()
        raise ServiceError(f"node did not announce a port (got {line!r})")
    return proc, int(match.group(2))


def _wait_healthy(url: str, timeout: float) -> bool:
    client = ServiceClient(url, timeout=5.0)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            client.healthz()
            return True
        except ServiceError:
            time.sleep(0.1)
    return False


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.service.chaos_smoke")
    parser.add_argument("--out", default="chaos_stats.json")
    parser.add_argument("--requests", type=int, default=50)
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument("--latency-prob", type=float, default=0.30)
    parser.add_argument("--error-prob", type=float, default=0.15)
    parser.add_argument("--drop-prob", type=float, default=0.15)
    parser.add_argument("--kill-at", type=int, default=20)
    parser.add_argument("--restart-at", type=int, default=35)
    parser.add_argument("--startup-timeout", type=float, default=30.0)
    args = parser.parse_args(argv)

    import numpy as np

    from repro.algorithms import get_scheduler
    from repro.service.app import DEFAULT_ALGORITHM
    from repro.workloads.generator import generate_problem

    # ---------------------------------------------------------------- #
    # Workload: N distinct problems (distinct problem_hash => the batch
    # spreads over both shards) + their fault-free expected schedules.
    # ---------------------------------------------------------------- #
    scheduler = get_scheduler(DEFAULT_ALGORITHM)
    requests: list[dict[str, Any]] = []
    expected: list[str] = []
    for i in range(args.requests):
        problem = generate_problem(
            (10, 17, 4), np.random.default_rng(args.seed + i)
        )
        lo, hi = problem.budget_range()
        budget = (lo + hi) / 2.0
        requests.append(
            {"problem": problem_to_dict(problem), "budget": budget}
        )
        result = scheduler.solve(problem, budget)
        expected.append(dumps(encode_schedule(result.schedule, problem.catalog)))

    # ---------------------------------------------------------------- #
    # Fleet: 2 nodes, 2 chaos proxies, 1 router (in-process HTTP).
    # ---------------------------------------------------------------- #
    node_a = node_b = None
    proxies: list[ChaosProxy] = []
    server = None
    try:
        node_a, port_a = _start_node()
        node_b, port_b = _start_node()
        for port in (port_a, port_b):
            if not _wait_healthy(
                f"http://127.0.0.1:{port}", args.startup_timeout
            ):
                return _fail(f"node on port {port} never became healthy")

        config = ChaosConfig(
            seed=args.seed,
            latency_prob=args.latency_prob,
            latency_min=0.01,
            latency_max=0.10,
            error_prob=args.error_prob,
            drop_prob=args.drop_prob,
        )
        proxies = [
            ChaosProxy(f"http://127.0.0.1:{port_a}", config).start(),
            ChaosProxy(
                f"http://127.0.0.1:{port_b}",
                ChaosConfig(
                    seed=args.seed + 1,
                    latency_prob=args.latency_prob,
                    latency_min=0.01,
                    latency_max=0.10,
                    error_prob=args.error_prob,
                    drop_prob=args.drop_prob,
                ),
            ).start(),
        ]

        router = ShardRouter(
            [
                NodeHandle(
                    proxy.base_url,
                    timeout=15.0,
                    breaker=CircuitBreaker(
                        failure_threshold=3, reset_timeout=1.0
                    ),
                )
                for proxy in proxies
            ],
            retry_policy=RetryPolicy(
                max_retries=8, base_delay=0.05, max_delay=0.5
            ),
            hedge_delay=0.25,
        )
        server = make_router_server(router)
        import threading

        threading.Thread(target=server.serve_forever, daemon=True).start()
        router_port = server.server_address[1]
        # The client retries 503s honouring Retry-After (the breaker-reset
        # hint), so a window where every breaker is open — node B dead,
        # node A mid-fault-burst — heals instead of surfacing an error.
        client = ServiceClient(
            f"http://127.0.0.1:{router_port}",
            timeout=60.0,
            retry=RetryPolicy(max_retries=6, base_delay=0.25, max_delay=2.0),
        )

        # ------------------------------------------------------------ #
        # The batch, with a node murder mid-flight.
        # ------------------------------------------------------------ #
        errors: list[str] = []
        mismatches: list[str] = []
        degraded = 0
        for i, request in enumerate(requests):
            if i == args.kill_at:
                node_b.kill()
                node_b.wait(timeout=10)
                print(f"[{i}] killed node B (port {port_b})", flush=True)
            if i == args.restart_at:
                node_b, _ = _start_node(port_b)
                if not _wait_healthy(
                    f"http://127.0.0.1:{port_b}", args.startup_timeout
                ):
                    return _fail("restarted node never became healthy")
                print(f"[{i}] restarted node B (port {port_b})", flush=True)
            try:
                response = client.solve(request)
            except ReproError as exc:
                errors.append(f"request {i}: {type(exc).__name__}: {exc}")
                continue
            if response.get("status") != "ok":
                errors.append(f"request {i}: error body {response.get('error')}")
                continue
            if response.get("degraded"):
                degraded += 1
                continue
            got = dumps(response["result"]["schedule"])
            if got != expected[i]:
                mismatches.append(
                    f"request {i}:\n  expected {expected[i]}\n  got      {got}"
                )

        stats = router.aggregated_stats()
        stats["chaos"] = {
            f"proxy_{label}": proxy.stats()
            for label, proxy in zip("ab", proxies)
        }
        with open(args.out, "w") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)

        if errors:
            return _fail(
                f"{len(errors)} client-visible error(s):\n  " + "\n  ".join(errors)
            )
        if mismatches:
            return _fail(
                f"{len(mismatches)} schedule parity mismatch(es):\n"
                + "\n".join(mismatches)
            )
        injected = sum(
            p["injected_errors"] + p["injected_drops"] for p in stats["chaos"].values()
        )
        if injected == 0:
            return _fail(
                "chaos layer injected zero faults - the run proved nothing; "
                "raise --error-prob/--drop-prob"
            )
        rstats = stats["router"]
        print(
            f"CHAOS SMOKE OK: {len(requests)} requests, 0 client-visible "
            f"errors, {degraded} degraded, parity byte-identical; "
            f"{injected} faults injected, retries={rstats['retries']}, "
            f"failovers={rstats['failovers']}, hedges={rstats['hedges']}; "
            f"stats written to {args.out}"
        )
        return 0
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
        for proxy in proxies:
            proxy.stop()
        for node in (node_a, node_b):
            if node is None:
                continue
            node.terminate()
            try:
                node.wait(timeout=10)
            except subprocess.TimeoutExpired:
                node.kill()


if __name__ == "__main__":  # pragma: no cover - CI entry point
    sys.exit(main())
