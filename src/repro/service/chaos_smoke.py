"""Chaos parity smoke test (the CI ``chaos-smoke`` job).

Builds the full fabric as real moving parts — two ``repro serve``
subprocesses, a fault-injecting :class:`~repro.service.chaos.ChaosProxy`
in front of each, and the shard router over the proxies — then pushes a
batch of distinct problems through the router while the chaos layer
injects seeded latency, 502s and dropped connections, and one node is
SIGKILLed mid-batch and restarted a few requests later.

Pass criteria (exit 0):

* **zero client-visible errors** — every response has ``status == "ok"``
  despite ~30 % of proxied requests faulting and one node dying;
* **byte-identical parity** — every non-degraded schedule payload equals
  the one computed fault-free in-process (canonical codecs + retries
  must not change answers, only availability);
* the aggregated router ``/v1/stats`` (breaker transitions, retry and
  failover counts, per-node cache stats) is written to ``--out`` for the
  CI artifact upload.

A second **live phase** then streams a stateful workflow's event
sequence through the router.  The nodes are *federated*: each has its
own ``--live-dir`` and replicates write-through to the other via
``--live-peer``, so surviving a node death means surviving on the
replica, not on a shared disk.  Mid-stream the previously untouched
node is SIGKILLed (and later restarted), and after the restart the
workflow's on-disk log is **corrupted in place** on the shard owner.
The fleet must absorb both: the router's retry/failover sweep plus the
append-before-apply event log land every event exactly once, the
corrupted log is quarantined and rebuilt from the peer replica (or
fenced off and reset-pushed by the failover writer), and the final
``last_seq``/``revision`` match a fault-free in-process reference run —
with zero client-visible errors throughout.

A third **async-core phase** boots a separate fleet of ``repro serve
--async`` nodes (single-flight coalescing + micro-batched solving)
behind fresh chaos proxies and fires duplicate-heavy concurrent bursts
while one node is SIGKILLed mid-phase and restarted.  Pass criteria:
zero client-visible errors, byte parity of every non-degraded schedule
with a fault-free in-process solve, and fleet-wide ``aio.coalesced``
counters > 0 — duplicate suppression must survive the kill/restart.

Usage::

    python -m repro.service.chaos_smoke --out chaos_stats.json
"""

from __future__ import annotations

import argparse
import json
import re
import shutil
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from collections.abc import Sequence
from typing import Any

from repro.core.serialize import problem_to_dict
from repro.exceptions import ReproError, ServiceError
from repro.service.chaos import ChaosConfig, ChaosProxy
from repro.service.codec import dumps, encode_schedule
from repro.service.http import ServiceClient
from repro.service.resilience import CircuitBreaker, RetryPolicy
from repro.service.router import NodeHandle, ShardRouter, make_router_server

__all__ = ["main"]

_LISTEN_RE = re.compile(r"listening on http://([\w.\-]+):(\d+)")


def _fail(message: str) -> int:
    print(f"CHAOS SMOKE FAIL: {message}", file=sys.stderr)
    return 1


def _free_port() -> int:
    """Reserve an ephemeral port for a node that must know its peer's
    address before either process starts (bidirectional ``--live-peer``
    wiring needs both URLs up front)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _start_node(port: int = 0, *, extra: Sequence[str] = ()) -> tuple[Any, int]:
    """Launch one ``repro serve`` subprocess; returns (popen, bound port)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port), *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    match = _LISTEN_RE.search(line)
    if not match:
        proc.kill()
        raise ServiceError(f"node did not announce a port (got {line!r})")
    return proc, int(match.group(2))


def _live_event_stream(problem, budget: float) -> list[dict[str, Any]]:
    """A deterministic full-run event list: one top-up, one late module."""
    from repro.algorithms import get_scheduler
    from repro.service.app import DEFAULT_ALGORITHM

    plan = get_scheduler(DEFAULT_ALGORITHM).solve(problem, budget)
    workflow = problem.workflow
    done: set[str] = set()
    order: list[str] = []
    names = list(workflow.module_names)
    while len(order) < len(names):
        for name in names:
            if name not in done and all(
                p in done for p in workflow.predecessors(name)
            ):
                order.append(name)
                done.add(name)
    events: list[dict[str, Any]] = [{"seq": 1, "type": "topup", "amount": 0.1 * budget}]
    seq = 2
    late = next(n for n in order if workflow.module(n).is_schedulable)
    for name in order:
        module = workflow.module(name)
        if module.is_schedulable:
            duration = problem.matrices.time(name, plan.schedule[name])
        else:
            duration = float(module.fixed_time or 0.0)
        if name == late:
            duration *= 1.5
        events.append({"seq": seq, "type": "started", "module": name})
        events.append(
            {"seq": seq + 1, "type": "completed", "module": name, "duration": duration}
        )
        seq += 2
    return events


def _async_core_phase(args: argparse.Namespace) -> tuple[list[str], dict[str, Any]]:
    """Phase 3: duplicate-heavy bursts against two **async** nodes.

    Boots a second fleet with ``repro serve --async`` (single-flight
    coalescing + micro-batched solving) behind fresh chaos proxies and a
    fresh router, then fires rounds of *concurrent identical* requests —
    the coalescer's worst-case traffic — while node B is SIGKILLed
    mid-phase and restarted a few rounds later.  Pass criteria mirror
    the threaded phase (zero client-visible errors, every non-degraded
    schedule byte-identical to a fault-free in-process solve) plus one
    async-specific bar: the fleet's ``aio.coalesced`` counters must come
    back positive, proving duplicate suppression stayed live through
    kill and restart.
    """
    from concurrent.futures import ThreadPoolExecutor

    import numpy as np

    from repro.algorithms import get_scheduler
    from repro.service.app import DEFAULT_ALGORITHM
    from repro.workloads.generator import generate_problem

    rounds, burst = 10, 8
    kill_at, restart_at = 4, 6
    scheduler = get_scheduler(DEFAULT_ALGORITHM)
    workload: list[tuple[dict[str, Any], str]] = []
    for i in range(rounds):
        problem = generate_problem(
            (30, 80, 6), np.random.default_rng(args.seed + 1000 + i)
        )
        lo, hi = problem.budget_range()
        budget = (lo + hi) / 2.0
        result = scheduler.solve(problem, budget)
        workload.append(
            (
                {"problem": problem_to_dict(problem), "budget": budget},
                dumps(encode_schedule(result.schedule, problem.catalog)),
            )
        )

    errors: list[str] = []
    stats: dict[str, Any] = {"requests": rounds * burst}
    node_a = node_b = None
    proxies: list[ChaosProxy] = []
    server = None
    extra = ("--async", "--batch-window-ms", "5", "--batch-max", "16")
    try:
        node_a, port_a = _start_node(extra=extra)
        node_b, port_b = _start_node(extra=extra)
        for port in (port_a, port_b):
            if not _wait_healthy(
                f"http://127.0.0.1:{port}", args.startup_timeout
            ):
                errors.append(f"async node on port {port} never became healthy")
                return errors, stats
        proxies = [
            ChaosProxy(
                f"http://127.0.0.1:{port}",
                ChaosConfig(
                    seed=args.seed + 100 + n,
                    latency_prob=args.latency_prob,
                    latency_min=0.01,
                    latency_max=0.10,
                    error_prob=args.error_prob,
                    drop_prob=args.drop_prob,
                ),
            ).start()
            for n, port in enumerate((port_a, port_b))
        ]
        router = ShardRouter(
            [
                NodeHandle(
                    proxy.base_url,
                    timeout=15.0,
                    breaker=CircuitBreaker(failure_threshold=3, reset_timeout=1.0),
                )
                for proxy in proxies
            ],
            retry_policy=RetryPolicy(max_retries=8, base_delay=0.05, max_delay=0.5),
            hedge_delay=0.25,
        )
        server = make_router_server(router)
        import threading

        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}",
            timeout=60.0,
            retry=RetryPolicy(max_retries=6, base_delay=0.25, max_delay=2.0),
        )

        degraded = 0
        with ThreadPoolExecutor(max_workers=burst) as pool:
            for i, (request, want) in enumerate(workload):
                if i == kill_at:
                    node_b.kill()
                    node_b.wait(timeout=10)
                    print(f"[async {i}] killed node B (port {port_b})", flush=True)
                if i == restart_at:
                    node_b, _ = _start_node(port_b, extra=extra)
                    if not _wait_healthy(
                        f"http://127.0.0.1:{port_b}", args.startup_timeout
                    ):
                        errors.append("restarted async node never became healthy")
                        return errors, stats
                    print(
                        f"[async {i}] restarted node B (port {port_b})", flush=True
                    )
                outcomes = list(
                    pool.map(client.solve, [dict(request) for _ in range(burst)])
                )
                for response in outcomes:
                    if response.get("status") != "ok":
                        errors.append(
                            f"async round {i}: error body {response.get('error')}"
                        )
                    elif response.get("degraded"):
                        degraded += 1
                    elif dumps(response["result"]["schedule"]) != want:
                        errors.append(
                            f"async round {i}: schedule diverges from the "
                            "fault-free reference"
                        )
        stats["degraded"] = degraded

        # Coalescing proof: counters from the *live* nodes (node B was
        # restarted, so its counters only cover the post-restart bursts).
        coalesced = batch_windows = 0
        for port in (port_a, port_b):
            body = ServiceClient(f"http://127.0.0.1:{port}", timeout=10.0).stats()
            aio = body.get("stats", {}).get("aio", {})
            coalesced += aio.get("coalesced", 0)
            batch_windows += aio.get("batch_windows", 0)
        stats["coalesced"] = coalesced
        stats["batch_windows"] = batch_windows
        if coalesced == 0:
            errors.append(
                "async nodes never coalesced a duplicate - single-flight "
                "suppression did not engage under duplicate-heavy bursts"
            )
        stats["chaos"] = {
            f"proxy_{label}": proxy.stats()
            for label, proxy in zip("ab", proxies)
        }
        return errors, stats
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
        for proxy in proxies:
            proxy.stop()
        for node in (node_a, node_b):
            if node is None:
                continue
            node.terminate()
            try:
                node.wait(timeout=10)
            except subprocess.TimeoutExpired:
                node.kill()


def _wait_healthy(url: str, timeout: float) -> bool:
    client = ServiceClient(url, timeout=5.0)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            client.healthz()
            return True
        except ServiceError:
            time.sleep(0.1)
    return False


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.service.chaos_smoke")
    parser.add_argument("--out", default="chaos_stats.json")
    parser.add_argument("--requests", type=int, default=50)
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument("--latency-prob", type=float, default=0.30)
    parser.add_argument("--error-prob", type=float, default=0.15)
    parser.add_argument("--drop-prob", type=float, default=0.15)
    parser.add_argument("--kill-at", type=int, default=20)
    parser.add_argument("--restart-at", type=int, default=35)
    parser.add_argument("--startup-timeout", type=float, default=30.0)
    args = parser.parse_args(argv)

    import numpy as np

    from repro.algorithms import get_scheduler
    from repro.service.app import DEFAULT_ALGORITHM
    from repro.workloads.generator import generate_problem

    # ---------------------------------------------------------------- #
    # Workload: N distinct problems (distinct problem_hash => the batch
    # spreads over both shards) + their fault-free expected schedules.
    # ---------------------------------------------------------------- #
    scheduler = get_scheduler(DEFAULT_ALGORITHM)
    requests: list[dict[str, Any]] = []
    expected: list[str] = []
    for i in range(args.requests):
        problem = generate_problem(
            (10, 17, 4), np.random.default_rng(args.seed + i)
        )
        lo, hi = problem.budget_range()
        budget = (lo + hi) / 2.0
        requests.append(
            {"problem": problem_to_dict(problem), "budget": budget}
        )
        result = scheduler.solve(problem, budget)
        expected.append(dumps(encode_schedule(result.schedule, problem.catalog)))

    # ---------------------------------------------------------------- #
    # Fleet: 2 nodes, 2 chaos proxies, 1 router (in-process HTTP).
    # ---------------------------------------------------------------- #
    node_a = node_b = None
    proxies: list[ChaosProxy] = []
    server = None
    live_root = tempfile.mkdtemp(prefix="chaos-live-")
    live_dirs = [Path(live_root) / "a", Path(live_root) / "b"]
    # Federated topology: each node owns its live_dir and pushes every
    # log record to the other, so failover survives on the replica.
    port_a, port_b = _free_port(), _free_port()
    args_a = (
        "--live-dir", str(live_dirs[0]),
        "--live-peer", f"http://127.0.0.1:{port_b}",
    )
    args_b = (
        "--live-dir", str(live_dirs[1]),
        "--live-peer", f"http://127.0.0.1:{port_a}",
    )
    try:
        node_a, port_a = _start_node(port_a, extra=args_a)
        node_b, port_b = _start_node(port_b, extra=args_b)
        for port in (port_a, port_b):
            if not _wait_healthy(
                f"http://127.0.0.1:{port}", args.startup_timeout
            ):
                return _fail(f"node on port {port} never became healthy")

        config = ChaosConfig(
            seed=args.seed,
            latency_prob=args.latency_prob,
            latency_min=0.01,
            latency_max=0.10,
            error_prob=args.error_prob,
            drop_prob=args.drop_prob,
        )
        proxies = [
            ChaosProxy(f"http://127.0.0.1:{port_a}", config).start(),
            ChaosProxy(
                f"http://127.0.0.1:{port_b}",
                ChaosConfig(
                    seed=args.seed + 1,
                    latency_prob=args.latency_prob,
                    latency_min=0.01,
                    latency_max=0.10,
                    error_prob=args.error_prob,
                    drop_prob=args.drop_prob,
                ),
            ).start(),
        ]

        router = ShardRouter(
            [
                NodeHandle(
                    proxy.base_url,
                    timeout=15.0,
                    breaker=CircuitBreaker(
                        failure_threshold=3, reset_timeout=1.0
                    ),
                )
                for proxy in proxies
            ],
            retry_policy=RetryPolicy(
                max_retries=8, base_delay=0.05, max_delay=0.5
            ),
            hedge_delay=0.25,
        )
        server = make_router_server(router)
        import threading

        threading.Thread(target=server.serve_forever, daemon=True).start()
        router_port = server.server_address[1]
        # The client retries 503s honouring Retry-After (the breaker-reset
        # hint), so a window where every breaker is open — node B dead,
        # node A mid-fault-burst — heals instead of surfacing an error.
        client = ServiceClient(
            f"http://127.0.0.1:{router_port}",
            timeout=60.0,
            retry=RetryPolicy(max_retries=6, base_delay=0.25, max_delay=2.0),
        )

        # ------------------------------------------------------------ #
        # The batch, with a node murder mid-flight.
        # ------------------------------------------------------------ #
        errors: list[str] = []
        mismatches: list[str] = []
        degraded = 0
        for i, request in enumerate(requests):
            if i == args.kill_at:
                node_b.kill()
                node_b.wait(timeout=10)
                print(f"[{i}] killed node B (port {port_b})", flush=True)
            if i == args.restart_at:
                node_b, _ = _start_node(port_b, extra=args_b)
                if not _wait_healthy(
                    f"http://127.0.0.1:{port_b}", args.startup_timeout
                ):
                    return _fail("restarted node never became healthy")
                print(f"[{i}] restarted node B (port {port_b})", flush=True)
            try:
                response = client.solve(request)
            except ReproError as exc:
                errors.append(f"request {i}: {type(exc).__name__}: {exc}")
                continue
            if response.get("status") != "ok":
                errors.append(f"request {i}: error body {response.get('error')}")
                continue
            if response.get("degraded"):
                degraded += 1
                continue
            got = dumps(response["result"]["schedule"])
            if got != expected[i]:
                mismatches.append(
                    f"request {i}:\n  expected {expected[i]}\n  got      {got}"
                )

        # ------------------------------------------------------------ #
        # Live phase: stream a stateful workflow through the router and
        # SIGKILL the (so far unharmed) node A halfway through.
        # ------------------------------------------------------------ #
        from repro.live.store import LiveWorkflowManager

        live_problem = generate_problem(
            (10, 17, 4), np.random.default_rng(args.seed)
        )
        lo, hi = live_problem.budget_range()
        live_budget = (lo + hi) / 2.0
        registration = {
            "problem": problem_to_dict(live_problem),
            "budget": live_budget,
        }
        live_events = _live_event_stream(live_problem, live_budget)

        reference = LiveWorkflowManager()
        wid = reference.register(dict(registration))["workflow_id"]
        for event in live_events:
            reference.event(wid, dict(event))
        expected_status = reference.status(wid)

        live_replays = 0
        live_stats: dict[str, Any] = {"events": len(live_events)}
        try:
            body = client.register_workflow(dict(registration))
            if body.get("workflow_id") != wid:
                errors.append(
                    f"live registration routed to id {body.get('workflow_id')!r},"
                    f" expected {wid!r}"
                )
            from repro.service.keys import workflow_id_digest

            owner = router.shard_of(workflow_id_digest(wid))
            kill_at = len(live_events) // 2
            revive_at = kill_at + max(2, len(live_events) // 8)
            corrupt_at = revive_at + max(2, len(live_events) // 8)
            for i, event in enumerate(live_events):
                if i == kill_at:
                    node_a.kill()
                    node_a.wait(timeout=10)
                    print(
                        f"[live {i}] killed node A (port {port_a})", flush=True
                    )
                if i == revive_at:
                    node_a, _ = _start_node(port_a, extra=args_a)
                    if not _wait_healthy(
                        f"http://127.0.0.1:{port_a}", args.startup_timeout
                    ):
                        return _fail("revived node A never became healthy")
                    print(
                        f"[live {i}] restarted node A (port {port_a})",
                        flush=True,
                    )
                if i == corrupt_at:
                    # Bit-rot the shard owner's on-disk log in place.  The
                    # owner must notice (size changed -> fold -> corruption),
                    # then heal from its peer replica — quarantine + pull,
                    # or a 500 the router fails over and the new writer
                    # reset-pushes the good log back.  Either way: no
                    # client-visible error.
                    log = live_dirs[owner] / f"{wid}.jsonl"
                    with open(log, "a") as handle:
                        handle.write("CHAOS BIT ROT - NOT JSON\n")
                    print(
                        f"[live {i}] corrupted {log} on the shard owner",
                        flush=True,
                    )
                ack = client.workflow_event(wid, dict(event))
                if ack.get("status") != "ok":
                    errors.append(
                        f"live event {event['seq']}: error body {ack.get('error')}"
                    )
                elif ack.get("replayed"):
                    live_replays += 1
            status = client.workflow_status(wid)
            live_stats.update(
                replays=live_replays,
                owner="ab"[owner],
                last_seq=status.get("last_seq"),
                revision=status.get("revision"),
                complete=status.get("complete"),
            )
            # The healed fleet must have purged the corruption: the bad
            # line lives on only in a quarantine file, never in a log a
            # node would replay.
            for live_dir in live_dirs:
                log = live_dir / f"{wid}.jsonl"
                if log.exists() and "CHAOS BIT ROT" in log.read_text():
                    errors.append(
                        f"corrupted record still live in {log} - the fleet "
                        "never healed it"
                    )
            live_stats["quarantined"] = sum(
                1
                for live_dir in live_dirs
                for _ in live_dir.glob("*.quarantined")
            )
            if (
                status.get("last_seq") != expected_status["last_seq"]
                or status.get("revision") != expected_status["revision"]
                or not status.get("complete")
            ):
                errors.append(
                    "live failover diverged from the reference run: "
                    f"last_seq={status.get('last_seq')} "
                    f"(want {expected_status['last_seq']}), "
                    f"revision={status.get('revision')} "
                    f"(want {expected_status['revision']}), "
                    f"complete={status.get('complete')}"
                )
        except ReproError as exc:
            errors.append(f"live phase: {type(exc).__name__}: {exc}")

        # -------------------------------------------------------------#
        # Async-core phase: its own fleet of `repro serve --async`
        # nodes, duplicate-heavy bursts, node murder, coalescing gate.
        # -------------------------------------------------------------#
        async_errors, async_stats = _async_core_phase(args)
        errors.extend(async_errors)

        stats = router.aggregated_stats()
        stats["live_phase"] = live_stats
        stats["async_phase"] = async_stats
        stats["chaos"] = {
            f"proxy_{label}": proxy.stats()
            for label, proxy in zip("ab", proxies)
        }
        with open(args.out, "w") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)

        if errors:
            return _fail(
                f"{len(errors)} client-visible error(s):\n  " + "\n  ".join(errors)
            )
        if mismatches:
            return _fail(
                f"{len(mismatches)} schedule parity mismatch(es):\n"
                + "\n".join(mismatches)
            )
        injected = sum(
            p["injected_errors"] + p["injected_drops"] for p in stats["chaos"].values()
        )
        if injected == 0:
            return _fail(
                "chaos layer injected zero faults - the run proved nothing; "
                "raise --error-prob/--drop-prob"
            )
        rstats = stats["router"]
        print(
            f"CHAOS SMOKE OK: {len(requests)} requests, 0 client-visible "
            f"errors, {degraded} degraded, parity byte-identical; "
            f"{injected} faults injected, retries={rstats['retries']}, "
            f"failovers={rstats['failovers']}, hedges={rstats['hedges']}; "
            f"live phase: {live_stats['events']} events, "
            f"{live_replays} replayed, revision {live_stats.get('revision')} "
            f"matches reference, corrupted log healed "
            f"({live_stats.get('quarantined', 0)} quarantined); "
            f"async phase: {async_stats.get('requests', 0)} requests, "
            f"{async_stats.get('coalesced', 0)} coalesced, "
            f"{async_stats.get('batch_windows', 0)} batch windows; "
            f"stats written to {args.out}"
        )
        return 0
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
        for proxy in proxies:
            proxy.stop()
        for node in (node_a, node_b):
            if node is None:
                continue
            node.terminate()
            try:
                node.wait(timeout=10)
            except subprocess.TimeoutExpired:
                node.kill()
        shutil.rmtree(live_root, ignore_errors=True)


if __name__ == "__main__":  # pragma: no cover - CI entry point
    sys.exit(main())
