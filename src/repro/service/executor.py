"""Bounded job executor: worker pool, backpressure, timeouts, job records.

The executor turns the scheduling service into a queueing system with
explicit limits instead of an unbounded thread-per-request free-for-all:

* **Bounded admission** — at most ``queue_size`` jobs may wait; a submit
  against a full queue raises
  :class:`~repro.exceptions.ServiceOverloadedError` immediately (the HTTP
  layer maps it to 503) rather than queueing unboundedly or blocking.
* **Worker pool** — ``max_workers`` daemon threads by default; an opt-in
  process pool (``use_processes=True``) for CPU-bound solve functions
  that need to sidestep the GIL (the job function must be picklable).
* **Per-job timeouts** — a job that does not finish within its timeout
  resolves its future with :class:`~repro.exceptions.ServiceTimeoutError`.
  Thread workers cannot be preempted, so the underlying computation runs
  to completion and its result is discarded; the record notes the
  overrun.
* **Structured records** — every job leaves a :class:`JobRecord` with
  queued/started/finished timestamps, terminal status, and whatever the
  ``annotate`` hook extracted from the result (the scheduling service
  uses it to record the engine that served the request and the cache-hit
  flag), feeding the ``/v1/stats`` latency percentiles.

The record and counter types themselves live in
:mod:`repro.service.jobs` (shared with the asyncio core); they are
re-exported here for compatibility.

Accounting invariants (observable from any thread, at any instant):
admission is atomic — a job is enqueued and counted ``submitted`` under
one lock, so no observer can see its terminal count before its
admission; a rejected submission is counted ``rejected`` only and never
touches ``submitted`` or the active gauge; every admitted job makes
exactly one terminal transition (claimed under the record lock), which
performs the single matching ``active`` decrement.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from collections.abc import Callable, Iterable, Mapping
from concurrent.futures import Future, InvalidStateError, ProcessPoolExecutor
from typing import Any

from repro.exceptions import (
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from repro.service.jobs import JobRecord, new_job_counts, percentile

__all__ = ["JobRecord", "JobExecutor", "percentile"]


class _Job:
    """Internal pairing of a request with its future, record and timer."""

    __slots__ = ("request", "future", "record", "timer", "timeout")

    def __init__(
        self,
        request: Any,
        future: "Future[Any]",
        record: JobRecord,
        timeout: float | None,
    ) -> None:
        self.request = request
        self.future = future
        self.record = record
        self.timer: threading.Timer | None = None
        self.timeout = timeout


class JobExecutor:
    """A bounded worker pool executing ``fn(request)`` jobs.

    Parameters
    ----------
    fn:
        The job function; receives one request object, returns the result
        delivered through the job's future.  Must be picklable when
        ``use_processes=True``.
    max_workers:
        Number of worker threads (or pool processes).
    queue_size:
        Bounded admission: maximum number of *waiting* jobs.  Submissions
        beyond it raise :class:`ServiceOverloadedError`.
    default_timeout:
        Per-job timeout applied when ``submit`` passes none.
    use_processes:
        Run jobs on a :class:`~concurrent.futures.ProcessPoolExecutor`
        instead of threads (opt-in; for pure-CPU solve functions).
    annotate:
        Optional hook mapping a successful result to extra
        :class:`JobRecord` fields (``engine``, ``cache_hit``).
    record_limit:
        How many most-recent job records to retain for stats.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        *,
        max_workers: int = 4,
        queue_size: int = 64,
        default_timeout: float | None = None,
        use_processes: bool = False,
        annotate: Callable[[Any], Mapping[str, Any]] | None = None,
        record_limit: int = 1024,
    ) -> None:
        if max_workers <= 0:
            raise ServiceError(f"max_workers must be positive, got {max_workers}")
        if queue_size <= 0:
            raise ServiceError(f"queue_size must be positive, got {queue_size}")
        if default_timeout is not None and default_timeout <= 0:
            raise ServiceError(
                f"default_timeout must be positive, got {default_timeout}"
            )
        self._fn = fn
        self._annotate = annotate
        self._queue_size = int(queue_size)
        self._default_timeout = default_timeout
        self._lock = threading.Lock()
        self._records: deque[JobRecord] = deque(maxlen=record_limit)
        self._counts = new_job_counts()
        #: Admitted jobs that have not yet reached a terminal state.
        self._active = 0
        self._next_id = 0
        self._shutdown = False
        self._draining = False

        self._pool: ProcessPoolExecutor | None = None
        self._threads: list[threading.Thread] = []
        if use_processes:
            self._pool = ProcessPoolExecutor(max_workers=max_workers)
            self._inflight = 0
            self._inflight_cap = int(queue_size) + int(max_workers)
        else:
            self._jobs: "queue.Queue[_Job | None]" = queue.Queue(maxsize=queue_size)
            for idx in range(max_workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-service-worker-{idx}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        request: Any,
        *,
        timeout: float | None = None,
        label: str = "",
    ) -> "Future[Any]":
        """Enqueue one job; returns its future.

        Raises
        ------
        ServiceOverloadedError
            When the bounded queue (or process-pool admission window) is
            full, or the executor has begun a graceful drain.  The caller
            sheds load instead of blocking.
        """
        if self._draining:
            raise ServiceOverloadedError(
                self._queue_size,
                reason="executor is draining: in-flight jobs are finishing, "
                "new jobs are rejected",
            )
        if self._shutdown:
            raise ServiceError("executor is shut down")
        effective_timeout = self._default_timeout if timeout is None else timeout
        if effective_timeout is not None and effective_timeout <= 0:
            raise ServiceError(f"timeout must be positive, got {effective_timeout}")
        future: "Future[Any]" = Future()
        with self._lock:
            job_id = self._next_id
            self._next_id += 1
        record = JobRecord(job_id=job_id, label=label, queued_at=time.time())
        job = _Job(request, future, record, effective_timeout)

        if self._pool is not None:
            self._submit_process(job)
        else:
            # Admission is atomic with its accounting: the enqueue and the
            # submitted/active increments happen under one lock, so a
            # worker finishing the job can never have its terminal count
            # observed before the admission count, and a rejected submit
            # never increments counters it has no terminal transition to
            # pair with.  (put_nowait never blocks, so holding the lock
            # across it is safe.)
            admitted = True
            with self._lock:
                try:
                    self._jobs.put_nowait(job)
                except queue.Full:
                    admitted = False
                    record.status = "rejected"
                    record.finished_at = time.time()
                    self._counts["rejected"] += 1
                else:
                    self._counts["submitted"] += 1
                    self._active += 1
                self._records.append(record)
            if not admitted:
                raise ServiceOverloadedError(self._queue_size) from None
        if effective_timeout is not None:
            timer = threading.Timer(
                effective_timeout, self._expire, args=(job, effective_timeout)
            )
            timer.daemon = True
            job.timer = timer
            timer.start()
        return future

    def submit_many(
        self,
        requests: Iterable[Any],
        *,
        timeout: float | None = None,
        label: str = "",
    ) -> "list[Future[Any]]":
        """Submit a batch; futures come back in input order.

        Overload is captured *per item*: once the queue fills, the
        remaining futures resolve with :class:`ServiceOverloadedError`
        instead of the whole batch failing, so ``/v1/solve_batch`` can
        report partial acceptance.
        """
        futures: "list[Future[Any]]" = []
        for request in requests:
            try:
                futures.append(self.submit(request, timeout=timeout, label=label))
            except ServiceOverloadedError as exc:
                failed: "Future[Any]" = Future()
                failed.set_exception(exc)
                futures.append(failed)
        return futures

    # ------------------------------------------------------------------ #
    # Thread worker path
    # ------------------------------------------------------------------ #

    def _worker_loop(self) -> None:
        while True:
            job = self._jobs.get()
            if job is None:  # shutdown sentinel
                self._jobs.task_done()
                return
            try:
                self._run_job(job)
            finally:
                self._jobs.task_done()

    def _run_job(self, job: _Job) -> None:
        with job.record._lock:
            if job.record.status != "queued":
                # Timed out (or cancelled) while waiting: don't waste a
                # worker on a job whose future is already resolved.
                return
            job.record.status = "running"
            job.record.started_at = time.time()
        try:
            result = self._fn(job.request)
        except BaseException as exc:  # noqa: B036  # lint: ignore[RS602] - fed to the job future
            self._finish(job, error=exc)
        else:
            self._finish(job, result=result)

    # ------------------------------------------------------------------ #
    # Process pool path
    # ------------------------------------------------------------------ #

    def _submit_process(self, job: _Job) -> None:
        assert self._pool is not None
        # Same atomic-admission contract as the thread path: the capacity
        # check and the submitted/active accounting share one critical
        # section, and rejection counts only `rejected`.  `_inflight`
        # tracks pool occupancy (freed when the pool future resolves),
        # `_active` the logical job (freed at its terminal transition) —
        # they diverge when a job times out but its process keeps running.
        with self._lock:
            overloaded = self._inflight >= self._inflight_cap
            if overloaded:
                job.record.status = "rejected"
                job.record.finished_at = time.time()
                self._counts["rejected"] += 1
            else:
                self._inflight += 1
                self._active += 1
                self._counts["submitted"] += 1
            self._records.append(job.record)
        if overloaded:
            raise ServiceOverloadedError(self._queue_size)
        with job.record._lock:
            job.record.status = "running"
            job.record.started_at = time.time()
        try:
            internal = self._pool.submit(self._fn, job.request)
        except BaseException as exc:
            # The pool refused the job (e.g. shutting down): make its one
            # terminal transition here so the admission counters balance,
            # then let the submit error propagate to the caller.
            with job.record._lock:
                job.record.status = "failed"
                job.record.finished_at = time.time()
                job.record.error = f"{type(exc).__name__}: {exc}"
            with self._lock:
                self._inflight -= 1
                self._active -= 1
                self._counts["failed"] += 1
            raise

        def _transfer(done: "Future[Any]") -> None:
            with self._lock:
                self._inflight -= 1
            exc = done.exception()
            if exc is not None:
                self._finish(job, error=exc)
            else:
                self._finish(job, result=done.result())

        internal.add_done_callback(_transfer)

    # ------------------------------------------------------------------ #
    # Completion / timeout
    # ------------------------------------------------------------------ #

    def _finish(
        self,
        job: _Job,
        *,
        result: Any = None,
        error: BaseException | None = None,
    ) -> None:
        if job.timer is not None:
            job.timer.cancel()
        now = time.time()
        with job.record._lock:
            already_resolved = job.record.status in ("timeout", "rejected")
            job.record.finished_at = now
            if not already_resolved:
                if error is None:
                    job.record.status = "done"
                    if self._annotate is not None:
                        try:
                            extra = self._annotate(result)
                        except Exception:  # lint: ignore[RS602] - cosmetic hook
                            extra = {}
                        job.record.engine = extra.get("engine", job.record.engine)
                        hit = extra.get("cache_hit")
                        if hit is not None:
                            job.record.cache_hit = bool(hit)
                else:
                    job.record.status = "failed"
                    job.record.error = f"{type(error).__name__}: {error}"
        with self._lock:
            if not already_resolved:
                self._counts["done" if error is None else "failed"] += 1
                self._active -= 1
        if already_resolved:
            # The timeout timer claimed the terminal state; it owns the
            # future (it resolves it with ServiceTimeoutError), and the
            # computed result (or late error) is discarded by design.
            return
        try:
            if error is None:
                job.future.set_result(result)
            else:
                job.future.set_exception(error)
        except InvalidStateError:
            pass

    def _expire(self, job: _Job, timeout: float) -> None:
        # Claim the terminal state under the record lock *before* touching
        # the future: the claim is what makes the worker's `_finish` see
        # `already_resolved` and skip its own counting, so exactly one of
        # the two performs the terminal count and active decrement.
        with job.record._lock:
            if job.record.status not in ("queued", "running"):
                return  # the worker already finished it; nothing expired
            if job.future.done():
                return
            job.record.status = "timeout"
            job.record.error = f"timed out after {timeout:g}s"
        with self._lock:
            self._counts["timeout"] += 1
            self._active -= 1
        try:
            job.future.set_exception(ServiceTimeoutError(timeout))
        except InvalidStateError:
            pass

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    def records(self) -> list[JobRecord]:
        """The retained job records, oldest first."""
        with self._lock:
            return list(self._records)

    def stats(self) -> dict[str, Any]:
        """Counters plus p50/p95 solve latency over retained finished jobs."""
        with self._lock:
            counts = dict(self._counts)
            active = self._active
            run_times = [
                r.run_time
                for r in self._records
                if r.status == "done" and r.run_time is not None
            ]
        return {
            **counts,
            "active": active,
            "latency_p50": percentile(run_times, 50),
            "latency_p95": percentile(run_times, 95),
            "queue_capacity": self._queue_size,
        }

    @property
    def draining(self) -> bool:
        """Whether a graceful drain has begun (new submissions rejected)."""
        return self._draining

    @property
    def queue_capacity(self) -> int:
        """The bounded pending-job capacity this executor admits."""
        return self._queue_size

    def shutdown(self, wait: bool = True, *, drain: bool = False) -> None:
        """Stop accepting jobs and (optionally) wait for workers to finish.

        ``drain=True`` is the graceful-shutdown path: submissions arriving
        from this point on are rejected with
        :class:`~repro.exceptions.ServiceOverloadedError` (so routers fail
        over instead of seeing a hard error), while every job already
        queued or running completes normally and leaves its
        :class:`JobRecord`.  The call blocks until the workers are idle.
        """
        if drain:
            self._draining = True
            wait = True
        if self._shutdown:
            return
        self._shutdown = True
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            return
        for _ in self._threads:
            self._jobs.put(None)
        if wait:
            for thread in self._threads:
                thread.join() if drain else thread.join(timeout=5.0)

    def __enter__(self) -> "JobExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
