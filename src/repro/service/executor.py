"""Bounded job executor: worker pool, backpressure, timeouts, job records.

The executor turns the scheduling service into a queueing system with
explicit limits instead of an unbounded thread-per-request free-for-all:

* **Bounded admission** — at most ``queue_size`` jobs may wait; a submit
  against a full queue raises
  :class:`~repro.exceptions.ServiceOverloadedError` immediately (the HTTP
  layer maps it to 503) rather than queueing unboundedly or blocking.
* **Worker pool** — ``max_workers`` daemon threads by default; an opt-in
  process pool (``use_processes=True``) for CPU-bound solve functions
  that need to sidestep the GIL (the job function must be picklable).
* **Per-job timeouts** — a job that does not finish within its timeout
  resolves its future with :class:`~repro.exceptions.ServiceTimeoutError`.
  Thread workers cannot be preempted, so the underlying computation runs
  to completion and its result is discarded; the record notes the
  overrun.
* **Structured records** — every job leaves a :class:`JobRecord` with
  queued/started/finished timestamps, terminal status, and whatever the
  ``annotate`` hook extracted from the result (the scheduling service
  uses it to record the engine that served the request and the cache-hit
  flag), feeding the ``/v1/stats`` latency percentiles.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from collections.abc import Callable, Iterable, Mapping, Sequence
from concurrent.futures import Future, InvalidStateError, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import (
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)

__all__ = ["JobRecord", "JobExecutor", "percentile"]


def percentile(samples: Sequence[float], q: float) -> float | None:
    """Nearest-rank percentile of a sample list (``None`` when empty)."""
    if not samples:
        return None
    if not 0 <= q <= 100:
        raise ServiceError(f"percentile must be in [0, 100], got {q!r}")
    ordered = sorted(samples)
    rank = max(1, round(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class JobRecord:
    """The audit record of one submitted job."""

    job_id: int
    label: str
    queued_at: float
    started_at: float | None = None
    finished_at: float | None = None
    #: Terminal state: queued | running | done | failed | timeout | rejected
    #: | cancelled.  ``timeout`` marks the *future's* resolution; a thread
    #: job may still have run to (discarded) completion afterwards.
    status: str = "queued"
    #: Which engine served the request (set via the ``annotate`` hook).
    engine: str | None = None
    #: Whether the result came from the cache (set via ``annotate``).
    cache_hit: bool | None = None
    error: str | None = None
    #: Guards cross-thread mutation (worker vs timeout timer).
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def wait_time(self) -> float | None:
        """Seconds spent queued before a worker picked the job up."""
        if self.started_at is None:
            return None
        return self.started_at - self.queued_at

    @property
    def run_time(self) -> float | None:
        """Seconds spent executing (``None`` until the job finishes)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible rendering for stats and debugging endpoints."""
        return {
            "job_id": self.job_id,
            "label": self.label,
            "queued_at": self.queued_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "status": self.status,
            "engine": self.engine,
            "cache_hit": self.cache_hit,
            "error": self.error,
            "wait_time": self.wait_time,
            "run_time": self.run_time,
        }


class _Job:
    """Internal pairing of a request with its future, record and timer."""

    __slots__ = ("request", "future", "record", "timer", "timeout")

    def __init__(
        self,
        request: Any,
        future: "Future[Any]",
        record: JobRecord,
        timeout: float | None,
    ) -> None:
        self.request = request
        self.future = future
        self.record = record
        self.timer: threading.Timer | None = None
        self.timeout = timeout


class JobExecutor:
    """A bounded worker pool executing ``fn(request)`` jobs.

    Parameters
    ----------
    fn:
        The job function; receives one request object, returns the result
        delivered through the job's future.  Must be picklable when
        ``use_processes=True``.
    max_workers:
        Number of worker threads (or pool processes).
    queue_size:
        Bounded admission: maximum number of *waiting* jobs.  Submissions
        beyond it raise :class:`ServiceOverloadedError`.
    default_timeout:
        Per-job timeout applied when ``submit`` passes none.
    use_processes:
        Run jobs on a :class:`~concurrent.futures.ProcessPoolExecutor`
        instead of threads (opt-in; for pure-CPU solve functions).
    annotate:
        Optional hook mapping a successful result to extra
        :class:`JobRecord` fields (``engine``, ``cache_hit``).
    record_limit:
        How many most-recent job records to retain for stats.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        *,
        max_workers: int = 4,
        queue_size: int = 64,
        default_timeout: float | None = None,
        use_processes: bool = False,
        annotate: Callable[[Any], Mapping[str, Any]] | None = None,
        record_limit: int = 1024,
    ) -> None:
        if max_workers <= 0:
            raise ServiceError(f"max_workers must be positive, got {max_workers}")
        if queue_size <= 0:
            raise ServiceError(f"queue_size must be positive, got {queue_size}")
        if default_timeout is not None and default_timeout <= 0:
            raise ServiceError(
                f"default_timeout must be positive, got {default_timeout}"
            )
        self._fn = fn
        self._annotate = annotate
        self._queue_size = int(queue_size)
        self._default_timeout = default_timeout
        self._lock = threading.Lock()
        self._records: deque[JobRecord] = deque(maxlen=record_limit)
        self._counts = {
            "submitted": 0,
            "done": 0,
            "failed": 0,
            "timeout": 0,
            "rejected": 0,
            "cancelled": 0,
        }
        self._next_id = 0
        self._shutdown = False
        self._draining = False

        self._pool: ProcessPoolExecutor | None = None
        self._threads: list[threading.Thread] = []
        if use_processes:
            self._pool = ProcessPoolExecutor(max_workers=max_workers)
            self._inflight = 0
            self._inflight_cap = int(queue_size) + int(max_workers)
        else:
            self._jobs: "queue.Queue[_Job | None]" = queue.Queue(maxsize=queue_size)
            for idx in range(max_workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-service-worker-{idx}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        request: Any,
        *,
        timeout: float | None = None,
        label: str = "",
    ) -> "Future[Any]":
        """Enqueue one job; returns its future.

        Raises
        ------
        ServiceOverloadedError
            When the bounded queue (or process-pool admission window) is
            full, or the executor has begun a graceful drain.  The caller
            sheds load instead of blocking.
        """
        if self._draining:
            raise ServiceOverloadedError(
                self._queue_size,
                reason="executor is draining: in-flight jobs are finishing, "
                "new jobs are rejected",
            )
        if self._shutdown:
            raise ServiceError("executor is shut down")
        effective_timeout = self._default_timeout if timeout is None else timeout
        if effective_timeout is not None and effective_timeout <= 0:
            raise ServiceError(f"timeout must be positive, got {effective_timeout}")
        future: "Future[Any]" = Future()
        with self._lock:
            job_id = self._next_id
            self._next_id += 1
        record = JobRecord(job_id=job_id, label=label, queued_at=time.time())
        job = _Job(request, future, record, effective_timeout)

        if self._pool is not None:
            self._submit_process(job)
        else:
            try:
                self._jobs.put_nowait(job)
            except queue.Full:
                self._reject(record)
                raise ServiceOverloadedError(self._queue_size) from None
        with self._lock:
            self._counts["submitted"] += 1
            self._records.append(record)
        if effective_timeout is not None:
            timer = threading.Timer(
                effective_timeout, self._expire, args=(job, effective_timeout)
            )
            timer.daemon = True
            job.timer = timer
            timer.start()
        return future

    def submit_many(
        self,
        requests: Iterable[Any],
        *,
        timeout: float | None = None,
        label: str = "",
    ) -> "list[Future[Any]]":
        """Submit a batch; futures come back in input order.

        Overload is captured *per item*: once the queue fills, the
        remaining futures resolve with :class:`ServiceOverloadedError`
        instead of the whole batch failing, so ``/v1/solve_batch`` can
        report partial acceptance.
        """
        futures: "list[Future[Any]]" = []
        for request in requests:
            try:
                futures.append(self.submit(request, timeout=timeout, label=label))
            except ServiceOverloadedError as exc:
                failed: "Future[Any]" = Future()
                failed.set_exception(exc)
                futures.append(failed)
        return futures

    # ------------------------------------------------------------------ #
    # Thread worker path
    # ------------------------------------------------------------------ #

    def _worker_loop(self) -> None:
        while True:
            job = self._jobs.get()
            if job is None:  # shutdown sentinel
                self._jobs.task_done()
                return
            try:
                self._run_job(job)
            finally:
                self._jobs.task_done()

    def _run_job(self, job: _Job) -> None:
        with job.record._lock:
            if job.record.status != "queued":
                # Timed out (or cancelled) while waiting: don't waste a
                # worker on a job whose future is already resolved.
                return
            job.record.status = "running"
            job.record.started_at = time.time()
        try:
            result = self._fn(job.request)
        except BaseException as exc:  # noqa: B036  # lint: ignore[RS602] - fed to the job future
            self._finish(job, error=exc)
        else:
            self._finish(job, result=result)

    # ------------------------------------------------------------------ #
    # Process pool path
    # ------------------------------------------------------------------ #

    def _submit_process(self, job: _Job) -> None:
        assert self._pool is not None
        with self._lock:
            overloaded = self._inflight >= self._inflight_cap
            if not overloaded:
                self._inflight += 1
        if overloaded:
            # Outside the lock: _reject re-acquires it, and threading.Lock
            # is non-reentrant.
            self._reject(job.record)
            raise ServiceOverloadedError(self._queue_size)
        with job.record._lock:
            job.record.status = "running"
            job.record.started_at = time.time()
        try:
            internal = self._pool.submit(self._fn, job.request)
        except BaseException:
            with self._lock:
                self._inflight -= 1
            raise

        def _transfer(done: "Future[Any]") -> None:
            with self._lock:
                self._inflight -= 1
            exc = done.exception()
            if exc is not None:
                self._finish(job, error=exc)
            else:
                self._finish(job, result=done.result())

        internal.add_done_callback(_transfer)

    # ------------------------------------------------------------------ #
    # Completion / timeout
    # ------------------------------------------------------------------ #

    def _finish(
        self,
        job: _Job,
        *,
        result: Any = None,
        error: BaseException | None = None,
    ) -> None:
        if job.timer is not None:
            job.timer.cancel()
        now = time.time()
        with job.record._lock:
            already_resolved = job.record.status in ("timeout", "rejected")
            job.record.finished_at = now
            if not already_resolved:
                if error is None:
                    job.record.status = "done"
                    if self._annotate is not None:
                        try:
                            extra = self._annotate(result)
                        except Exception:  # lint: ignore[RS602] - cosmetic hook
                            extra = {}
                        job.record.engine = extra.get("engine", job.record.engine)
                        hit = extra.get("cache_hit")
                        if hit is not None:
                            job.record.cache_hit = bool(hit)
                else:
                    job.record.status = "failed"
                    job.record.error = f"{type(error).__name__}: {error}"
        with self._lock:
            if not already_resolved:
                self._counts["done" if error is None else "failed"] += 1
        try:
            if error is None:
                job.future.set_result(result)
            else:
                job.future.set_exception(error)
        except InvalidStateError:
            # The timeout timer resolved the future first; the computed
            # result (or late error) is discarded by design.
            pass

    def _expire(self, job: _Job, timeout: float) -> None:
        if job.future.done():
            return
        try:
            job.future.set_exception(ServiceTimeoutError(timeout))
        except InvalidStateError:
            return
        with job.record._lock:
            job.record.status = "timeout"
            job.record.error = f"timed out after {timeout:g}s"
        with self._lock:
            self._counts["timeout"] += 1

    def _reject(self, record: JobRecord) -> None:
        with record._lock:
            record.status = "rejected"
            record.finished_at = time.time()
        with self._lock:
            self._counts["rejected"] += 1
            self._records.append(record)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    def records(self) -> list[JobRecord]:
        """The retained job records, oldest first."""
        with self._lock:
            return list(self._records)

    def stats(self) -> dict[str, Any]:
        """Counters plus p50/p95 solve latency over retained finished jobs."""
        with self._lock:
            counts = dict(self._counts)
            run_times = [
                r.run_time
                for r in self._records
                if r.status == "done" and r.run_time is not None
            ]
        return {
            **counts,
            "latency_p50": percentile(run_times, 50),
            "latency_p95": percentile(run_times, 95),
            "queue_capacity": self._queue_size,
        }

    @property
    def draining(self) -> bool:
        """Whether a graceful drain has begun (new submissions rejected)."""
        return self._draining

    @property
    def queue_capacity(self) -> int:
        """The bounded pending-job capacity this executor admits."""
        return self._queue_size

    def shutdown(self, wait: bool = True, *, drain: bool = False) -> None:
        """Stop accepting jobs and (optionally) wait for workers to finish.

        ``drain=True`` is the graceful-shutdown path: submissions arriving
        from this point on are rejected with
        :class:`~repro.exceptions.ServiceOverloadedError` (so routers fail
        over instead of seeing a hard error), while every job already
        queued or running completes normally and leaves its
        :class:`JobRecord`.  The call blocks until the workers are idle.
        """
        if drain:
            self._draining = True
            wait = True
        if self._shutdown:
            return
        self._shutdown = True
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            return
        for _ in self._threads:
            self._jobs.put(None)
        if wait:
            for thread in self._threads:
                thread.join() if drain else thread.join(timeout=5.0)

    def __enter__(self) -> "JobExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
