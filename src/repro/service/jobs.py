"""Shared job-record and stats primitives for the service cores.

Extracted from :mod:`repro.service.executor` so the threaded
:class:`~repro.service.executor.JobExecutor` and the asyncio core
(:mod:`repro.service.aio.core`) account work with one vocabulary:

* :class:`JobRecord` — the audit record of one admitted job (queued /
  started / finished timestamps, terminal status, engine and cache-hit
  annotations);
* :func:`new_job_counts` — the canonical counter set
  (``submitted / done / failed / timeout / rejected / cancelled``) whose
  invariants both cores uphold: a rejected submission never increments
  ``submitted``, every admitted job reaches exactly one terminal count,
  and at any observable instant ``done + failed + timeout + cancelled
  <= submitted``;
* :func:`percentile` — the nearest-rank percentile behind every
  latency figure on ``/v1/stats``.

Keeping these in one module means ``/v1/stats`` exposes the same
``executor`` section shape whether a node runs the threaded or the
asyncio core, so routers and the chaos harness can aggregate either.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ServiceError

__all__ = ["JOB_COUNT_KEYS", "JobRecord", "new_job_counts", "percentile"]

#: The canonical terminal/admission counter keys shared by both cores.
JOB_COUNT_KEYS: tuple[str, ...] = (
    "submitted",
    "done",
    "failed",
    "timeout",
    "rejected",
    "cancelled",
)


def new_job_counts() -> dict[str, int]:
    """A fresh zeroed counter set with the canonical keys."""
    return {key: 0 for key in JOB_COUNT_KEYS}


def percentile(samples: Sequence[float], q: float) -> float | None:
    """Nearest-rank percentile of a sample list (``None`` when empty)."""
    if not samples:
        return None
    if not 0 <= q <= 100:
        raise ServiceError(f"percentile must be in [0, 100], got {q!r}")
    ordered = sorted(samples)
    rank = max(1, round(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class JobRecord:
    """The audit record of one submitted job."""

    job_id: int
    label: str
    queued_at: float
    started_at: float | None = None
    finished_at: float | None = None
    #: Terminal state: queued | running | done | failed | timeout | rejected
    #: | cancelled.  ``timeout`` marks the *future's* resolution; a thread
    #: job may still have run to (discarded) completion afterwards.
    status: str = "queued"
    #: Which engine served the request (set via the ``annotate`` hook).
    engine: str | None = None
    #: Whether the result came from the cache (set via ``annotate``).
    cache_hit: bool | None = None
    error: str | None = None
    #: Guards cross-thread mutation (worker vs timeout timer).
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def wait_time(self) -> float | None:
        """Seconds spent queued before a worker picked the job up."""
        if self.started_at is None:
            return None
        return self.started_at - self.queued_at

    @property
    def run_time(self) -> float | None:
        """Seconds spent executing (``None`` until the job finishes)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible rendering for stats and debugging endpoints."""
        return {
            "job_id": self.job_id,
            "label": self.label,
            "queued_at": self.queued_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "status": self.status,
            "engine": self.engine,
            "cache_hit": self.cache_hit,
            "error": self.error,
            "wait_time": self.wait_time,
            "run_time": self.run_time,
        }
