"""Stdlib-only HTTP front-end and client for the scheduling service.

Server
------
:func:`make_server` binds a :class:`http.server.ThreadingHTTPServer`
around a :class:`~repro.service.app.SchedulingService`; :func:`serve`
is the blocking entry point behind ``repro serve``.  Routes:

===============================  ==========================================
``POST /v1/solve``                   solve one request payload
``POST /v1/solve_batch``             ``{"requests": [...]}`` → ``{"results": [...]}``
``POST /v1/workflows``               register a live workflow (idempotent)
``POST /v1/workflows/<id>/events``   apply one live event → revised plan
``GET  /v1/workflows/<id>``          live status + actual-vs-planned ledger
``GET  /v1/stats``                   cache/executor counters, hit-rate, p50/p95
``GET  /v1/healthz``                 liveness probe (process is up)
``GET  /v1/readyz``                  readiness probe (503 once draining has begun)
===============================  ==========================================

Failure mapping: malformed payloads and infeasible budgets are ``400``,
an unknown route or workflow id is ``404``, a conflicting live event
(sequence gap or divergent replay) is ``409``, the executor's
backpressure rejection
(:class:`~repro.exceptions.ServiceOverloadedError`) is ``503`` with a
``Retry-After`` hint, and a per-job timeout is ``504``.  Every body —
success or error — is canonical JSON from :func:`repro.service.codec.dumps`.

``serve`` installs a SIGTERM handler so a fleet manager's stop signal
triggers the graceful drain contract (stop accepting, finish in-flight
jobs, flush the disk cache) instead of dropping work on the floor.

Client
------
:class:`ServiceClient` wraps ``urllib.request`` for the ``repro submit``
subcommand, the router, the CI smoke tests and scripts; HTTP error
statuses are returned as their decoded error bodies rather than raised,
so callers handle one shape.  Transport failures (connection refused or
reset, truncated responses) raise
:class:`~repro.exceptions.TransientServiceError`.  An optional
:class:`~repro.service.resilience.RetryPolicy` makes the client retry
transport failures and 503s — honouring the server's ``Retry-After``
hint — before giving up (``repro submit --max-retries/--deadline``).
"""

from __future__ import annotations

import http.client
import re
import signal
import sys
import threading
import urllib.error
import urllib.request
from collections.abc import Sequence
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.exceptions import (
    EventConflictError,
    LiveLogCorruptionError,
    InfeasibleBudgetError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
    StaleEpochError,
    TransientServiceError,
    UnknownWorkflowError,
)
from repro.service.app import SchedulingService, error_payload
from repro.service.codec import dumps, loads
from repro.service.resilience import RetryPolicy

__all__ = [
    "HttpPeer",
    "ServiceRequestHandler",
    "make_server",
    "serve",
    "ServiceClient",
]

#: Live-workflow routes.  Ids are validated again by the manager; the
#: pattern here only needs to slice the path safely.
_WORKFLOW_EVENTS_RE = re.compile(r"^/v1/workflows/([A-Za-z0-9_\-]+)/events$")
_WORKFLOW_SYNC_RE = re.compile(r"^/v1/workflows/([A-Za-z0-9_\-]+)/sync$")
_WORKFLOW_STATUS_RE = re.compile(r"^/v1/workflows/([A-Za-z0-9_\-]+)$")


def _status_for(exc: BaseException) -> int:
    if isinstance(exc, ServiceOverloadedError):
        return 503
    if isinstance(exc, ServiceTimeoutError):
        return 504
    if isinstance(exc, TransientServiceError):
        return 503
    if isinstance(exc, (EventConflictError, StaleEpochError)):
        return 409
    if isinstance(exc, UnknownWorkflowError):
        return 404
    if isinstance(exc, LiveLogCorruptionError):
        # Server-side log damage, never the client's payload: 500-shaped
        # so routers fail over instead of surfacing a bad_request.
        return 500
    if isinstance(exc, (InfeasibleBudgetError, ServiceError, ReproError)):
        return 400
    return 500


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the attached :class:`SchedulingService`."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> SchedulingService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            sys.stderr.write(
                f"{self.address_string()} - {format % args}\n"
            )

    def _send_json(
        self, status: int, payload: dict[str, Any], *, retry_after: bool = False
    ) -> None:
        body = dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after:
            self.send_header("Retry-After", "1")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_payload(self, exc: BaseException) -> None:
        status = _status_for(exc)
        self._send_json(status, error_payload(exc), retry_after=status == 503)

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServiceError("request body is empty")
        return loads(self.rfile.read(length))

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/v1/healthz":
            self._send_json(200, {"status": "ok"})
        elif self.path == "/v1/readyz":
            ready = self.service.ready
            self._send_json(
                200 if ready else 503,
                {
                    "status": "ok" if ready else "error",
                    "ready": ready,
                    **(
                        {}
                        if ready
                        else {
                            "error": {
                                "kind": "not_ready",
                                "message": "service is draining",
                            }
                        }
                    ),
                },
                retry_after=not ready,
            )
        elif self.path == "/v1/stats":
            self._send_json(200, {"status": "ok", "stats": self.service.stats()})
        elif (match := _WORKFLOW_SYNC_RE.match(self.path)) is not None:
            try:
                response = self.service.workflow_sync_pull(match.group(1))
            except Exception as exc:
                self._send_error_payload(exc)
                return
            self._send_json(200, response)
        elif (match := _WORKFLOW_STATUS_RE.match(self.path)) is not None:
            try:
                response = self.service.workflow_status(match.group(1))
            except Exception as exc:
                self._send_error_payload(exc)
                return
            self._send_json(200, response)
        else:
            self._send_json(
                404,
                {
                    "status": "error",
                    "error": {"kind": "not_found", "message": f"no route {self.path}"},
                },
            )

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        try:
            if self.path == "/v1/solve":
                response = self.service.solve(self._read_body())
            elif self.path == "/v1/solve_batch":
                body = self._read_body()
                response = {
                    "status": "ok",
                    "results": self.service.solve_batch(body.get("requests")),
                }
            elif self.path == "/v1/workflows":
                response = self.service.register_workflow(self._read_body())
            elif (match := _WORKFLOW_EVENTS_RE.match(self.path)) is not None:
                response = self.service.workflow_event(
                    match.group(1), self._read_body()
                )
            elif (match := _WORKFLOW_SYNC_RE.match(self.path)) is not None:
                response = self.service.workflow_sync_push(
                    match.group(1), self._read_body()
                )
            else:
                self._send_json(
                    404,
                    {
                        "status": "error",
                        "error": {
                            "kind": "not_found",
                            "message": f"no route {self.path}",
                        },
                    },
                )
                return
        except Exception as exc:
            self._send_error_payload(exc)
            return
        self._send_json(200, response)


def make_server(
    service: SchedulingService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Bind (but do not start) the HTTP server around ``service``.

    ``port=0`` binds an ephemeral free port; read the actual one from
    ``server.server_address[1]``.
    """
    server = ThreadingHTTPServer((host, port), ServiceRequestHandler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8423,
    max_workers: int = 4,
    queue_size: int = 64,
    cache_size: int = 1024,
    cache_dir: str | None = None,
    default_timeout: float | None = None,
    degrade_on_timeout: bool = False,
    live_dir: str | None = None,
    live_fsync: bool = True,
    live_peers: Sequence[str] = (),
    live_checkpoint_interval: int = 0,
    live_retention: float | None = None,
    verbose: bool = False,
) -> int:
    """Blocking server loop behind ``repro serve``; returns the exit code.

    SIGTERM (and Ctrl-C) trigger a graceful drain: the node stops
    accepting (``/v1/readyz`` flips to 503, submissions get 503 so the
    router fails over), in-flight jobs finish, and the disk cache tier is
    flushed before the process exits.

    ``live_peers`` are sibling base URLs the live-workflow log replicates
    to (and heals from); ``live_fsync=False`` trades the
    acknowledged-event durability guarantee for latency and is unsafe.
    """
    service = SchedulingService(
        max_workers=max_workers,
        queue_size=queue_size,
        cache_size=cache_size,
        cache_dir=cache_dir,
        default_timeout=default_timeout,
        degrade_on_timeout=degrade_on_timeout,
        live_dir=live_dir,
        live_fsync=live_fsync,
        live_node=f"{host}:{port}",
        live_peers=[HttpPeer(url) for url in live_peers],
        live_checkpoint_interval=live_checkpoint_interval,
        live_retention=live_retention,
    )
    server = make_server(service, host=host, port=port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro.service listening on http://{bound_host}:{bound_port} "
        f"(workers={max_workers}, queue={queue_size}, cache={cache_size}"
        + (f", cache_dir={cache_dir}" if cache_dir else "")
        + (f", live_dir={live_dir}" if live_dir else "")
        + (f", live_peers={len(live_peers)}" if live_peers else "")
        + ("" if live_fsync else ", live_fsync=off (UNSAFE)")
        + (", degrade_on_timeout" if degrade_on_timeout else "")
        + ")",
        flush=True,
    )

    def _on_sigterm(signum: int, frame: Any) -> None:
        # serve_forever() must be unblocked from another thread; the
        # graceful drain itself runs in the finally block below.
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        pass  # not the main thread (embedded/test use); rely on KeyboardInterrupt
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.drain()
        print("repro.service drained cleanly", flush=True)
    return 0


def _parse_retry_after(value: str | None) -> float | None:
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None


class ServiceClient:
    """Minimal ``urllib``-based client for the service endpoints.

    HTTP error statuses (400/503/504/…) are returned as their decoded
    JSON error bodies, so callers inspect ``response["status"]`` instead
    of catching transport exceptions.  Transport failures — connection
    refused/reset, truncated bodies, timeouts — raise
    :class:`~repro.exceptions.TransientServiceError`.

    With ``retry=RetryPolicy(...)``, transport failures and 503 replies
    (``overloaded``/``not_ready``/``upstream_unavailable``) are retried
    with backoff, honouring the server's ``Retry-After`` hint; the final
    outcome (body or transient error) is then surfaced as usual.
    """

    #: Error kinds worth retrying: the server is alive but momentarily
    #: unable to take the job; a later attempt (or another node) can win.
    RETRYABLE_KINDS = frozenset({"overloaded", "not_ready", "upstream_unavailable"})

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry

    def _request_once(
        self, path: str, payload: dict[str, Any] | None = None
    ) -> tuple[dict[str, Any], float | None]:
        """One HTTP round-trip → ``(decoded body, Retry-After seconds)``."""
        url = f"{self.base_url}{path}"
        data = dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return loads(reply.read()), None
        except urllib.error.HTTPError as exc:
            retry_after = _parse_retry_after(exc.headers.get("Retry-After"))
            try:
                body = exc.read()
            except (http.client.HTTPException, OSError) as read_exc:
                # The error body itself was truncated mid-read (chaos
                # drop, node killed while flushing): still transient.
                raise TransientServiceError(
                    f"connection to {url} failed mid-response: "
                    f"{type(read_exc).__name__}: {read_exc}",
                    retry_after=retry_after,
                ) from read_exc
            try:
                return loads(body), retry_after
            except ServiceError:
                if exc.code >= 500:
                    raise TransientServiceError(
                        f"{url} answered HTTP {exc.code} with a non-JSON body",
                        retry_after=retry_after,
                        status=exc.code,
                    ) from exc
                raise ServiceError(
                    f"{url} answered HTTP {exc.code} with a non-JSON body"
                ) from exc
        except urllib.error.URLError as exc:
            raise TransientServiceError(f"cannot reach {url}: {exc.reason}") from exc
        except (http.client.HTTPException, ConnectionError, TimeoutError) as exc:
            # Dropped/truncated mid-response (chaos, a crashing node):
            # urllib surfaces these raw, without the URLError wrapper.
            raise TransientServiceError(
                f"connection to {url} failed mid-response: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    def _request(
        self, path: str, payload: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        if self.retry is None:
            return self._request_once(path, payload)[0]

        def attempt(n: int) -> dict[str, Any]:
            body, retry_after = self._request_once(path, payload)
            if (
                body.get("status") == "error"
                and body.get("error", {}).get("kind") in self.RETRYABLE_KINDS
            ):
                raise TransientServiceError(
                    str(body["error"].get("message", "service unavailable")),
                    retry_after=retry_after if retry_after is not None else 1.0,
                )
            return body

        return self.retry.run(attempt)

    def healthz(self) -> dict[str, Any]:
        return self._request("/v1/healthz")

    def stats(self) -> dict[str, Any]:
        return self._request("/v1/stats")

    def solve(self, payload: dict[str, Any]) -> dict[str, Any]:
        return self._request("/v1/solve", payload)

    def solve_batch(self, payloads: list[dict[str, Any]]) -> dict[str, Any]:
        return self._request("/v1/solve_batch", {"requests": payloads})

    def register_workflow(self, payload: dict[str, Any]) -> dict[str, Any]:
        return self._request("/v1/workflows", payload)

    def workflow_event(
        self, workflow_id: str, payload: dict[str, Any]
    ) -> dict[str, Any]:
        return self._request(f"/v1/workflows/{workflow_id}/events", payload)

    def workflow_status(self, workflow_id: str) -> dict[str, Any]:
        return self._request(f"/v1/workflows/{workflow_id}")

    def workflow_sync(self, workflow_id: str) -> dict[str, Any]:
        """``GET /v1/workflows/<id>/sync``: the peer's raw log lines."""
        return self._request(f"/v1/workflows/{workflow_id}/sync")

    def workflow_sync_push(
        self, workflow_id: str, payload: dict[str, Any]
    ) -> dict[str, Any]:
        """``POST /v1/workflows/<id>/sync``: replicate records to a peer."""
        return self._request(f"/v1/workflows/{workflow_id}/sync", payload)


class HttpPeer:
    """A :class:`~repro.live.store.PeerLink` over the HTTP sync endpoints.

    One per ``--live-peer`` URL.  ``fetch`` and ``push`` translate the
    decoded error bodies back into exceptions so the store's replication
    layer sees the same surface an in-process peer would: ``None`` for a
    workflow the peer does not have, :class:`EventConflictError` for a
    base-offset mismatch (the sender then falls back to a full resync),
    :class:`TransientServiceError` for anything else.
    """

    def __init__(self, base_url: str, *, timeout: float = 5.0) -> None:
        self.client = ServiceClient(base_url, timeout=timeout)
        self.base_url = self.client.base_url

    def __repr__(self) -> str:
        return f"HttpPeer({self.base_url!r})"

    def fetch(self, workflow_id: str) -> list[str] | None:
        body = self.client.workflow_sync(workflow_id)
        if body.get("status") == "ok":
            records = body.get("records")
            return records if isinstance(records, list) else None
        if body.get("error", {}).get("kind") == "not_found":
            return None
        raise TransientServiceError(
            f"peer {self.base_url} cannot serve workflow {workflow_id!r}: "
            f"{body.get('error', {}).get('message', 'unknown error')}"
        )

    def push(
        self, workflow_id: str, base_records: int | None, records: list[str]
    ) -> int:
        payload: dict[str, Any] = {"records": records}
        if base_records is None:
            payload["reset"] = True
        else:
            payload["base_records"] = base_records
        body = self.client.workflow_sync_push(workflow_id, payload)
        if body.get("status") == "ok":
            count = body.get("records")
            if isinstance(count, int) and not isinstance(count, bool):
                return count
            raise TransientServiceError(
                f"peer {self.base_url} acknowledged a sync push without "
                "a record count"
            )
        error = body.get("error", {})
        if error.get("kind") == "conflict":
            raise EventConflictError(
                str(error.get("message", "sync base mismatch")),
                workflow_id=workflow_id,
            )
        raise TransientServiceError(
            f"peer {self.base_url} rejected a sync push for workflow "
            f"{workflow_id!r}: {error.get('message', 'unknown error')}"
        )
