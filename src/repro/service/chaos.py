"""Fault-injecting HTTP proxy for resilience tests and the chaos CI job.

:class:`ChaosProxy` sits between a client (usually the shard router) and
one upstream ``repro serve`` node, forwarding requests verbatim and
injecting three fault classes according to a :class:`ChaosConfig`:

* **latency** — sleep a sampled delay before forwarding;
* **error** — answer ``502 Bad Gateway`` without touching the upstream
  (the body carries ``kind="bad_gateway"`` so clients classify it as a
  node fault, not an application error);
* **drop** — forward, then truncate the response mid-body and slam the
  socket shut, which surfaces client-side as ``IncompleteRead`` /
  ``RemoteDisconnected``.

Fault decisions are **deterministic per seed**: request number ``n``
through a proxy seeded ``s`` derives its private
``random.Random(f"{s}:{n}")``, so a failing chaos run replays exactly
with the same seed regardless of thread interleaving.  Counters
(``forwarded``, ``injected_latency``, ``injected_errors``,
``injected_drops``) are exported for test assertions and the CI stats
artifact.

The proxy is transport-level only — it never parses the JSON it relays —
so it exercises precisely the failure modes the resilience layer claims
to absorb, with zero knowledge of the scheduling domain.
"""

from __future__ import annotations

import random
import socket
import sys
import threading
import urllib.error
import urllib.request
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.exceptions import ServiceError
from repro.service.codec import dumps

__all__ = ["ChaosConfig", "ChaosProxy"]


@dataclass(frozen=True)
class ChaosConfig:
    """Fault mix for a :class:`ChaosProxy`.

    Probabilities are evaluated independently per request (a request can
    draw latency *and* still be dropped).  All-zero probabilities make
    the proxy a transparent relay — useful for fault-free control runs
    through identical plumbing.
    """

    seed: int = 0
    latency_prob: float = 0.0
    latency_min: float = 0.01
    latency_max: float = 0.05
    error_prob: float = 0.0
    drop_prob: float = 0.0

    def __post_init__(self) -> None:
        for name in ("latency_prob", "error_prob", "drop_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ServiceError(f"{name} must be in [0, 1], got {value}")
        if self.latency_min < 0 or self.latency_max < self.latency_min:
            raise ServiceError(
                "latency bounds must satisfy 0 <= latency_min <= latency_max"
            )


class _ChaosHandler(BaseHTTPRequestHandler):
    """Relays one request to the upstream, applying the decided faults."""

    protocol_version = "HTTP/1.1"

    @property
    def proxy(self) -> "ChaosProxy":
        return self.server.proxy  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # chaos is noisy by design; keep stderr for real diagnostics

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._relay(None)

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        length = int(self.headers.get("Content-Length") or 0)
        self._relay(self.rfile.read(length) if length > 0 else b"")

    def _relay(self, body: bytes | None) -> None:
        proxy = self.proxy
        faults = proxy._decide()
        if faults["latency"] is not None:
            proxy.sleep(faults["latency"])
        if faults["error"]:
            payload = dumps(
                {
                    "status": "error",
                    "error": {
                        "kind": "bad_gateway",
                        "type": "ChaosInjected",
                        "message": "chaos proxy injected a 502",
                    },
                }
            ).encode("utf-8")
            self.send_response(502)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
            return
        status, headers, reply = proxy.forward(self.path, body)
        if faults["drop"] and len(reply) > 1:
            # Advertise the full length, deliver half, kill the socket:
            # the client sees an IncompleteRead/RemoteDisconnected, the
            # exact signature of a node crashing mid-response.
            self.send_response(status)
            for name, value in headers:
                self.send_header(name, value)
            self.send_header("Content-Length", str(len(reply)))
            self.end_headers()
            self.wfile.write(reply[: len(reply) // 2])
            self.wfile.flush()
            try:
                self.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self.close_connection = True
            return
        self.send_response(status)
        for name, value in headers:
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(reply)))
        self.end_headers()
        self.wfile.write(reply)


class ChaosProxy:
    """A fault-injecting reverse proxy in front of one upstream node.

    Use as a context manager (or call :meth:`start`/:meth:`stop`); the
    proxy listens on ``127.0.0.1:<port>`` (``port=0`` = ephemeral) and
    exposes the bound address as :attr:`base_url`.
    """

    #: Hop-by-hop headers that must not be relayed verbatim.
    _SKIP_HEADERS = frozenset(
        {"content-length", "transfer-encoding", "connection", "keep-alive"}
    )

    def __init__(
        self,
        upstream_url: str,
        config: ChaosConfig | None = None,
        *,
        port: int = 0,
        timeout: float = 30.0,
        sleep: Any = None,
    ) -> None:
        import time as _time

        self.upstream_url = upstream_url.rstrip("/")
        self.config = config or ChaosConfig()
        self.timeout = timeout
        self.sleep = sleep or _time.sleep
        self._lock = threading.Lock()
        self._requests = 0
        self._counts = {
            "forwarded": 0,
            "injected_latency": 0,
            "injected_errors": 0,
            "injected_drops": 0,
            "upstream_unreachable": 0,
        }
        self._server = ThreadingHTTPServer(("127.0.0.1", port), _ChaosHandler)
        self._server.daemon_threads = True
        self._server.proxy = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def base_url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ChaosProxy":
        if self._thread is not None:
            raise ServiceError("chaos proxy is already running")
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._thread.join(timeout=5.0)
        self._server.server_close()
        self._thread = None

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Fault engine
    # ------------------------------------------------------------------ #

    def _decide(self) -> dict[str, Any]:
        """Deterministic per-request fault draw (seed + request counter)."""
        with self._lock:
            self._requests += 1
            n = self._requests
        rng = random.Random(f"{self.config.seed}:{n}")
        latency: float | None = None
        if rng.random() < self.config.latency_prob:
            latency = rng.uniform(self.config.latency_min, self.config.latency_max)
        error = rng.random() < self.config.error_prob
        drop = not error and rng.random() < self.config.drop_prob
        with self._lock:
            if latency is not None:
                self._counts["injected_latency"] += 1
            if error:
                self._counts["injected_errors"] += 1
            if drop:
                self._counts["injected_drops"] += 1
        return {"latency": latency, "error": error, "drop": drop}

    def forward(
        self, path: str, body: bytes | None
    ) -> tuple[int, list[tuple[str, str]], bytes]:
        """Relay one request upstream → ``(status, headers, body bytes)``."""
        request = urllib.request.Request(
            f"{self.upstream_url}{path}",
            data=body if body else None,
            headers={"Content-Type": "application/json"} if body else {},
            method="POST" if body is not None else "GET",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                status = reply.status
                headers = self._relay_headers(reply.headers.items())
                payload = reply.read()
        except urllib.error.HTTPError as exc:
            status = exc.code
            headers = self._relay_headers(exc.headers.items())
            payload = exc.read()
        except OSError as exc:
            with self._lock:
                self._counts["upstream_unreachable"] += 1
            payload = dumps(
                {
                    "status": "error",
                    "error": {
                        "kind": "bad_gateway",
                        "type": type(exc).__name__,
                        "message": f"chaos proxy cannot reach upstream: {exc}",
                    },
                }
            ).encode("utf-8")
            return 502, [("Content-Type", "application/json")], payload
        with self._lock:
            self._counts["forwarded"] += 1
        return status, headers, payload

    def _relay_headers(self, items: Any) -> list[tuple[str, str]]:
        return [
            (name, value)
            for name, value in items
            if name.lower() not in self._SKIP_HEADERS
            and not name.lower().startswith("date")
            and not name.lower().startswith("server")
        ]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> dict[str, Any]:
        """Counter snapshot: requests seen, faults injected, forwards."""
        with self._lock:
            return {"requests": self._requests, **self._counts}


def _main(argv: list[str] | None = None) -> int:
    """`python -m repro.service.chaos UPSTREAM [--port P] [--seed S] ...`"""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.service.chaos",
        description="fault-injecting reverse proxy for one repro serve node",
    )
    parser.add_argument("upstream", help="upstream base URL, e.g. http://127.0.0.1:8423")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--latency-prob", type=float, default=0.0)
    parser.add_argument("--latency-min", type=float, default=0.01)
    parser.add_argument("--latency-max", type=float, default=0.05)
    parser.add_argument("--error-prob", type=float, default=0.0)
    parser.add_argument("--drop-prob", type=float, default=0.0)
    args = parser.parse_args(argv)
    config = ChaosConfig(
        seed=args.seed,
        latency_prob=args.latency_prob,
        latency_min=args.latency_min,
        latency_max=args.latency_max,
        error_prob=args.error_prob,
        drop_prob=args.drop_prob,
    )
    proxy = ChaosProxy(args.upstream, config, port=args.port)
    print(
        f"repro.chaos listening on {proxy.base_url} -> {proxy.upstream_url} "
        f"(seed={config.seed}, latency={config.latency_prob:g}, "
        f"error={config.error_prob:g}, drop={config.drop_prob:g})",
        flush=True,
    )
    try:
        proxy._server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        proxy._server.server_close()
        sys.stderr.write(f"repro.chaos final stats: {dumps(proxy.stats())}\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
