"""Shard router: prefix-sharded, failover-capable front-end for a fleet.

The cache key space is content-addressed (``problem_hash``), so requests
shard naturally: the router hashes each request's problem payload with
the same canonical hashing the nodes use (:mod:`repro.service.keys`),
takes the first ``prefix_len`` hex digits, and maps that prefix onto the
fleet.  Equivalent requests — however the client permutes modules or VM
types — therefore always land on the same node and hit its cache.

Resilience machinery around the bare routing:

* **Failover** — each request has a deterministic preference order
  (primary = its shard owner, then the successor nodes in ring order);
  a transient failure against one candidate falls through to the next.
* **Retries** — the whole failover sweep runs under a
  :class:`~repro.service.resilience.RetryPolicy` (exponential backoff,
  full jitter, ``Retry-After``-aware, total-deadline-budgeted).
* **Circuit breakers** — one per node.  A node that keeps failing is
  skipped without burning a connect timeout until its breaker half-opens
  and a probe succeeds.
* **Hedging** (opt-in) — for *cache-probable* keys (a ``problem_hash``
  the router has routed before, so the primary most likely answers from
  cache in microseconds), a secondary request is launched after
  ``hedge_delay`` seconds of primary silence; first success wins.
  Hedging is safe here because solves are deterministic and memoized —
  duplicated work costs CPU, never correctness.

:func:`make_router_server` / :func:`serve_router` expose the router over
the same HTTP surface as a node (``repro route``): ``/v1/solve``,
``/v1/solve_batch``, the live-workflow trio (``/v1/workflows``,
``/v1/workflows/<id>/events``, ``/v1/workflows/<id>``), aggregated
``/v1/stats``, ``/v1/healthz``, ``/v1/readyz``.

Live workflows are *stateful*, so they shard by
:func:`~repro.service.keys.workflow_id_digest` instead of the problem
hash — every event for one workflow lands on the same node, which owns
its in-memory state and event log.  The router injects the
content-derived ``workflow_id`` into registrations that omit it, so the
id it shards by is the id the node registers under.  Failover and
retries apply as for solves (the target node recovers the workflow from
a shared ``--live-dir`` log); hedging never does — live events mutate
state, and a duplicated *first delivery* of the same sequence number on
two nodes is exactly the divergence the idempotency protocol exists to
prevent.
"""

from __future__ import annotations

import queue
import random
import sys
import threading
import time
from collections.abc import Callable, Mapping, Sequence
from http.server import ThreadingHTTPServer
from typing import Any

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.exceptions import (
    CircuitOpenError,
    ReproError,
    ServiceError,
    TransientServiceError,
)
from repro.service.app import error_payload
from repro.service.codec import dumps
from repro.service.http import (
    _WORKFLOW_EVENTS_RE,
    _WORKFLOW_STATUS_RE,
    ServiceClient,
    ServiceRequestHandler,
)
from repro.service.keys import derive_workflow_id, problem_hash, workflow_id_digest
from repro.service.resilience import CircuitBreaker, RetryPolicy

__all__ = [
    "NodeHandle",
    "ShardRouter",
    "RouterRequestHandler",
    "make_router_server",
    "serve_router",
]

#: Error kinds that mark a *node* as failing (count against its breaker).
_NODE_FAULT_KINDS = frozenset({"internal", "bad_gateway", "upstream_unavailable"})

#: Error kinds that are retryable without blaming the node's health
#: (an overloaded or draining node is alive; its queue is just full).
_BUSY_KINDS = frozenset({"overloaded", "not_ready"})


class NodeHandle:
    """One fleet member: base URL + client + circuit breaker."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        breaker: CircuitBreaker | None = None,
        client: ServiceClient | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.name = self.base_url
        self.client = client or ServiceClient(self.base_url, timeout=timeout)
        self.breaker = breaker or CircuitBreaker()
        self._lock = threading.Lock()
        self._counts = {"requests": 0, "errors": 0}

    def _count(self, field: str) -> None:
        with self._lock:
            self._counts[field] += 1

    def stats(self) -> dict[str, Any]:
        """Per-node router-side counters + breaker snapshot."""
        with self._lock:
            counts = dict(self._counts)
        return {**counts, "breaker": self.breaker.stats()}


class ShardRouter:
    """Routes solve requests across nodes by ``problem_hash`` prefix.

    Parameters
    ----------
    nodes:
        The fleet, as :class:`NodeHandle` instances.  Shard ownership is
        deterministic in the *given order*; run every router replica with
        the same node list.
    retry_policy:
        Policy for the retry loop around the failover sweep.
    prefix_len:
        Hex digits of ``problem_hash`` used for sharding (2 → 256 shards).
    hedge_delay:
        Enable hedged requests for previously-seen keys: seconds of
        primary silence before the secondary is also asked.  ``None``
        (default) disables hedging.
    sleep / clock / rng:
        Injectable timing hooks for deterministic tests.
    """

    def __init__(
        self,
        nodes: Sequence[NodeHandle],
        *,
        retry_policy: RetryPolicy | None = None,
        prefix_len: int = 2,
        hedge_delay: float | None = None,
        sleep: Callable[[float], Any] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        rng: random.Random | None = None,
    ) -> None:
        if not nodes:
            raise ServiceError("router needs at least one node")
        if prefix_len < 1 or prefix_len > 16:
            raise ServiceError(f"prefix_len must be in [1, 16], got {prefix_len}")
        if hedge_delay is not None and hedge_delay < 0:
            raise ServiceError(f"hedge_delay must be >= 0, got {hedge_delay}")
        self.nodes = list(nodes)
        self.retry_policy = retry_policy or RetryPolicy()
        self.prefix_len = int(prefix_len)
        self.hedge_delay = hedge_delay
        self._sleep = sleep
        self._clock = clock
        self._rng = rng
        self._lock = threading.Lock()
        self._seen_hashes: set[str] = set()
        self._counts = {
            "routed": 0,
            "live_routed": 0,
            "retries": 0,
            "failovers": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "shed": 0,
        }

    # ------------------------------------------------------------------ #
    # Shard map
    # ------------------------------------------------------------------ #

    def shard_of(self, digest: str) -> int:
        """Owning node index for a ``problem_hash`` (prefix → ring slot)."""
        try:
            prefix = int(digest[: self.prefix_len], 16)
        except ValueError as exc:
            raise ServiceError(f"malformed problem hash {digest!r}") from exc
        return prefix % len(self.nodes)

    def candidates(self, digest: str) -> list[NodeHandle]:
        """Failover preference order: shard owner, then ring successors."""
        primary = self.shard_of(digest)
        n = len(self.nodes)
        return [self.nodes[(primary + i) % n] for i in range(n)]

    # ------------------------------------------------------------------ #
    # Solve path
    # ------------------------------------------------------------------ #

    def solve(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Route one solve request; returns the node's response body.

        Raises :class:`~repro.exceptions.TransientServiceError` when the
        retry policy is exhausted without any node answering (the HTTP
        front-end maps it to 503 + ``Retry-After``), and
        :class:`~repro.exceptions.ServiceError` for malformed payloads
        (400 — never retried).
        """
        problem_payload = payload.get("problem")
        if not isinstance(problem_payload, dict):
            raise ServiceError("request is missing the 'problem' object")
        digest = problem_hash(problem_payload)
        with self._lock:
            self._counts["routed"] += 1
            cache_probable = digest in self._seen_hashes

        def attempt(n: int) -> dict[str, Any]:
            if n > 0:
                self._count("retries")
            return self._sweep(
                digest, lambda client: client.solve(payload), cache_probable
            )

        response = self.retry_policy.run(
            attempt, sleep=self._sleep, clock=self._clock, rng=self._rng
        )
        with self._lock:
            self._seen_hashes.add(digest)
        return response

    def solve_batch(self, payloads: Any) -> list[dict[str, Any]]:
        """Route a batch; responses in input order, errors isolated per item."""
        if not isinstance(payloads, (list, tuple)):
            raise ServiceError("'requests' must be an array of solve requests")
        responses: list[dict[str, Any]] = []
        for item in payloads:
            try:
                responses.append(self.solve(item))
            except ReproError as exc:
                responses.append(error_payload(exc))
        return responses

    # ------------------------------------------------------------------ #
    # Live-workflow path (stateful: sharded by workflow id, never hedged)
    # ------------------------------------------------------------------ #

    def register_workflow(self, payload: Any) -> dict[str, Any]:
        """Route a workflow registration to the id's shard owner.

        A registration without a ``workflow_id`` gets the content-derived
        id injected *here*, before forwarding — the router must shard by
        the same id the node will register under, and a failover retry
        must re-derive the identical id to land on the same log.
        """
        if not isinstance(payload, Mapping):
            raise ServiceError("registration payload must be a JSON object")
        payload = dict(payload)
        workflow_id = payload.get("workflow_id")
        if workflow_id is None:
            problem_payload = payload.get("problem")
            if not isinstance(problem_payload, Mapping):
                raise ServiceError("registration is missing the 'problem' object")
            budget = payload.get("budget")
            if isinstance(budget, bool) or not isinstance(budget, (int, float)):
                raise ServiceError("registration field 'budget' must be a number")
            params = payload.get("params") or {}
            if not isinstance(params, Mapping):
                raise ServiceError("registration field 'params' must be an object")
            workflow_id = derive_workflow_id(
                problem_payload,
                payload.get("algorithm", CriticalGreedyScheduler.name),
                float(budget),
                params,
            )
            payload["workflow_id"] = workflow_id
        elif not isinstance(workflow_id, str) or not workflow_id:
            raise ServiceError(
                "registration field 'workflow_id' must be a non-empty string"
            )
        return self._route_live(
            workflow_id, lambda client: client.register_workflow(payload)
        )

    def workflow_event(self, workflow_id: str, payload: Any) -> dict[str, Any]:
        """Route one live event to its workflow's shard owner."""
        return self._route_live(
            workflow_id, lambda client: client.workflow_event(workflow_id, payload)
        )

    def workflow_status(self, workflow_id: str) -> dict[str, Any]:
        """Route a live status probe to its workflow's shard owner."""
        return self._route_live(
            workflow_id, lambda client: client.workflow_status(workflow_id)
        )

    def _route_live(
        self,
        workflow_id: str,
        request: Callable[[ServiceClient], dict[str, Any]],
    ) -> dict[str, Any]:
        """Retry + failover sweep for a live call (``cache_probable`` is
        pinned ``False`` so the hedging arm can never fire on this path)."""
        digest = workflow_id_digest(workflow_id)
        self._count("live_routed")

        def attempt(n: int) -> dict[str, Any]:
            if n > 0:
                self._count("retries")
            return self._sweep(digest, request, cache_probable=False)

        return self.retry_policy.run(
            attempt, sleep=self._sleep, clock=self._clock, rng=self._rng
        )

    def _sweep(
        self,
        digest: str,
        request: Callable[[ServiceClient], dict[str, Any]],
        cache_probable: bool,
    ) -> dict[str, Any]:
        """One failover sweep over the candidate list (one retry attempt).

        Breaker admission is claimed *lazily*, one node at a time, because
        ``CircuitBreaker.allow()`` consumes a probe slot on a half-open
        breaker — admitting every candidate upfront would leak probe slots
        for nodes an earlier success makes unnecessary to call.
        """
        candidates = self.candidates(digest)
        hedge_armed = cache_probable and self.hedge_delay is not None
        last: TransientServiceError | None = None
        attempted = False
        for position, node in enumerate(candidates):
            if not node.breaker.allow():
                continue
            if attempted:
                self._count("failovers")
            attempted = True
            try:
                if hedge_armed and position + 1 < len(candidates):
                    hedge_armed = False  # hedge only the primary attempt
                    return self._hedged_call(
                        node, candidates[position + 1 :], request
                    )
                return self._call(node, request)
            except TransientServiceError as exc:
                last = exc
        if last is not None:
            raise last
        # Every candidate's breaker rejected the call outright.
        self._count("shed")
        hints = [node.breaker.retry_after_hint() for node in candidates]
        known = [h for h in hints if h is not None]
        raise CircuitOpenError(
            candidates[0].name, retry_after=min(known) if known else None
        )

    def _call(
        self,
        node: NodeHandle,
        request: Callable[[ServiceClient], dict[str, Any]],
    ) -> dict[str, Any]:
        """One request against one node, classifying the outcome."""
        node._count("requests")
        try:
            response = request(node.client)
        except TransientServiceError:
            node._count("errors")
            node.breaker.record_failure()
            raise
        if response.get("status") == "ok":
            node.breaker.record_success()
            return response
        kind = response.get("error", {}).get("kind")
        if kind in _NODE_FAULT_KINDS:
            node._count("errors")
            node.breaker.record_failure()
            raise TransientServiceError(
                f"node {node.name} answered kind={kind!r}: "
                f"{response['error'].get('message', '')}"
            )
        if kind in _BUSY_KINDS:
            # The node is healthy but shedding load; retry (possibly on a
            # sibling) without tripping its breaker.
            node._count("errors")
            raise TransientServiceError(
                f"node {node.name} is busy (kind={kind!r})",
                retry_after=1.0,
            )
        # 400-class outcomes (bad_request, infeasible_budget, timeout …)
        # are the *client's* answer: pass them through untouched.
        node.breaker.record_success()
        return response

    def _hedged_call(
        self,
        primary: NodeHandle,
        fallbacks: Sequence[NodeHandle],
        request: Callable[[ServiceClient], dict[str, Any]],
    ) -> dict[str, Any]:
        """Race ``primary`` against a delayed secondary; first success wins.

        The secondary is the first fallback whose breaker admits the call
        *at hedge-launch time* — claiming its probe slot any earlier would
        waste it whenever the primary answers within ``hedge_delay``.
        """
        results: queue.Queue[
            tuple[str, dict[str, Any] | None, TransientServiceError | None]
        ] = queue.Queue()

        def run(label: str, node: NodeHandle) -> None:
            try:
                results.put((label, self._call(node, request), None))
            except TransientServiceError as exc:
                results.put((label, None, exc))

        threading.Thread(target=run, args=("primary", primary), daemon=True).start()
        launched = 1
        try:
            label, response, error = results.get(timeout=self.hedge_delay)
        except queue.Empty:
            secondary = next(
                (node for node in fallbacks if node.breaker.allow()), None
            )
            if secondary is not None:
                self._count("hedges")
                threading.Thread(
                    target=run, args=("secondary", secondary), daemon=True
                ).start()
                launched = 2
            label, response, error = results.get()
        outcomes = [(label, response, error)]
        while response is None and len(outcomes) < launched:
            label, response, error = results.get()
            outcomes.append((label, response, error))
        if response is None:
            last = outcomes[-1][2]
            assert last is not None
            raise last
        if label == "secondary":
            self._count("hedge_wins")
        return response

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def _count(self, field: str) -> None:
        with self._lock:
            self._counts[field] += 1

    @property
    def ready(self) -> bool:
        """Ready while at least one node's breaker is not open."""
        return any(node.breaker.state != "open" for node in self.nodes)

    def stats(self) -> dict[str, Any]:
        """Router-side counters and per-node breaker snapshots."""
        with self._lock:
            counts = dict(self._counts)
            seen = len(self._seen_hashes)
        return {
            **counts,
            "seen_keys": seen,
            "prefix_len": self.prefix_len,
            "hedge_delay": self.hedge_delay,
            "nodes": {node.name: node.stats() for node in self.nodes},
        }

    def aggregated_stats(self) -> dict[str, Any]:
        """The ``/v1/stats`` body: router view + live per-node ``/v1/stats``.

        Node stats fetches are best-effort: an unreachable node reports
        its transport error instead of failing the aggregation.  The
        ``totals`` section sums the comparable per-node counters so a
        single scrape shows fleet-wide hit rate and degradation.
        """
        per_node: dict[str, Any] = {}
        totals = {
            "requests": 0,
            "degraded": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "quarantined": 0,
        }
        live_totals = {
            "workflows": 0,
            "events": 0,
            "fenced": 0,
            "epoch_claims": 0,
            "checkpoints": 0,
            "compactions": 0,
            "pulls": 0,
            "quarantined": 0,
            "push_failures": 0,
            "replication_lag": 0,
            "max_epoch": 0,
        }
        for node in self.nodes:
            try:
                body = node.client.stats()
            except ServiceError as exc:
                per_node[node.name] = {"error": str(exc)}
                continue
            stats = body.get("stats", {})
            per_node[node.name] = stats
            totals["requests"] += int(stats.get("requests", 0) or 0)
            totals["degraded"] += int(stats.get("degraded", 0) or 0)
            cache = stats.get("cache", {})
            totals["cache_hits"] += int(cache.get("hits", 0) or 0)
            totals["cache_misses"] += int(cache.get("misses", 0) or 0)
            totals["quarantined"] += int(cache.get("quarantined", 0) or 0)
            live = stats.get("live", {})
            for key in live_totals:
                value = int(live.get(key, 0) or 0)
                if key == "max_epoch":
                    # A high-water mark across the fleet, not a sum.
                    live_totals[key] = max(live_totals[key], value)
                else:
                    live_totals[key] += value
        totals["live"] = live_totals
        return {"router": self.stats(), "nodes": per_node, "totals": totals}


# --------------------------------------------------------------------- #
# HTTP front-end (`repro route`)
# --------------------------------------------------------------------- #


class RouterRequestHandler(ServiceRequestHandler):
    """The node handler's routes, re-targeted at a :class:`ShardRouter`."""

    server_version = "repro-router/1"

    @property
    def router(self) -> ShardRouter:
        return self.server.router  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/v1/healthz":
            self._send_json(200, {"status": "ok"})
        elif self.path == "/v1/readyz":
            ready = self.router.ready
            body: dict[str, Any] = {
                "status": "ok" if ready else "error",
                "ready": ready,
            }
            if not ready:
                body["error"] = {
                    "kind": "not_ready",
                    "message": "every node's circuit breaker is open",
                }
            self._send_json(200 if ready else 503, body, retry_after=not ready)
        elif self.path == "/v1/stats":
            self._send_json(
                200, {"status": "ok", "stats": self.router.aggregated_stats()}
            )
        elif (match := _WORKFLOW_STATUS_RE.match(self.path)) is not None:
            try:
                response = self.router.workflow_status(match.group(1))
            except Exception as exc:
                self._send_error_payload(exc)
                return
            status = _body_status(response)
            self._send_json(status, response, retry_after=status == 503)
        else:
            self._send_json(
                404,
                {
                    "status": "error",
                    "error": {"kind": "not_found", "message": f"no route {self.path}"},
                },
            )

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        try:
            if self.path == "/v1/solve":
                response = self.router.solve(self._read_body())
            elif self.path == "/v1/solve_batch":
                body = self._read_body()
                response = {
                    "status": "ok",
                    "results": self.router.solve_batch(body.get("requests")),
                }
            elif self.path == "/v1/workflows":
                response = self.router.register_workflow(self._read_body())
            elif (match := _WORKFLOW_EVENTS_RE.match(self.path)) is not None:
                response = self.router.workflow_event(
                    match.group(1), self._read_body()
                )
            else:
                self._send_json(
                    404,
                    {
                        "status": "error",
                        "error": {
                            "kind": "not_found",
                            "message": f"no route {self.path}",
                        },
                    },
                )
                return
        except Exception as exc:
            self._send_error_payload(exc)
            return
        status = _body_status(response)
        self._send_json(status, response, retry_after=status == 503)


def _body_status(response: dict[str, Any]) -> int:
    """HTTP status for a routed response body (pass-through mapping)."""
    if response.get("status") != "error":
        return 200
    kind = response.get("error", {}).get("kind")
    if kind in ("overloaded", "not_ready", "upstream_unavailable"):
        return 503
    if kind == "timeout":
        return 504
    if kind == "internal":
        return 500
    if kind == "not_found":
        return 404
    if kind == "conflict":
        return 409
    return 400


def make_router_server(
    router: ShardRouter,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Bind (but do not start) the HTTP server around ``router``."""
    server = ThreadingHTTPServer((host, port), RouterRequestHandler)
    server.daemon_threads = True
    server.router = router  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def serve_router(
    node_urls: Sequence[str],
    *,
    host: str = "127.0.0.1",
    port: int = 8433,
    prefix_len: int = 2,
    max_retries: int = 3,
    retry_deadline: float | None = None,
    hedge_delay: float | None = None,
    breaker_threshold: int = 5,
    breaker_reset: float = 5.0,
    node_timeout: float = 30.0,
    verbose: bool = False,
) -> int:
    """Blocking router loop behind ``repro route``; returns the exit code."""
    nodes = [
        NodeHandle(
            url,
            timeout=node_timeout,
            breaker=CircuitBreaker(
                failure_threshold=breaker_threshold, reset_timeout=breaker_reset
            ),
        )
        for url in node_urls
    ]
    router = ShardRouter(
        nodes,
        retry_policy=RetryPolicy(max_retries=max_retries, deadline=retry_deadline),
        prefix_len=prefix_len,
        hedge_delay=hedge_delay,
    )
    server = make_router_server(router, host=host, port=port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro.router listening on http://{bound_host}:{bound_port} "
        f"(nodes={len(nodes)}, prefix_len={prefix_len}, "
        f"retries={max_retries}"
        + (f", hedge_delay={hedge_delay:g}s" if hedge_delay is not None else "")
        + ")",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        final = dumps(router.stats())
        sys.stderr.write(f"repro.router final stats: {final}\n")
    return 0
