"""End-to-end service smoke test (the CI ``service-smoke`` job).

Launches ``repro serve`` as a real subprocess on an ephemeral port,
submits the example workload twice — the second time with the module list
*and* the VM-type catalog permuted — and asserts:

* both responses carry valid, budget-respecting schedules;
* the second response is a cache hit with a byte-identical schedule
  payload (canonical hashing defeated the permutation);
* ``/v1/stats`` reports at least one hit and one miss.

The final ``/v1/stats`` body is written to ``--out`` so CI can upload it
as an artifact.  Exits non-zero on any violated assertion.

Usage::

    python -m repro.service.smoke --out service_stats.json
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import time
from collections.abc import Sequence
from typing import Any

from repro.core.serialize import problem_to_dict
from repro.exceptions import ServiceError
from repro.service.codec import dumps
from repro.service.http import ServiceClient

__all__ = ["main"]

_LISTEN_RE = re.compile(r"listening on http://([\w.\-]+):(\d+)")


def _permuted(payload: dict[str, Any]) -> dict[str, Any]:
    """The same instance with modules and VM types listed in reverse."""
    permuted = json.loads(json.dumps(payload))
    permuted["workflow"]["modules"] = list(reversed(permuted["workflow"]["modules"]))
    permuted["workflow"]["edges"] = list(reversed(permuted["workflow"]["edges"]))
    permuted["catalog"] = list(reversed(permuted["catalog"]))
    return permuted


def _fail(message: str) -> int:
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    return 1


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.service.smoke")
    parser.add_argument("--out", default="service_stats.json")
    parser.add_argument("--budget", type=float, default=57.0)
    parser.add_argument("--startup-timeout", type=float, default=30.0)
    args = parser.parse_args(argv)

    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        assert server.stdout is not None
        line = server.stdout.readline()
        match = _LISTEN_RE.search(line)
        if not match:
            return _fail(f"server did not announce a port (got {line!r})")
        client = ServiceClient(f"http://127.0.0.1:{match.group(2)}")

        deadline = time.monotonic() + args.startup_timeout
        while True:
            try:
                client.healthz()
                break
            except ServiceError:
                if time.monotonic() > deadline:
                    return _fail("server never became healthy")
                time.sleep(0.1)

        from repro.workloads import example_problem

        payload = problem_to_dict(example_problem())
        request = {"problem": payload, "budget": args.budget}
        permuted_request = {"problem": _permuted(payload), "budget": args.budget}

        first = client.solve(request)
        if first.get("status") != "ok":
            return _fail(f"first solve failed: {first}")
        if first.get("cache_hit") is not False:
            return _fail(f"first solve should be a miss: {first}")
        if first["result"]["cost"] > args.budget + 1e-9:
            return _fail(
                f"schedule cost {first['result']['cost']} exceeds "
                f"budget {args.budget}"
            )

        second = client.solve(permuted_request)
        if second.get("status") != "ok":
            return _fail(f"permuted solve failed: {second}")
        if second.get("cache_hit") is not True:
            return _fail(
                "permuted resubmission was not a cache hit "
                f"(canonical hashing broke): {second}"
            )
        first_schedule = dumps(first["result"]["schedule"])
        second_schedule = dumps(second["result"]["schedule"])
        if first_schedule != second_schedule:
            return _fail(
                "replayed schedule payload is not byte-identical:\n"
                f"  first:  {first_schedule}\n  second: {second_schedule}"
            )

        stats = client.stats()["stats"]
        cache = stats["cache"]
        if cache["hits"] < 1 or cache["misses"] < 1:
            return _fail(f"expected >=1 hit and >=1 miss, got {cache}")

        with open(args.out, "w") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)
        print(
            f"SMOKE OK: miss+hit verified, schedule payload byte-identical; "
            f"stats written to {args.out}"
        )
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":  # pragma: no cover - CI entry point
    sys.exit(main())
