"""Content-addressed cache keys for scheduling requests.

The memoizing result store (:mod:`repro.service.cache`) is keyed by
``(problem_hash, algorithm, params_hash)``:

* :func:`problem_hash` — SHA-256 of a *canonical* instance payload.  The
  canonical form sorts modules by name, edges by ``(src, dst)`` and VM
  types by name (permuting any measured execution-time vectors along with
  the catalog so they stay aligned), and drops the cosmetic workflow
  display name.  Two requests that describe the same instance with their
  modules or VM types listed in any order therefore hash identically —
  the property that turns re-submissions into cache hits.
* :func:`params_hash` — SHA-256 over the algorithm name, the budget and
  the scheduler's declared knobs
  (:func:`repro.algorithms.base.declared_params`), so ``engine="fast"``
  and ``engine="reference"`` runs never share a cache slot.

Hashes are plain hex strings; :class:`RequestKey` bundles the triple and
derives the file name for the disk cache tier.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping
from typing import Any, NamedTuple

from repro.core.problem import MedCCProblem
from repro.core.serialize import problem_to_dict
from repro.exceptions import ServiceError
from repro.service.codec import dumps

__all__ = [
    "RequestKey",
    "canonical_problem_payload",
    "problem_hash",
    "params_hash",
    "request_key",
    "workflow_id_digest",
    "derive_workflow_id",
]


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def canonical_problem_payload(
    problem: MedCCProblem | Mapping[str, Any],
) -> dict[str, Any]:
    """The order-invariant canonical form of an instance payload.

    Accepts a constructed problem or a ``problem_to_dict()``-shaped
    mapping.  The result is a plain dict whose rendering via
    :func:`repro.service.codec.dumps` is identical for any module/VM-type
    listing order of the same instance.
    """
    if isinstance(problem, MedCCProblem):
        payload: Mapping[str, Any] = problem_to_dict(problem)
    else:
        payload = problem
    try:
        workflow = payload["workflow"]
        modules = sorted(
            (dict(m) for m in workflow.get("modules", ())),
            key=lambda m: str(m.get("name", "")),
        )
        edges = sorted(
            (dict(e) for e in workflow.get("edges", ())),
            key=lambda e: (str(e.get("src", "")), str(e.get("dst", ""))),
        )
        types = [dict(t) for t in payload.get("catalog", ())]
    except (AttributeError, KeyError, TypeError) as exc:
        raise ServiceError(f"malformed problem payload: {exc}") from exc

    # Sort the catalog by type name, remembering the permutation so the
    # per-type measured execution-time vectors stay index-aligned.
    order = sorted(range(len(types)), key=lambda j: str(types[j].get("name", "")))
    canonical_types = [types[j] for j in order]

    measured = payload.get("measured_te")
    canonical_measured = None
    if measured:
        canonical_measured = {}
        for name in sorted(measured):
            times = list(measured[name])
            if len(times) != len(types):
                raise ServiceError(
                    f"measured_te[{name!r}] has {len(times)} entries for "
                    f"{len(types)} VM types"
                )
            canonical_measured[str(name)] = [float(times[j]) for j in order]

    return {
        "format_version": payload.get("format_version"),
        # The workflow display name is cosmetic: renaming an otherwise
        # identical instance must not defeat memoization.
        "workflow": {"modules": modules, "edges": edges},
        "catalog": canonical_types,
        "billing": payload.get("billing"),
        "transfers": payload.get("transfers"),
        "measured_te": canonical_measured,
    }


def problem_hash(problem: MedCCProblem | Mapping[str, Any]) -> str:
    """SHA-256 content hash of the canonical instance payload."""
    return _sha256(dumps(canonical_problem_payload(problem)))


def params_hash(
    algorithm: str,
    budget: float,
    params: Mapping[str, Any] | None = None,
) -> str:
    """SHA-256 over the algorithm name, budget and declared knobs."""
    body = {
        "algorithm": str(algorithm),
        "budget": float(budget),
        "params": {str(k): params[k] for k in sorted(params)} if params else {},
    }
    try:
        return _sha256(dumps(body))
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"scheduler params are not JSON-serializable: {exc}") from exc


class RequestKey(NamedTuple):
    """The cache key triple for one scheduling request."""

    problem_hash: str
    algorithm: str
    params_hash: str

    def digest(self) -> str:
        """A single stable hex digest (disk-cache file name)."""
        return _sha256("\x1f".join(self))


def request_key(
    problem: MedCCProblem | Mapping[str, Any],
    algorithm: str,
    budget: float,
    params: Mapping[str, Any] | None = None,
) -> RequestKey:
    """Build the full cache key for a (problem, algorithm, budget, params)."""
    return RequestKey(
        problem_hash=problem_hash(problem),
        algorithm=str(algorithm),
        params_hash=params_hash(algorithm, budget, params),
    )


def derive_workflow_id(
    problem: MedCCProblem | Mapping[str, Any],
    algorithm: str,
    budget: float,
    params: Mapping[str, Any] | None = None,
) -> str:
    """Deterministic live-workflow id for a registration request.

    Every party — the registering client, the shard router injecting the
    id before forwarding, and the node creating the state — derives the
    *same* id from the same canonical (problem, algorithm, budget,
    params) tuple, so a retried or re-routed registration lands on the
    existing workflow instead of forking a duplicate.  Truncated to 16
    hex chars: the namespace is one fleet's concurrently-live workflows,
    not a global content store.
    """
    key = request_key(problem, algorithm, budget, params)
    return _sha256("workflow\x1f" + key.digest())[:16]


def workflow_id_digest(workflow_id: str) -> str:
    """Routing digest for a workflow id (client-chosen ids may not be hex)."""
    return _sha256("workflow-route\x1f" + str(workflow_id))
