"""The memoizing result store: thread-safe LRU with an optional disk tier.

Entries are JSON-compatible result payloads (the ``result`` fragment of a
service response) keyed by :class:`~repro.service.keys.RequestKey`.
Storing the *encoded* payload — not live objects — is deliberate: a cache
hit replays exactly the bytes the first solve produced, so two equivalent
requests observe byte-identical schedules regardless of which one was
computed.

The in-memory tier is a bounded LRU (``OrderedDict`` + lock) with
hit/miss/eviction counters.  The optional disk tier writes one atomic
JSON file per entry (``<digest>.json`` written via a temp file +
``os.replace``) under a cache directory, so results survive restarts and
can be shared by multiple service processes on one host; in-memory misses
fall through to disk and re-populate the LRU on success.

Crash safety: a node killed mid-write (or a disk hiccup) can leave a
corrupt or truncated entry behind.  Such files must never take the node
down or poison lookups — they are *quarantined*: moved to
``<cache_dir>/quarantine/``, logged to stderr, and counted in the
``quarantined`` stats field.  The startup scan sweeps the whole directory
once so a crashed node boots clean; lookups quarantine lazily whatever
the scan could not see (e.g. entries written by a sibling node that
crashed later).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro.exceptions import ServiceError
from repro.service.codec import dumps
from repro.service.keys import RequestKey

__all__ = ["CacheStats", "ResultCache"]


class CacheStats:
    """A point-in-time snapshot of cache counters (plain attributes)."""

    def __init__(
        self,
        *,
        size: int,
        capacity: int,
        hits: int,
        misses: int,
        evictions: int,
        disk_hits: int,
        disk_entries: int | None,
        quarantined: int = 0,
    ) -> None:
        self.size = size
        self.capacity = capacity
        self.hits = hits
        self.misses = misses
        self.evictions = evictions
        self.disk_hits = disk_hits
        self.disk_entries = disk_entries
        self.quarantined = quarantined

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either tier (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible rendering for ``/v1/stats``."""
        return {
            "size": self.size,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "disk_hits": self.disk_hits,
            "disk_entries": self.disk_entries,
            "quarantined": self.quarantined,
        }


class ResultCache:
    """Thread-safe LRU of result payloads, optionally backed by disk.

    Parameters
    ----------
    capacity:
        Maximum number of in-memory entries; the least-recently-used entry
        is evicted when a put would exceed it.
    cache_dir:
        Optional directory for the persistent tier.  Created on first use;
        entries are atomic JSON files named by the key digest.
    """

    def __init__(self, capacity: int = 1024, cache_dir: str | Path | None = None) -> None:
        if capacity <= 0:
            raise ServiceError(f"cache capacity must be positive, got {capacity}")
        self._capacity = int(capacity)
        self._dir = Path(cache_dir) if cache_dir is not None else None
        self._lock = threading.Lock()
        self._entries: OrderedDict[RequestKey, dict[str, Any]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_hits = 0
        self._quarantined = 0
        self._startup_scan()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #

    def get(self, key: RequestKey) -> dict[str, Any] | None:
        """Return the cached payload for ``key``, or ``None`` on a miss.

        A memory hit refreshes LRU recency; a memory miss consults the
        disk tier (when configured) and promotes any hit back into memory.
        Counters: a lookup satisfied by either tier is one *hit*; a lookup
        satisfied by neither is one *miss*.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return dict(entry)
        payload = self._disk_get(key)
        with self._lock:
            if payload is not None:
                self._hits += 1
                self._disk_hits += 1
                self._put_locked(key, payload)
                return dict(payload)
            self._misses += 1
            return None

    def put(self, key: RequestKey, payload: dict[str, Any]) -> None:
        """Store a result payload under ``key`` (both tiers)."""
        with self._lock:
            self._put_locked(key, dict(payload))
        self._disk_put(key, payload)

    def _put_locked(self, key: RequestKey, payload: dict[str, Any]) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = payload
            return
        self._entries[key] = payload
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def clear(self) -> None:
        """Drop every in-memory entry (disk files are left in place)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------ #
    # Disk tier
    # ------------------------------------------------------------------ #

    def _disk_path(self, key: RequestKey) -> Path | None:
        if self._dir is None:
            return None
        return self._dir / f"{key.digest()}.json"

    def _startup_scan(self) -> None:
        """Quarantine corrupt disk entries at boot instead of failing later.

        A node killed mid-write (the chaos harness does exactly this) may
        leave truncated JSON behind; sweeping once at construction means a
        restarted node starts serving immediately with a clean tier.
        """
        if self._dir is None or not self._dir.is_dir():
            return
        for path in sorted(self._dir.glob("*.json")):
            if path.name.startswith("."):
                continue
            try:
                payload = json.loads(path.read_text())
                ok = isinstance(payload, dict)
            except ValueError:
                ok = False
            except OSError:
                continue
            if not ok:
                self._quarantine(path)

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry to ``<cache_dir>/quarantine/`` and count it."""
        assert self._dir is not None
        target = self._dir / "quarantine" / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                return  # cannot even remove it; lookups keep treating it as a miss
        with self._lock:
            self._quarantined += 1
        sys.stderr.write(
            f"repro.service.cache: quarantined corrupt cache entry "
            f"{path.name} -> {target}\n"
        )

    def _disk_get(self, key: RequestKey) -> dict[str, Any] | None:
        path = self._disk_path(key)
        if path is None:
            return None
        try:
            payload = json.loads(path.read_text())
        except OSError:
            # Missing/unreadable file is a plain miss.
            return None
        except ValueError:
            # A torn/corrupt entry (crashed writer, disk fault) must never
            # poison lookups or crash the node: quarantine it and miss.
            self._quarantine(path)
            return None
        if not isinstance(payload, dict):
            self._quarantine(path)
            return None
        return payload

    def _disk_put(self, key: RequestKey, payload: dict[str, Any]) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=path.parent
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(dumps(payload))
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError as exc:
            raise ServiceError(f"cannot persist cache entry to {path}: {exc}") from exc

    def flush(self) -> int:
        """Ensure every in-memory entry is present on disk; returns writes.

        Disk puts are synchronous, so this is normally a no-op; it backs
        the graceful-drain contract ("flush the disk cache") by catching
        entries whose earlier disk write failed transiently (e.g. a full
        disk that has since recovered).  Without a disk tier it returns 0.
        """
        if self._dir is None:
            return 0
        with self._lock:
            snapshot = list(self._entries.items())
        written = 0
        for key, payload in snapshot:
            path = self._disk_path(key)
            assert path is not None
            if not path.exists():
                self._disk_put(key, payload)
                written += 1
        return written

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> CacheStats:
        """A consistent snapshot of all counters."""
        disk_entries: int | None = None
        if self._dir is not None:
            try:
                disk_entries = sum(
                    1 for p in self._dir.glob("*.json") if not p.name.startswith(".")
                )
            except OSError:
                disk_entries = None
        with self._lock:
            return CacheStats(
                size=len(self._entries),
                capacity=self._capacity,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                disk_hits=self._disk_hits,
                disk_entries=disk_entries,
                quarantined=self._quarantined,
            )
