"""Canonical, version-stamped JSON codecs for the service wire format.

Every payload that crosses the service boundary — requests, cached
results, HTTP responses — is produced by these encoders and read back by
the matching decoders.  Three properties hold by construction:

* **Deterministic**: :func:`dumps` renders with sorted keys and compact
  separators, so encoding the same object twice yields byte-identical
  text.  This is what makes "resubmitting the same problem returns a
  byte-identical schedule payload" testable.
* **Version-stamped**: every envelope carries ``{"kind": ..., "version":
  CODEC_VERSION}``; decoders reject unknown kinds and future versions
  with :class:`~repro.exceptions.ServiceError` instead of guessing.
* **Round-trippable**: ``decode(encode(x)) == x`` for
  :class:`~repro.core.workflow.Workflow`,
  :class:`~repro.core.vm.VMTypeCatalog`,
  :class:`~repro.core.problem.MedCCProblem` and (given the catalog)
  :class:`~repro.core.schedule.Schedule` — property-tested in
  ``tests/service/test_properties.py``.

Schedules are encoded by VM-type *name*, not index.  Names are invariant
under catalog reordering, so a cached result replayed for a permuted-but-
equivalent request (see :mod:`repro.service.keys`) is byte-identical and
still decodes correctly against the caller's own catalog order.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from typing import Any

from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.core.serialize import problem_from_dict, problem_to_dict
from repro.core.vm import VMType, VMTypeCatalog
from repro.core.workflow import Workflow
from repro.exceptions import ReproError, ServiceError

__all__ = [
    "CODEC_VERSION",
    "dumps",
    "loads",
    "encode_workflow",
    "decode_workflow",
    "encode_catalog",
    "decode_catalog",
    "encode_problem",
    "decode_problem",
    "encode_schedule",
    "decode_schedule",
    "encode_result_fragment",
    "event_digest",
]

#: Wire-format version stamped into every envelope this module emits.
CODEC_VERSION = 1


def dumps(payload: Mapping[str, Any]) -> str:
    """Canonical JSON text: sorted keys, compact separators, no NaN.

    The single rendering function every service component uses; two calls
    on equal payloads produce byte-identical text, which is what the
    cache's "identical schedule payload on replay" guarantee rests on.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


def loads(text: str | bytes) -> dict[str, Any]:
    """Parse JSON text into a dict, mapping parse errors to ServiceError."""
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ServiceError(f"malformed JSON payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServiceError(
            f"expected a JSON object at the top level, got {type(payload).__name__}"
        )
    return payload


def _envelope(kind: str, body: Mapping[str, Any]) -> dict[str, Any]:
    payload: dict[str, Any] = {"kind": kind, "version": CODEC_VERSION}
    payload.update(body)
    return payload


def _open_envelope(payload: Mapping[str, Any], kind: str) -> Mapping[str, Any]:
    """Validate the ``kind``/``version`` stamp of a decoded payload."""
    got_kind = payload.get("kind")
    if got_kind != kind:
        raise ServiceError(f"expected a {kind!r} payload, got kind={got_kind!r}")
    version = payload.get("version")
    if version != CODEC_VERSION:
        raise ServiceError(
            f"unsupported {kind} payload version {version!r} "
            f"(this build reads version {CODEC_VERSION})"
        )
    return payload


# --------------------------------------------------------------------- #
# Workflow
# --------------------------------------------------------------------- #


def encode_workflow(workflow: Workflow) -> dict[str, Any]:
    """Encode a workflow (modules in topo order, edges sorted by key)."""
    return _envelope("workflow", {"workflow": workflow.to_dict()})


def decode_workflow(payload: Mapping[str, Any]) -> Workflow:
    """Inverse of :func:`encode_workflow`."""
    body = _open_envelope(payload, "workflow")
    try:
        return Workflow.from_dict(body["workflow"])
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"cannot decode workflow payload: {exc}") from exc


# --------------------------------------------------------------------- #
# VM-type catalog
# --------------------------------------------------------------------- #


def encode_catalog(catalog: VMTypeCatalog) -> dict[str, Any]:
    """Encode a catalog preserving declaration order (indices are semantic)."""
    return _envelope(
        "catalog",
        {
            "types": [
                {
                    "name": t.name,
                    "power": t.power,
                    "rate": t.rate,
                    "startup_time": t.startup_time,
                    "startup_cost": t.startup_cost,
                }
                for t in catalog
            ]
        },
    )


def decode_catalog(payload: Mapping[str, Any]) -> VMTypeCatalog:
    """Inverse of :func:`encode_catalog`."""
    body = _open_envelope(payload, "catalog")
    try:
        return VMTypeCatalog(
            [
                VMType(
                    name=str(spec["name"]),
                    power=float(spec["power"]),
                    rate=float(spec["rate"]),
                    startup_time=float(spec.get("startup_time", 0.0)),
                    startup_cost=float(spec.get("startup_cost", 0.0)),
                )
                for spec in body["types"]
            ]
        )
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"cannot decode catalog payload: {exc}") from exc


# --------------------------------------------------------------------- #
# Problem instance
# --------------------------------------------------------------------- #


def encode_problem(problem: MedCCProblem) -> dict[str, Any]:
    """Encode a full MED-CC instance.

    Delegates the instance body to :mod:`repro.core.serialize` (the
    ``repro generate``/``solve --file`` format) so on-disk instance files
    and service requests share one schema, and adds the service envelope.
    """
    return _envelope("problem", {"problem": problem_to_dict(problem)})


def decode_problem(payload: Mapping[str, Any]) -> MedCCProblem:
    """Inverse of :func:`encode_problem`.

    Also accepts a bare ``problem_to_dict()`` body (no envelope) so
    clients can POST instance files written by ``repro generate`` as-is.
    """
    if payload.get("kind") == "problem":
        body = dict(_open_envelope(payload, "problem").get("problem") or {})
    else:
        body = dict(payload)
    try:
        return problem_from_dict(body)
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"cannot decode problem payload: {exc}") from exc


# --------------------------------------------------------------------- #
# Schedule
# --------------------------------------------------------------------- #


def encode_schedule(schedule: Schedule, catalog: VMTypeCatalog) -> dict[str, Any]:
    """Encode a schedule as module → VM-type *name* assignments.

    Name-based assignments survive catalog reordering (a permuted catalog
    yields the same bytes), which keeps cached responses replayable for
    any equivalent request ordering.
    """
    return _envelope(
        "schedule",
        {"assignment": schedule.as_type_names(catalog.names)},
    )


def decode_schedule(
    payload: Mapping[str, Any], catalog: VMTypeCatalog
) -> Schedule:
    """Inverse of :func:`encode_schedule`, resolved against ``catalog``."""
    body = _open_envelope(payload, "schedule")
    assignment = body.get("assignment")
    if not isinstance(assignment, Mapping):
        raise ServiceError("schedule payload carries no 'assignment' mapping")
    try:
        return Schedule(
            {
                str(module): catalog.index_of(str(type_name))
                for module, type_name in assignment.items()
            }
        )
    except ReproError as exc:
        raise ServiceError(f"cannot decode schedule payload: {exc}") from exc


# --------------------------------------------------------------------- #
# Result fragment
# --------------------------------------------------------------------- #


def encode_result_fragment(
    result: Any,
    catalog: VMTypeCatalog,
    *,
    engine: str = "default",
    degraded: bool = False,
    degraded_reason: str | None = None,
) -> dict[str, Any]:
    """Encode a ``SchedulerResult`` as the ``result`` response fragment.

    This is the one shape the cache stores and every response replays;
    ``repro solve --json`` emits it too, so offline and service outputs
    stay diffable.  The ``degraded``/``degraded_reason`` fields are only
    present on degraded fallback responses (a solve that blew its
    deadline and fell back to the least-cost schedule) — absent keys keep
    normal payloads byte-identical to pre-fabric builds.
    """
    fragment: dict[str, Any] = {
        "algorithm": result.algorithm,
        "engine": str(engine),
        "schedule": encode_schedule(result.schedule, catalog),
        "cost": result.total_cost,
        "makespan": result.med,
        "steps": len(result.steps),
    }
    if degraded:
        fragment["degraded"] = True
        fragment["degraded_reason"] = degraded_reason or "deadline exceeded"
    return fragment


def event_digest(payload: object) -> str:
    """Canonical SHA-256 digest of a live-workflow event payload.

    The idempotency contract of ``POST /v1/workflows/<id>/events`` keys
    replay detection on this digest: a retried event is *identical* iff
    its canonical rendering matches the one recorded at that sequence
    number (key order never matters; any value change does).  Raises
    :class:`~repro.exceptions.ServiceError` on non-JSON payloads so the
    HTTP layer reports 400, not 500.
    """
    if not isinstance(payload, Mapping):
        raise ServiceError("event payload must be a JSON object")
    try:
        text = dumps(payload)
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"event payload is not JSON-serializable: {exc}") from exc
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
