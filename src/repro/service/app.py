"""The scheduling service: parse → memoize → dispatch → respond.

:class:`SchedulingService` is the transport-agnostic core behind the HTTP
front-end (:mod:`repro.service.http`) and the ``repro submit`` client:

1. a request payload (canonical wire format, :mod:`repro.service.codec`)
   is parsed into a problem, a configured scheduler and a budget;
2. the content-addressed key (:mod:`repro.service.keys`) is looked up in
   the memoizing result store (:mod:`repro.service.cache`) — a hit
   replays the stored result fragment byte-for-byte with
   ``cache_hit: true``;
3. a miss is dispatched to the bounded job executor
   (:mod:`repro.service.executor`), which runs the registered scheduler,
   encodes the result, and populates both cache tiers;
4. ``stats()`` aggregates cache hit-rate, executor counters and p50/p95
   latencies for ``GET /v1/stats``.

Fabric lifecycle (see ``docs/service.md`` "Resilience & multi-node"):
:attr:`SchedulingService.ready` distinguishes readiness from liveness
(``/v1/readyz`` vs ``/v1/healthz``), :meth:`SchedulingService.drain`
performs the graceful shutdown contract (reject new work, finish
in-flight jobs, flush the disk cache), and ``degrade_on_timeout=True``
turns a per-job deadline overrun into a least-cost fallback response
marked ``degraded: true`` instead of a 504.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from collections.abc import Mapping
from concurrent.futures import Future
from typing import Any

from repro.algorithms import declared_params, get_scheduler
from repro.core.problem import MedCCProblem
from repro.exceptions import (
    InfeasibleBudgetError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
    TransientServiceError,
)
from repro.service import codec
from repro.service.cache import ResultCache
from repro.service.executor import JobExecutor, percentile
from repro.service.keys import RequestKey, params_hash, problem_hash

__all__ = ["ParsedRequest", "SchedulingService", "error_payload"]

#: Algorithm used when a request does not name one.
DEFAULT_ALGORITHM = "critical-greedy"


@dataclasses.dataclass
class ParsedRequest:
    """A decoded, validated solve request ready for lookup or dispatch."""

    problem: MedCCProblem
    scheduler: Any
    algorithm: str
    budget: float
    timeout: float | None
    key: RequestKey


def error_payload(exc: BaseException) -> dict[str, Any]:
    """The canonical error body (shared by HTTP responses and batch items)."""
    if isinstance(exc, ServiceOverloadedError):
        kind = "overloaded"
    elif isinstance(exc, ServiceTimeoutError):
        kind = "timeout"
    elif isinstance(exc, TransientServiceError):
        # Router-side exhaustion: every retry/failover against the fleet
        # failed.  503-shaped so clients know the request itself was fine.
        kind = "upstream_unavailable"
    elif isinstance(exc, InfeasibleBudgetError):
        kind = "infeasible_budget"
    elif isinstance(exc, (ServiceError, ReproError)):
        kind = "bad_request"
    else:
        kind = "internal"
    return {
        "status": "error",
        "error": {"kind": kind, "type": type(exc).__name__, "message": str(exc)},
    }


class SchedulingService:
    """Cached, concurrent MED-CC solve service (transport-agnostic core).

    Parameters
    ----------
    max_workers / queue_size / default_timeout / use_processes:
        Forwarded to the :class:`~repro.service.executor.JobExecutor`.
    cache_size / cache_dir:
        Forwarded to the :class:`~repro.service.cache.ResultCache`;
        ``cache_dir`` enables the persistent disk tier.
    latency_window:
        How many recent end-to-end request latencies to keep for the
        p50/p95 figures in :meth:`stats`.
    degrade_on_timeout:
        When ``True``, a solve that exceeds its per-job deadline answers
        with the least-cost schedule marked ``degraded: true`` (graceful
        degradation) instead of raising
        :class:`~repro.exceptions.ServiceTimeoutError` (HTTP 504).
        Degraded responses are never cached, so a later retry can still
        compute the real answer.
    """

    def __init__(
        self,
        *,
        max_workers: int = 4,
        queue_size: int = 64,
        cache_size: int = 1024,
        cache_dir: str | None = None,
        default_timeout: float | None = None,
        use_processes: bool = False,
        latency_window: int = 4096,
        degrade_on_timeout: bool = False,
    ) -> None:
        self.cache = ResultCache(capacity=cache_size, cache_dir=cache_dir)
        self.executor = JobExecutor(
            self._solve_job,
            max_workers=max_workers,
            queue_size=queue_size,
            default_timeout=default_timeout,
            use_processes=use_processes,
            annotate=lambda response: {
                "engine": response.get("result", {}).get("engine"),
                "cache_hit": response.get("cache_hit"),
            },
        )
        self.degrade_on_timeout = bool(degrade_on_timeout)
        self._started_at = time.time()
        self._lock = threading.Lock()
        self._request_latencies: deque[float] = deque(maxlen=latency_window)
        self._requests = 0
        self._degraded = 0
        self._draining = False

    # ------------------------------------------------------------------ #
    # Request parsing
    # ------------------------------------------------------------------ #

    def parse_request(self, payload: Mapping[str, Any]) -> ParsedRequest:
        """Decode and validate one solve-request payload.

        Request shape::

            {
              "problem":   {...},          # codec problem envelope or bare
                                           # problem_to_dict() body
              "budget":    57.0,           # required
              "algorithm": "critical-greedy",   # optional
              "params":    {"engine": "fast"},  # optional scheduler knobs
              "timeout":   10.0            # optional per-job timeout (s)
            }
        """
        if not isinstance(payload, Mapping):
            raise ServiceError("request body must be a JSON object")
        problem_payload = payload.get("problem")
        if not isinstance(problem_payload, Mapping):
            raise ServiceError("request is missing the 'problem' object")
        if "budget" not in payload:
            raise ServiceError("request is missing the required 'budget' field")
        try:
            budget = float(payload["budget"])
        except (TypeError, ValueError):
            raise ServiceError(
                f"budget must be a number, got {payload['budget']!r}"
            ) from None

        algorithm = str(payload.get("algorithm") or DEFAULT_ALGORITHM)
        scheduler = get_scheduler(algorithm)

        params = payload.get("params") or {}
        if not isinstance(params, Mapping):
            raise ServiceError("'params' must be an object of scheduler knobs")
        if params:
            known = declared_params(scheduler)
            unknown = sorted(set(params) - set(known))
            if unknown:
                raise ServiceError(
                    f"unknown parameter(s) {unknown} for algorithm "
                    f"{algorithm!r}; declared knobs: {sorted(known)}"
                )
            try:
                scheduler = dataclasses.replace(scheduler, **dict(params))
            except (TypeError, ValueError) as exc:
                raise ServiceError(
                    f"invalid parameters for {algorithm!r}: {exc}"
                ) from exc

        timeout = payload.get("timeout")
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError):
                raise ServiceError(
                    f"timeout must be a number, got {timeout!r}"
                ) from None

        problem = codec.decode_problem(problem_payload)
        # Hash the *full* effective knob set (not just the client-supplied
        # subset) so explicit defaults and omitted defaults collide.
        key = RequestKey(
            problem_hash=problem_hash(problem_payload),
            algorithm=algorithm,
            params_hash=params_hash(algorithm, budget, declared_params(scheduler)),
        )
        return ParsedRequest(
            problem=problem,
            scheduler=scheduler,
            algorithm=algorithm,
            budget=budget,
            timeout=timeout,
            key=key,
        )

    # ------------------------------------------------------------------ #
    # Solve paths
    # ------------------------------------------------------------------ #

    def _solve_job(self, parsed: ParsedRequest) -> dict[str, Any]:
        """Executor job body: run the scheduler, encode, memoize."""
        result = parsed.scheduler.solve(parsed.problem, parsed.budget)
        fragment = codec.encode_result_fragment(
            result,
            parsed.problem.catalog,
            engine=str(getattr(parsed.scheduler, "engine", "default")),
        )
        self.cache.put(parsed.key, fragment)
        return self._response(parsed, fragment, cache_hit=False)

    def _degraded_response(
        self, parsed: ParsedRequest, exc: ServiceTimeoutError
    ) -> dict[str, Any]:
        """Least-cost fallback for a solve that blew its deadline.

        The least-cost schedule is feasible for every feasible budget and
        costs O(m·n) to build, so it can run synchronously on the intake
        thread.  The response is marked ``degraded: true`` (top level and
        in the fragment) and is *not* cached — a retry after the overload
        passes still computes the real schedule.
        """
        from repro.algorithms.least_cost import LeastCostScheduler

        try:
            result = LeastCostScheduler().solve(parsed.problem, parsed.budget)
        except ReproError:
            raise exc from None
        fragment = codec.encode_result_fragment(
            result,
            parsed.problem.catalog,
            engine="degraded",
            degraded=True,
            degraded_reason=str(exc),
        )
        with self._lock:
            self._degraded += 1
        response = self._response(parsed, fragment, cache_hit=False)
        response["degraded"] = True
        return response

    @staticmethod
    def _response(
        parsed: ParsedRequest, fragment: Mapping[str, Any], *, cache_hit: bool
    ) -> dict[str, Any]:
        return {
            "status": "ok",
            "cache_hit": cache_hit,
            "problem_hash": parsed.key.problem_hash,
            "params_hash": parsed.key.params_hash,
            "algorithm": parsed.algorithm,
            "budget": parsed.budget,
            "result": dict(fragment),
        }

    def submit_parsed(self, parsed: ParsedRequest) -> "Future[dict[str, Any]]":
        """Return a future for an already-parsed request.

        Cache hits resolve immediately without occupying a worker; misses
        go through the bounded executor (and may raise
        :class:`ServiceOverloadedError` right here).  A draining service
        rejects everything — even cache hits — so a router fails the
        request over to a healthy sibling instead of depending on a node
        that is about to exit.
        """
        if self._draining:
            raise ServiceOverloadedError(
                self.executor.queue_capacity,
                reason="service is draining: in-flight jobs are finishing, "
                "new requests are rejected",
            )
        fragment = self.cache.get(parsed.key)
        if fragment is not None:
            immediate: "Future[dict[str, Any]]" = Future()
            immediate.set_result(self._response(parsed, fragment, cache_hit=True))
            return immediate
        return self.executor.submit(
            parsed, timeout=parsed.timeout, label=parsed.algorithm
        )

    def submit(self, payload: Mapping[str, Any]) -> "Future[dict[str, Any]]":
        """Parse a request and return a future for its response.

        Parse errors raise synchronously; see :meth:`submit_parsed` for
        the dispatch semantics.
        """
        return self.submit_parsed(self.parse_request(payload))

    def _await(
        self, parsed: ParsedRequest, future: "Future[dict[str, Any]]"
    ) -> dict[str, Any]:
        """Block on one future, applying the degradation contract."""
        try:
            return future.result()
        except ServiceTimeoutError as exc:
            if not self.degrade_on_timeout:
                raise
            return self._degraded_response(parsed, exc)

    def solve(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Blocking solve of one request payload; returns the response."""
        started = time.monotonic()
        try:
            parsed = self.parse_request(payload)
            return self._await(parsed, self.submit_parsed(parsed))
        finally:
            self._observe(time.monotonic() - started)

    def solve_batch(self, payloads: Any) -> list[dict[str, Any]]:
        """Solve a batch; responses in input order, errors captured per item."""
        if not isinstance(payloads, (list, tuple)):
            raise ServiceError("'requests' must be an array of solve requests")
        started = time.monotonic()
        pending: "list[tuple[ParsedRequest, Future[dict[str, Any]]] | None]" = []
        errors: list[dict[str, Any] | None] = []
        for item in payloads:
            try:
                parsed = self.parse_request(item)
                pending.append((parsed, self.submit_parsed(parsed)))
                errors.append(None)
            except Exception as exc:  # per-item isolation
                pending.append(None)
                errors.append(error_payload(exc))
        responses: list[dict[str, Any]] = []
        for entry, error in zip(pending, errors):
            if entry is None:
                assert error is not None
                responses.append(error)
                continue
            try:
                responses.append(self._await(*entry))
            except Exception as exc:
                responses.append(error_payload(exc))
        self._observe(time.monotonic() - started)
        return responses

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    def _observe(self, latency: float) -> None:
        with self._lock:
            self._requests += 1
            self._request_latencies.append(latency)

    def stats(self) -> dict[str, Any]:
        """The ``/v1/stats`` body: cache, executor and latency figures."""
        with self._lock:
            latencies = list(self._request_latencies)
            requests = self._requests
            degraded = self._degraded
        return {
            "uptime": time.time() - self._started_at,
            "requests": requests,
            "degraded": degraded,
            "ready": self.ready,
            "cache": self.cache.stats().to_dict(),
            "executor": self.executor.stats(),
            "request_latency_p50": percentile(latencies, 50),
            "request_latency_p95": percentile(latencies, 95),
        }

    @property
    def ready(self) -> bool:
        """Readiness (vs liveness): ``False`` once draining has begun."""
        return not self._draining and not self.executor.draining

    def drain(self) -> None:
        """Graceful shutdown: reject new work, finish in-flight, flush disk.

        After this returns, :attr:`ready` is ``False`` (``/v1/readyz``
        answers 503 so routers stop sending traffic), every job that was
        queued or running has completed and left its record, and the disk
        cache tier is flushed.  Idempotent.
        """
        self._draining = True
        self.executor.shutdown(drain=True)
        self.cache.flush()

    def close(self) -> None:
        """Shut the executor down (waits for in-flight jobs)."""
        self.executor.shutdown()

    def __enter__(self) -> "SchedulingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
