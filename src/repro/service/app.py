"""The scheduling service: parse → memoize → dispatch → respond.

:class:`SchedulingService` is the transport-agnostic core behind the HTTP
front-end (:mod:`repro.service.http`) and the ``repro submit`` client:

1. a request payload (canonical wire format, :mod:`repro.service.codec`)
   is parsed into a problem, a configured scheduler and a budget;
2. the content-addressed key (:mod:`repro.service.keys`) is looked up in
   the memoizing result store (:mod:`repro.service.cache`) — a hit
   replays the stored result fragment byte-for-byte with
   ``cache_hit: true``;
3. a miss is dispatched to the bounded job executor
   (:mod:`repro.service.executor`), which runs the registered scheduler,
   encodes the result, and populates both cache tiers;
4. ``stats()`` aggregates cache hit-rate, executor counters and p50/p95
   latencies for ``GET /v1/stats``.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from collections.abc import Mapping
from concurrent.futures import Future
from typing import Any

from repro.algorithms import declared_params, get_scheduler
from repro.core.problem import MedCCProblem
from repro.exceptions import (
    InfeasibleBudgetError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from repro.service import codec
from repro.service.cache import ResultCache
from repro.service.executor import JobExecutor, percentile
from repro.service.keys import RequestKey, params_hash, problem_hash

__all__ = ["ParsedRequest", "SchedulingService", "error_payload"]

#: Algorithm used when a request does not name one.
DEFAULT_ALGORITHM = "critical-greedy"


@dataclasses.dataclass
class ParsedRequest:
    """A decoded, validated solve request ready for lookup or dispatch."""

    problem: MedCCProblem
    scheduler: Any
    algorithm: str
    budget: float
    timeout: float | None
    key: RequestKey


def error_payload(exc: BaseException) -> dict[str, Any]:
    """The canonical error body (shared by HTTP responses and batch items)."""
    if isinstance(exc, ServiceOverloadedError):
        kind = "overloaded"
    elif isinstance(exc, ServiceTimeoutError):
        kind = "timeout"
    elif isinstance(exc, InfeasibleBudgetError):
        kind = "infeasible_budget"
    elif isinstance(exc, (ServiceError, ReproError)):
        kind = "bad_request"
    else:
        kind = "internal"
    return {
        "status": "error",
        "error": {"kind": kind, "type": type(exc).__name__, "message": str(exc)},
    }


class SchedulingService:
    """Cached, concurrent MED-CC solve service (transport-agnostic core).

    Parameters
    ----------
    max_workers / queue_size / default_timeout / use_processes:
        Forwarded to the :class:`~repro.service.executor.JobExecutor`.
    cache_size / cache_dir:
        Forwarded to the :class:`~repro.service.cache.ResultCache`;
        ``cache_dir`` enables the persistent disk tier.
    latency_window:
        How many recent end-to-end request latencies to keep for the
        p50/p95 figures in :meth:`stats`.
    """

    def __init__(
        self,
        *,
        max_workers: int = 4,
        queue_size: int = 64,
        cache_size: int = 1024,
        cache_dir: str | None = None,
        default_timeout: float | None = None,
        use_processes: bool = False,
        latency_window: int = 4096,
    ) -> None:
        self.cache = ResultCache(capacity=cache_size, cache_dir=cache_dir)
        self.executor = JobExecutor(
            self._solve_job,
            max_workers=max_workers,
            queue_size=queue_size,
            default_timeout=default_timeout,
            use_processes=use_processes,
            annotate=lambda response: {
                "engine": response.get("result", {}).get("engine"),
                "cache_hit": response.get("cache_hit"),
            },
        )
        self._started_at = time.time()
        self._lock = threading.Lock()
        self._request_latencies: deque[float] = deque(maxlen=latency_window)
        self._requests = 0

    # ------------------------------------------------------------------ #
    # Request parsing
    # ------------------------------------------------------------------ #

    def parse_request(self, payload: Mapping[str, Any]) -> ParsedRequest:
        """Decode and validate one solve-request payload.

        Request shape::

            {
              "problem":   {...},          # codec problem envelope or bare
                                           # problem_to_dict() body
              "budget":    57.0,           # required
              "algorithm": "critical-greedy",   # optional
              "params":    {"engine": "fast"},  # optional scheduler knobs
              "timeout":   10.0            # optional per-job timeout (s)
            }
        """
        if not isinstance(payload, Mapping):
            raise ServiceError("request body must be a JSON object")
        problem_payload = payload.get("problem")
        if not isinstance(problem_payload, Mapping):
            raise ServiceError("request is missing the 'problem' object")
        if "budget" not in payload:
            raise ServiceError("request is missing the required 'budget' field")
        try:
            budget = float(payload["budget"])
        except (TypeError, ValueError):
            raise ServiceError(
                f"budget must be a number, got {payload['budget']!r}"
            ) from None

        algorithm = str(payload.get("algorithm") or DEFAULT_ALGORITHM)
        scheduler = get_scheduler(algorithm)

        params = payload.get("params") or {}
        if not isinstance(params, Mapping):
            raise ServiceError("'params' must be an object of scheduler knobs")
        if params:
            known = declared_params(scheduler)
            unknown = sorted(set(params) - set(known))
            if unknown:
                raise ServiceError(
                    f"unknown parameter(s) {unknown} for algorithm "
                    f"{algorithm!r}; declared knobs: {sorted(known)}"
                )
            try:
                scheduler = dataclasses.replace(scheduler, **dict(params))
            except (TypeError, ValueError) as exc:
                raise ServiceError(
                    f"invalid parameters for {algorithm!r}: {exc}"
                ) from exc

        timeout = payload.get("timeout")
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError):
                raise ServiceError(
                    f"timeout must be a number, got {timeout!r}"
                ) from None

        problem = codec.decode_problem(problem_payload)
        # Hash the *full* effective knob set (not just the client-supplied
        # subset) so explicit defaults and omitted defaults collide.
        key = RequestKey(
            problem_hash=problem_hash(problem_payload),
            algorithm=algorithm,
            params_hash=params_hash(algorithm, budget, declared_params(scheduler)),
        )
        return ParsedRequest(
            problem=problem,
            scheduler=scheduler,
            algorithm=algorithm,
            budget=budget,
            timeout=timeout,
            key=key,
        )

    # ------------------------------------------------------------------ #
    # Solve paths
    # ------------------------------------------------------------------ #

    def _solve_job(self, parsed: ParsedRequest) -> dict[str, Any]:
        """Executor job body: run the scheduler, encode, memoize."""
        result = parsed.scheduler.solve(parsed.problem, parsed.budget)
        fragment = {
            "algorithm": result.algorithm,
            "engine": str(getattr(parsed.scheduler, "engine", "default")),
            "schedule": codec.encode_schedule(result.schedule, parsed.problem.catalog),
            "cost": result.total_cost,
            "makespan": result.med,
            "steps": len(result.steps),
        }
        self.cache.put(parsed.key, fragment)
        return self._response(parsed, fragment, cache_hit=False)

    @staticmethod
    def _response(
        parsed: ParsedRequest, fragment: Mapping[str, Any], *, cache_hit: bool
    ) -> dict[str, Any]:
        return {
            "status": "ok",
            "cache_hit": cache_hit,
            "problem_hash": parsed.key.problem_hash,
            "params_hash": parsed.key.params_hash,
            "algorithm": parsed.algorithm,
            "budget": parsed.budget,
            "result": dict(fragment),
        }

    def submit(self, payload: Mapping[str, Any]) -> "Future[dict[str, Any]]":
        """Parse a request and return a future for its response.

        Cache hits resolve immediately without occupying a worker; misses
        go through the bounded executor (and may raise
        :class:`ServiceOverloadedError` right here).  Parse errors raise
        synchronously.
        """
        parsed = self.parse_request(payload)
        fragment = self.cache.get(parsed.key)
        if fragment is not None:
            immediate: "Future[dict[str, Any]]" = Future()
            immediate.set_result(self._response(parsed, fragment, cache_hit=True))
            return immediate
        return self.executor.submit(
            parsed, timeout=parsed.timeout, label=parsed.algorithm
        )

    def solve(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Blocking solve of one request payload; returns the response."""
        started = time.monotonic()
        try:
            return self.submit(payload).result()
        finally:
            self._observe(time.monotonic() - started)

    def solve_batch(self, payloads: Any) -> list[dict[str, Any]]:
        """Solve a batch; responses in input order, errors captured per item."""
        if not isinstance(payloads, (list, tuple)):
            raise ServiceError("'requests' must be an array of solve requests")
        started = time.monotonic()
        futures: "list[Future[dict[str, Any]] | None]" = []
        errors: list[dict[str, Any] | None] = []
        for item in payloads:
            try:
                futures.append(self.submit(item))
                errors.append(None)
            except Exception as exc:  # per-item isolation
                futures.append(None)
                errors.append(error_payload(exc))
        responses: list[dict[str, Any]] = []
        for future, error in zip(futures, errors):
            if future is None:
                assert error is not None
                responses.append(error)
                continue
            try:
                responses.append(future.result())
            except Exception as exc:
                responses.append(error_payload(exc))
        self._observe(time.monotonic() - started)
        return responses

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    def _observe(self, latency: float) -> None:
        with self._lock:
            self._requests += 1
            self._request_latencies.append(latency)

    def stats(self) -> dict[str, Any]:
        """The ``/v1/stats`` body: cache, executor and latency figures."""
        with self._lock:
            latencies = list(self._request_latencies)
            requests = self._requests
        return {
            "uptime": time.time() - self._started_at,
            "requests": requests,
            "cache": self.cache.stats().to_dict(),
            "executor": self.executor.stats(),
            "request_latency_p50": percentile(latencies, 50),
            "request_latency_p95": percentile(latencies, 95),
        }

    def close(self) -> None:
        """Shut the executor down (waits for in-flight jobs)."""
        self.executor.shutdown()

    def __enter__(self) -> "SchedulingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
